"""Legacy setup shim: the environment has no `wheel` package, so PEP 660
editable installs fail; `python setup.py develop` works without it."""

from setuptools import setup

setup()
