#!/usr/bin/env python
"""Repo-invariant linter for the repro codebase (runs in CI).

Complements ruff with project-specific invariants that generic linters
cannot know, checked statically over Python ``ast``:

* **R001** — no ``print`` calls inside ``src/repro`` outside the CLI
  modules (``cli.py``, ``__main__.py``). Library code reports through
  return values, exceptions, and ``repro.obs``; only the CLI talks to
  stdout.
* **R002** — no direct mutation of the global obs registry outside
  ``src/repro/obs``: no references to ``_default_registry`` and no calls
  to ``obs.set_registry`` / ``obs.reset``. Library code must use
  ``obs.use_registry()`` scoping so instrumentation composes.
* **R003** — every name in a module's ``__all__`` must be defined or
  imported in that module (the public facade must not advertise names
  that do not exist).
* **R004** — no bare ``except:`` anywhere in ``src``, ``tools``, or
  ``benchmarks`` (it swallows ``KeyboardInterrupt``/``SystemExit``).
* **R005** — no mutable default arguments (``[]``, ``{}``, ``set()``, ...)
  in library code under ``src/repro``; the default is shared across calls.
* **R006** — every ``ALEX-*`` diagnostic code string used in library code
  must be registered in a module-level ``CODES`` table (the stable code
  registries of ``repro.sparql.analysis`` and ``repro.rdf.validate``), so
  no analyzer can emit an unregistered code.
* **R007** — metric and trace-event names must follow the dotted-lowercase
  ``subsystem.noun.verb`` convention: 2–4 ``[a-z][a-z0-9_]*`` segments for
  ``obs.inc/observe/counter/...`` metric names and ``trace``/``tracer``
  event and span names; ``obs.span(...)`` hierarchical spans are
  single-segment. Checked on literal first arguments only, so dynamic
  names stay possible but the common case is kept consistent.

Usage: ``python tools/lint_repro.py [root]`` — exits non-zero when any
invariant is violated, printing ``path:line: CODE message`` per finding.
"""

from __future__ import annotations

import ast
import os
import re
import sys

#: Modules inside src/repro that are allowed to print: the CLI surface.
PRINT_ALLOWED = {"cli.py", "__main__.py"}

#: obs-internal modules allowed to touch the default registry directly.
OBS_DIR = os.path.join("src", "repro", "obs")

FORBIDDEN_OBS_CALLS = {"set_registry", "reset"}

#: Diagnostic code shape: ALEX-<letter><3 digits> (R006).
ALEX_CODE_RE = re.compile(r"ALEX-[A-Z]\d{3}")

#: Call names whose result is a fresh mutable container (allowed as default
#: would still be shared across calls — flagged by R005).
MUTABLE_FACTORIES = {"list", "dict", "set", "defaultdict", "Counter", "OrderedDict"}

#: R007: dotted lowercase name, 2-4 segments (``alex.links.discovered``).
DOTTED_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){1,3}$")

#: R007: hierarchical obs.span names are single-segment (``episode``).
SPAN_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: obs functions taking a metric name as first argument.
OBS_METRIC_FUNCS = {
    "inc", "observe", "set_gauge", "counter", "gauge", "histogram", "timer",
}

#: trace/tracer methods taking an event or span name as first argument.
TRACE_NAME_FUNCS = {"event", "span"}


class Finding:
    __slots__ = ("path", "line", "code", "message")

    def __init__(self, path: str, line: int, code: str, message: str):
        self.path = path
        self.line = line
        self.code = code
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _is_obs_attr(node: ast.AST, name: str) -> bool:
    """Matches ``obs.<name>`` / ``repro.obs.<name>`` attribute access."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == name
        and isinstance(node.value, (ast.Name, ast.Attribute))
        and (
            (isinstance(node.value, ast.Name) and node.value.id == "obs")
            or (isinstance(node.value, ast.Attribute) and node.value.attr == "obs")
        )
    )


def _receiver_name(node: ast.AST) -> str | None:
    """The identifier a method was called on: ``x.f()`` -> "x",
    ``a.b.f()`` -> "b", else None."""
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name):
            return node.value.id
        if isinstance(node.value, ast.Attribute):
            return node.value.attr
    return None


def _observability_name_call(node: ast.Call) -> tuple[str, str, int] | None:
    """R007: recognise calls declaring a metric/span/event name literal.

    Returns ``(rule, name, lineno)`` where rule is "metric" (dotted 2-4
    segments), "obs-span" (single segment), or None when the call is not a
    name-declaring observability call or its first argument is not a string
    literal (dynamic names are out of scope).
    """
    if not isinstance(node.func, ast.Attribute) or not node.args:
        return None
    first = node.args[0]
    if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
        return None
    attr = node.func.attr
    receiver = _receiver_name(node.func)
    if receiver == "obs":
        if attr == "span":
            return ("obs-span", first.value, first.lineno)
        if attr in OBS_METRIC_FUNCS:
            return ("metric", first.value, first.lineno)
        return None
    # trace module / Tracer instance / SpanHandle: dotted event & span names
    if attr in TRACE_NAME_FUNCS and receiver in ("trace", "tracer", "span"):
        return ("metric", first.value, first.lineno)
    return None


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_FACTORIES
    return False


def collect_registered_codes(root: str) -> set[str]:
    """String keys of every module-level ``CODES = {...}`` dict in src/repro.

    This is the static mirror of ``repro.diagnostics``: each analyzer
    registers a literal ``CODES`` table, so parsing those tables recovers
    the full registry without importing the package.
    """
    codes: set[str] = set()
    base = os.path.join(root, "src", "repro")
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            with open(os.path.join(dirpath, filename), "r", encoding="utf-8") as handle:
                try:
                    tree = ast.parse(handle.read())
                except SyntaxError:
                    continue  # reported as R000 by check_file
            for node in tree.body:
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if not any(isinstance(t, ast.Name) and t.id == "CODES" for t in targets):
                    continue
                if isinstance(node.value, ast.Dict):
                    for key in node.value.keys:
                        if isinstance(key, ast.Constant) and isinstance(key.value, str):
                            codes.add(key.value)
    return codes


def check_file(path: str, rel: str, registered_codes: set[str] | None = None) -> list[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding(rel, error.lineno or 0, "R000", f"syntax error: {error.msg}")]

    findings: list[Finding] = []
    in_repro = rel.replace(os.sep, "/").startswith("src/repro/")
    in_obs = rel.replace(os.sep, "/").startswith(OBS_DIR.replace(os.sep, "/"))
    basename = os.path.basename(path)

    for node in ast.walk(tree):
        # R001: print() in library code
        if (
            in_repro
            and basename not in PRINT_ALLOWED
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            findings.append(Finding(
                rel, node.lineno, "R001",
                "print() in library code; return values, raise, or use repro.obs",
            ))
        # R002: poking the global obs registry
        if in_repro and not in_obs:
            if isinstance(node, (ast.Attribute, ast.Name)):
                name = node.attr if isinstance(node, ast.Attribute) else node.id
                if name == "_default_registry":
                    findings.append(Finding(
                        rel, node.lineno, "R002",
                        "direct access to obs._default_registry; use "
                        "obs.get_registry()/obs.use_registry()",
                    ))
            if isinstance(node, ast.Call):
                for forbidden in FORBIDDEN_OBS_CALLS:
                    if _is_obs_attr(node.func, forbidden):
                        findings.append(Finding(
                            rel, node.lineno, "R002",
                            f"obs.{forbidden}() mutates the global registry; "
                            "use obs.use_registry() scoping",
                        ))
        # R004: bare except
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(Finding(
                rel, node.lineno, "R004",
                "bare 'except:'; catch a specific exception (or Exception)",
            ))
        # R005: mutable default arguments in library code
        if in_repro and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            arguments = node.args
            for default in list(arguments.defaults) + [
                d for d in arguments.kw_defaults if d is not None
            ]:
                if _is_mutable_default(default):
                    findings.append(Finding(
                        rel, default.lineno, "R005",
                        "mutable default argument; the instance is shared "
                        "across calls — default to None and create inside",
                    ))
        # R007: observability names follow the dotted naming convention
        if isinstance(node, ast.Call):
            name_call = _observability_name_call(node)
            if name_call is not None:
                rule, name, line = name_call
                if rule == "obs-span" and not SPAN_NAME_RE.match(name):
                    findings.append(Finding(
                        rel, line, "R007",
                        f"obs.span name {name!r} must be a single lowercase "
                        "segment (hierarchy comes from nesting)",
                    ))
                elif rule == "metric" and not DOTTED_NAME_RE.match(name):
                    findings.append(Finding(
                        rel, line, "R007",
                        f"observability name {name!r} must be dotted lowercase "
                        "subsystem.noun.verb (2-4 segments)",
                    ))
        # R006: only registered ALEX-* diagnostic codes in library code
        if (
            in_repro
            and registered_codes is not None
            and isinstance(node, ast.Constant)
            and isinstance(node.value, str)
        ):
            for code in ALEX_CODE_RE.findall(node.value):
                if code not in registered_codes:
                    findings.append(Finding(
                        rel, node.lineno, "R006",
                        f"diagnostic code {code} is not registered in any "
                        "module-level CODES table",
                    ))

    findings.extend(check_all_exports(tree, rel))
    return findings


def _imported_and_defined_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def check_all_exports(tree: ast.Module, rel: str) -> list[Finding]:
    """R003: ``__all__`` entries must name something that exists."""
    exported: list[tuple[str, int]] = []
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(node.value, (ast.List, ast.Tuple)):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(element.value, str):
                        exported.append((element.value, element.lineno))
    if not exported:
        return []
    available = _imported_and_defined_names(tree) | {"__version__"}
    return [
        Finding(rel, line, "R003", f"__all__ exports {name!r} but the module "
                "neither defines nor imports it")
        for name, line in exported
        if name not in available
    ]


def lint(root: str) -> list[Finding]:
    registered_codes = collect_registered_codes(root)
    findings: list[Finding] = []
    for top in ("src", "tools", "benchmarks"):
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, root)
                findings.extend(check_file(path, rel, registered_codes))
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    root = argv[0] if argv else os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    findings = lint(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} invariant violation(s)")
        return 1
    print("repo invariants OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
