#!/usr/bin/env python
"""Repo-invariant linter for the repro codebase (runs in CI).

Complements ruff with project-specific invariants that generic linters
cannot know, checked statically over Python ``ast``:

* **R001** — no ``print`` calls inside ``src/repro`` outside the CLI
  modules (``cli.py``, ``__main__.py``). Library code reports through
  return values, exceptions, and ``repro.obs``; only the CLI talks to
  stdout.
* **R002** — no direct mutation of the global obs registry outside
  ``src/repro/obs``: no references to ``_default_registry`` and no calls
  to ``obs.set_registry`` / ``obs.reset``. Library code must use
  ``obs.use_registry()`` scoping so instrumentation composes.
* **R003** — every name in a module's ``__all__`` must be defined or
  imported in that module (the public facade must not advertise names
  that do not exist).
* **R004** — no bare ``except:`` anywhere in ``src``, ``tools``, or
  ``benchmarks`` (it swallows ``KeyboardInterrupt``/``SystemExit``).

Usage: ``python tools/lint_repro.py [root]`` — exits non-zero when any
invariant is violated, printing ``path:line: CODE message`` per finding.
"""

from __future__ import annotations

import ast
import os
import sys

#: Modules inside src/repro that are allowed to print: the CLI surface.
PRINT_ALLOWED = {"cli.py", "__main__.py"}

#: obs-internal modules allowed to touch the default registry directly.
OBS_DIR = os.path.join("src", "repro", "obs")

FORBIDDEN_OBS_CALLS = {"set_registry", "reset"}


class Finding:
    __slots__ = ("path", "line", "code", "message")

    def __init__(self, path: str, line: int, code: str, message: str):
        self.path = path
        self.line = line
        self.code = code
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _is_obs_attr(node: ast.AST, name: str) -> bool:
    """Matches ``obs.<name>`` / ``repro.obs.<name>`` attribute access."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == name
        and isinstance(node.value, (ast.Name, ast.Attribute))
        and (
            (isinstance(node.value, ast.Name) and node.value.id == "obs")
            or (isinstance(node.value, ast.Attribute) and node.value.attr == "obs")
        )
    )


def check_file(path: str, rel: str) -> list[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding(rel, error.lineno or 0, "R000", f"syntax error: {error.msg}")]

    findings: list[Finding] = []
    in_repro = rel.replace(os.sep, "/").startswith("src/repro/")
    in_obs = rel.replace(os.sep, "/").startswith(OBS_DIR.replace(os.sep, "/"))
    basename = os.path.basename(path)

    for node in ast.walk(tree):
        # R001: print() in library code
        if (
            in_repro
            and basename not in PRINT_ALLOWED
            and isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            findings.append(Finding(
                rel, node.lineno, "R001",
                "print() in library code; return values, raise, or use repro.obs",
            ))
        # R002: poking the global obs registry
        if in_repro and not in_obs:
            if isinstance(node, (ast.Attribute, ast.Name)):
                name = node.attr if isinstance(node, ast.Attribute) else node.id
                if name == "_default_registry":
                    findings.append(Finding(
                        rel, node.lineno, "R002",
                        "direct access to obs._default_registry; use "
                        "obs.get_registry()/obs.use_registry()",
                    ))
            if isinstance(node, ast.Call):
                for forbidden in FORBIDDEN_OBS_CALLS:
                    if _is_obs_attr(node.func, forbidden):
                        findings.append(Finding(
                            rel, node.lineno, "R002",
                            f"obs.{forbidden}() mutates the global registry; "
                            "use obs.use_registry() scoping",
                        ))
        # R004: bare except
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(Finding(
                rel, node.lineno, "R004",
                "bare 'except:'; catch a specific exception (or Exception)",
            ))

    findings.extend(check_all_exports(tree, rel))
    return findings


def _imported_and_defined_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def check_all_exports(tree: ast.Module, rel: str) -> list[Finding]:
    """R003: ``__all__`` entries must name something that exists."""
    exported: list[tuple[str, int]] = []
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(node.value, (ast.List, ast.Tuple)):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(element.value, str):
                        exported.append((element.value, element.lineno))
    if not exported:
        return []
    available = _imported_and_defined_names(tree) | {"__version__"}
    return [
        Finding(rel, line, "R003", f"__all__ exports {name!r} but the module "
                "neither defines nor imports it")
        for name, line in exported
        if name not in available
    ]


def lint(root: str) -> list[Finding]:
    findings: list[Finding] = []
    for top in ("src", "tools", "benchmarks"):
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, root)
                findings.extend(check_file(path, rel))
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    return findings


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    root = argv[0] if argv else os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    findings = lint(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} invariant violation(s)")
        return 1
    print("repo invariants OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
