#!/usr/bin/env python
"""DEPRECATED: thin wrapper over ``repro_analyzer`` (repo-invariant rules).

The regex-grade linter that lived here was replaced by the multi-pass
AST/dataflow analyzer in ``tools/repro_analyzer/``. This wrapper keeps the
historical invocation (``python tools/lint_repro.py [root]``, exit 0/1,
one ``path:line: CODE message`` per finding) working for one release by
running the analyzer with only the migrated R001-R007 family enabled.

Use instead:

* ``python -m repro_analyzer --rules repo`` — same check, richer output;
* ``repro lint-code`` — the full contract analyzer (ALEX-C* + R00x) with
  baseline, JSON/SARIF output, and the writer inventory.

Rule docs (R001-R007) now live in :mod:`repro_analyzer.rules_repo` and
``docs/diagnostics.md``.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro_analyzer.cli import main as analyzer_main  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    forwarded = ["--rules", "repo", "--baseline", "none"]
    if argv:
        forwarded += ["--root", argv[0]]
    return analyzer_main(forwarded)


if __name__ == "__main__":
    raise SystemExit(main())
