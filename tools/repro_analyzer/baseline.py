"""Baseline suppression: pre-existing findings don't block CI, new ones do.

The committed baseline (``tools/repro_analyzer/baseline.json``) buckets
accepted findings by ``(path, code)`` with a count and a human
justification. During a run each bucket absorbs up to ``count`` matching
findings; anything beyond the count — a *regression* — survives and can
fail the build. Buckets are line-free on purpose: unrelated edits move
line numbers constantly, and a baseline that churns on every edit teaches
people to regenerate it blindly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .model import CodeFinding

BASELINE_FORMAT = "repro-analyzer-baseline/1"


class BaselineError(ValueError):
    """The baseline file is malformed or references unknown codes."""


@dataclass(frozen=True)
class BaselineEntry:
    path: str
    code: str
    count: int
    justification: str

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "code": self.code,
            "count": self.count,
            "justification": self.justification,
        }


def parse_baseline(data: object) -> list[BaselineEntry]:
    """Validate the decoded JSON shape and return its entries."""
    if not isinstance(data, dict):
        raise BaselineError("baseline must be a JSON object")
    if data.get("format") != BASELINE_FORMAT:
        raise BaselineError(
            f"unknown baseline format {data.get('format')!r} "
            f"(expected {BASELINE_FORMAT!r})"
        )
    raw_entries = data.get("entries")
    if not isinstance(raw_entries, list):
        raise BaselineError("baseline 'entries' must be a list")
    entries: list[BaselineEntry] = []
    seen: set[tuple[str, str]] = set()
    for index, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            raise BaselineError(f"entries[{index}] must be an object")
        try:
            path = raw["path"]
            code = raw["code"]
            count = raw["count"]
            justification = raw["justification"]
        except KeyError as missing:
            raise BaselineError(
                f"entries[{index}] missing required key {missing.args[0]!r}"
            ) from None
        if not isinstance(path, str) or not isinstance(code, str):
            raise BaselineError(f"entries[{index}] path/code must be strings")
        if not isinstance(count, int) or count < 1:
            raise BaselineError(f"entries[{index}] count must be a positive int")
        if not isinstance(justification, str) or not justification.strip():
            raise BaselineError(
                f"entries[{index}] needs a non-empty justification — the "
                "baseline records *why* a finding is accepted"
            )
        if (path, code) in seen:
            raise BaselineError(
                f"entries[{index}] duplicates bucket ({path}, {code}); "
                "merge the counts"
            )
        seen.add((path, code))
        entries.append(BaselineEntry(path, code, count, justification))
    return entries


def load_baseline(path: str) -> list[BaselineEntry]:
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise BaselineError(f"baseline is not valid JSON: {error}") from None
    return parse_baseline(data)


def validate_codes(entries: list[BaselineEntry], registered: set[str]) -> list[str]:
    """Problems with codes the baseline references (empty when clean)."""
    return [
        f"baseline references unregistered code {entry.code} for {entry.path}"
        for entry in entries
        if entry.code not in registered
    ]


def apply_baseline(
    findings: list[CodeFinding], entries: list[BaselineEntry]
) -> tuple[list[CodeFinding], int, list[str]]:
    """Split findings into (surviving, suppressed_count, stale_buckets).

    Each ``(path, code)`` bucket absorbs up to ``count`` findings in
    position order. ``stale_buckets`` names buckets whose budget was not
    fully used — a sign the underlying finding was fixed and the baseline
    entry should be shrunk or removed.
    """
    budgets: dict[tuple[str, str], int] = {
        (entry.path, entry.code): entry.count for entry in entries
    }
    used: dict[tuple[str, str], int] = {key: 0 for key in budgets}
    surviving: list[CodeFinding] = []
    suppressed = 0
    for finding in sorted(findings, key=CodeFinding.sort_key):
        key = (finding.path, finding.code)
        if key in budgets and used[key] < budgets[key]:
            used[key] += 1
            suppressed += 1
        else:
            surviving.append(finding)
    stale = [
        f"baseline bucket ({path}, {code}) allows {budgets[(path, code)]} "
        f"finding(s) but only {used[(path, code)]} occurred — shrink or remove it"
        for (path, code) in sorted(budgets)
        if used[(path, code)] < budgets[(path, code)]
    ]
    return surviving, suppressed, stale


def generate_baseline(findings: list[CodeFinding],
                      justification: str = "TODO: justify or fix") -> dict:
    """A baseline document accepting every current finding (for bootstrap;
    justifications must then be written by hand)."""
    buckets: dict[tuple[str, str], int] = {}
    for finding in findings:
        key = (finding.path, finding.code)
        buckets[key] = buckets.get(key, 0) + 1
    return {
        "format": BASELINE_FORMAT,
        "entries": [
            {
                "path": path,
                "code": code,
                "count": count,
                "justification": justification,
            }
            for (path, code), count in sorted(buckets.items())
        ],
    }
