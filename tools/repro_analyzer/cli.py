"""Standalone command-line entry point for the code analyzer.

``python -m repro_analyzer [paths...]`` — the same engine `repro
lint-code` wraps, runnable without ``PYTHONPATH=src`` (CI's repo-invariant
job) and with the rule families, output format, and baseline all
selectable. Exit status: 0 clean (after baseline), 1 findings at or above
``--fail-on``, 2 usage/baseline errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .baseline import (
    BaselineError,
    apply_baseline,
    generate_baseline,
    load_baseline,
    validate_codes,
)
from .driver import (
    DEFAULT_FAMILIES,
    all_rule_codes,
    analyze_paths,
    collect_registered_codes,
)
from .model import SEVERITIES, AnalyzerConfig, meets_threshold
from .output import render_json, render_sarif, render_text


def repo_root_default() -> str:
    """The repository root: two levels above this package."""
    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro_analyzer",
        description="AST/dataflow contract analyzer for the repro codebase "
                    "(ALEX-C* contract passes + migrated R00x repo invariants)",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to analyze (default: src tools benchmarks)",
    )
    parser.add_argument(
        "--root", default=None,
        help="repository root for relative paths and CODES discovery",
    )
    parser.add_argument(
        "--rules", default=",".join(DEFAULT_FAMILIES),
        help="comma-separated rule families to run "
             f"(default: {','.join(DEFAULT_FAMILIES)})",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--fail-on", choices=SEVERITIES, default="error",
        help="exit non-zero when a non-baselined finding at or above this "
             "severity exists (default: error)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="baseline JSON suppressing accepted findings "
             "(default: <pkg>/baseline.json when it exists; 'none' disables)",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="validate the baseline file (format + registered codes) and exit",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="PATH",
        help="write a baseline accepting every current finding to PATH "
             "(justifications must then be edited in)",
    )
    parser.add_argument(
        "--writers", default=None, metavar="PATH",
        help="write the mutation-safety writer inventory (writers.json) to PATH",
    )
    parser.add_argument(
        "--locks", default=None, metavar="PATH",
        help="write the concurrency lock inventory (locks.json) to PATH",
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="GITREF",
        help="analyze only Python files changed relative to GITREF "
             "(default HEAD) plus untracked ones; mutually exclusive with "
             "explicit paths",
    )
    return parser


def changed_python_files(root: str, ref: str) -> list[str]:
    """Repo-relative ``.py`` files changed vs ``ref`` plus untracked ones.

    Runs ``git`` in ``root``; raises :class:`ValueError` when git fails
    (not a repository, unknown ref). Paths that no longer exist on disk
    (deletions) are filtered out, and the list is sorted so subset runs
    are as deterministic as full runs.
    """
    import subprocess

    def run(*args: str) -> list[str]:
        proc = subprocess.run(
            ("git", "-C", root) + args,
            capture_output=True, text=True, check=False,
        )
        if proc.returncode != 0:
            raise ValueError(
                f"git {' '.join(args)} failed: {proc.stderr.strip() or proc.returncode}"
            )
        return [line for line in proc.stdout.splitlines() if line.strip()]

    names = run("diff", "--name-only", ref, "--", "*.py")
    names += run("ls-files", "--others", "--exclude-standard", "--", "*.py")
    return sorted(
        {name for name in names if os.path.isfile(os.path.join(root, name))}
    )


def default_baseline_path() -> str:
    return os.path.join(os.path.dirname(os.path.abspath(__file__)), "baseline.json")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    root = options.root or repo_root_default()
    if options.changed is not None and options.paths:
        print("error: --changed and explicit paths are mutually exclusive", file=sys.stderr)
        return 2
    if options.changed is not None:
        try:
            paths = changed_python_files(root, options.changed)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if not paths:
            print(f"no Python files changed vs {options.changed}; nothing to analyze")
            return 0
    else:
        paths = options.paths or [
            p for p in ("src", "tools", "benchmarks") if os.path.isdir(os.path.join(root, p))
        ]
    families = tuple(f.strip() for f in options.rules.split(",") if f.strip())

    try:
        registered = collect_registered_codes(root)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    baseline_path = options.baseline
    if baseline_path is None and os.path.isfile(default_baseline_path()):
        baseline_path = default_baseline_path()
    if baseline_path == "none":
        baseline_path = None

    entries = []
    if baseline_path is not None:
        try:
            entries = load_baseline(baseline_path)
        except (OSError, BaselineError) as error:
            print(f"baseline error: {error}", file=sys.stderr)
            return 2
        problems = validate_codes(entries, registered | set(all_rule_codes()))
        if problems:
            for problem in problems:
                print(f"baseline error: {problem}", file=sys.stderr)
            return 2
        if options.check_baseline:
            print(f"baseline OK: {len(entries)} bucket(s), codes all registered")
            return 0
    elif options.check_baseline:
        print("baseline error: no baseline file found", file=sys.stderr)
        return 2

    try:
        result = analyze_paths(
            paths, root, config=AnalyzerConfig(), families=families,
            registered_codes=registered,
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if options.write_baseline:
        document = generate_baseline(result.findings)
        with open(options.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"wrote baseline with {len(document['entries'])} bucket(s) to "
            f"{options.write_baseline}; edit in the justifications"
        )
        return 0

    if options.writers:
        with open(options.writers, "w", encoding="utf-8") as handle:
            json.dump(result.writer_inventory, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if options.locks:
        with open(options.locks, "w", encoding="utf-8") as handle:
            json.dump(result.lock_inventory, handle, indent=2, sort_keys=True)
            handle.write("\n")

    surviving, suppressed, stale = apply_baseline(result.findings, entries)
    for warning in stale:
        print(f"note: {warning}", file=sys.stderr)

    if options.format == "json":
        print(render_json(surviving, suppressed))
    elif options.format == "sarif":
        print(render_sarif(surviving, all_rule_codes(families)))
    else:
        print(render_text(surviving, suppressed))

    failing = [f for f in surviving if meets_threshold(f.severity, options.fail_on)]
    return 1 if failing else 0


if __name__ == "__main__":
    raise SystemExit(main())
