"""C1 — the encoding-boundary contract (ALEX-C001/C002/C003).

PR 6 dictionary-encoded the triple store: the SPO/POS/OSP indexes and the
join kernels speak integer IDs, and terms exist as objects only at the
edges (parsing on the way in, projection/ordering/aggregation/filter
evaluation on the way out). Three things can silently break that:

* a Term/URIRef/Literal flowing into an ID-keyed API (``triples_ids``,
  ``count_ids``) — ints and terms never compare equal, so the call
  "works" and matches nothing (ALEX-C001);
* ``dictionary.encode()`` on a read path — encode interns, so a lookup
  phrased as encode *grows the dictionary* as a side effect of a query
  (ALEX-C002);
* ``dictionary.decode()`` sprinkled mid-pipeline — decode is the
  boundary-crossing; doing it away from the sanctioned boundary modules
  re-materialises term objects inside ID-space code (ALEX-C003).
"""

from __future__ import annotations

import ast
from typing import Iterable

from .dataflow import (
    FunctionFacts,
    call_func_name,
    is_dictionary_method,
    receiver_tail,
)
from .model import AnalysisContext, CodeFinding, ModuleContext, Pass


class EncodingBoundaryPass(Pass):
    name = "encoding-boundary"
    codes = {
        "ALEX-C001": (
            "error",
            "term object passed to an ID-keyed API (triples_ids/count_ids take ints)",
        ),
        "ALEX-C002": (
            "error",
            "dictionary.encode() outside the encoding boundary grows the "
            "dictionary on a read path",
        ),
        "ALEX-C003": (
            "warning",
            "dictionary.decode() outside the decoding boundary materialises "
            "terms mid-pipeline",
        ),
    }

    def run(self, module: ModuleContext, ctx: AnalysisContext) -> Iterable[CodeFinding]:
        config = ctx.config
        if not config.in_library(module.rel):
            return []
        in_encode_boundary = config.matches(module.rel, config.encode_boundary)
        in_decode_boundary = config.matches(module.rel, config.decode_boundary)

        findings: list[CodeFinding] = []
        facts_cache: dict[ast.AST, FunctionFacts] = {}

        def facts_for(node: ast.AST) -> FunctionFacts | None:
            func = module.enclosing_function(node)
            if func is None:
                return None
            if func not in facts_cache:
                facts_cache[func] = FunctionFacts(
                    func, config.term_constructors, config.term_annotations
                )
            return facts_cache[func]

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func_name = call_func_name(node)

            # -- C001: terms flowing into ID-keyed APIs ------------------
            if func_name in config.id_api_names:
                facts = facts_for(node)
                for arg in node.args:
                    reason = self._term_valued(arg, facts, config)
                    if reason is not None:
                        findings.append(self.finding(
                            module, arg, "ALEX-C001",
                            f"{reason} passed to ID-keyed {func_name}(); "
                            "IDs are ints — encode at the boundary and pass the ID",
                            hint="use dictionary.lookup()/graph ID helpers at the "
                                 "call boundary, not term objects",
                        ))

            # -- C002/C003: dictionary encode/decode off-boundary --------
            if isinstance(node.func, ast.Attribute):
                facts = facts_for(node)
                dict_aliases = facts.dict_aliases if facts is not None else ()
                if (
                    not in_encode_boundary
                    and node.func.attr == "encode"
                    and is_dictionary_method(node.func, "encode", dict_aliases)
                ):
                    findings.append(self.finding(
                        module, node, "ALEX-C002",
                        "dictionary.encode() outside the encoding boundary "
                        f"({', '.join(config.encode_boundary)}): encode interns, "
                        "so this grows the dictionary on what should be a read path",
                        hint="use dictionary.lookup() (returns None for unknown "
                             "terms) or route writes through Graph.add",
                    ))
                if not in_decode_boundary and node.func.attr == "decode":
                    is_decode = is_dictionary_method(node.func, "decode", dict_aliases)
                    if is_decode:
                        findings.append(self.finding(
                            module, node, "ALEX-C003",
                            "dictionary.decode() outside the decoding boundary "
                            f"({', '.join(config.decode_boundary)}): terms should "
                            "materialise only at projection/ordering/aggregation/"
                            "filter boundaries",
                            hint="keep the pipeline in ID space and decode at the "
                                 "sanctioned boundary module",
                        ))

            # -- C003 via alias: decode = dictionary.decode; decode(x) ---
            if (
                not in_decode_boundary
                and isinstance(node.func, ast.Name)
            ):
                facts = facts_for(node)
                if facts is not None and node.func.id in facts.decode_aliases:
                    findings.append(self.finding(
                        module, node, "ALEX-C003",
                        f"{node.func.id}() aliases dictionary.decode outside the "
                        "decoding boundary",
                        hint="keep the pipeline in ID space and decode at the "
                             "sanctioned boundary module",
                    ))
                if (
                    not in_encode_boundary
                    and facts is not None
                    and node.func.id in facts.encode_aliases
                ):
                    findings.append(self.finding(
                        module, node, "ALEX-C002",
                        f"{node.func.id}() aliases dictionary.encode outside the "
                        "encoding boundary: encode interns on a read path",
                        hint="use dictionary.lookup() or route writes through "
                             "Graph.add",
                    ))

        return findings

    def _term_valued(self, arg: ast.AST, facts: FunctionFacts | None,
                     config) -> str | None:
        """Why ``arg`` looks term-valued (message fragment), or None."""
        if isinstance(arg, ast.Call):
            name = call_func_name(arg)
            if name in config.term_constructors:
                return f"{name}(...) term constructor"
            if name == "decode" and isinstance(arg.func, ast.Attribute):
                aliases = facts.dict_aliases if facts is not None else ()
                if is_dictionary_method(arg.func, "decode", aliases):
                    return "decoded term"
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return "string literal (a term value, not an ID)"
        if isinstance(arg, ast.Name) and facts is not None and arg.id in facts.term_vars:
            return f"term-typed variable {arg.id!r}"
        if isinstance(arg, ast.Starred):
            return self._term_valued(arg.value, facts, config)
        return None
