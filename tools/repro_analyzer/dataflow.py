"""Lightweight per-function dataflow facts used by the contract passes.

This is intentionally a *may*-analysis over names, not a real abstract
interpreter: a variable is considered term-typed once any assignment binds
it to a term constructor result, a decode result, or a term-annotated
parameter. That is the right polarity for contract checks — false negatives
on exotic flows are acceptable, false positives on re-bound names are not,
so facts are only consulted where the rule also sees corroborating shape
(e.g. a term-typed name flowing into an ID-keyed call).
"""

from __future__ import annotations

import ast
from typing import Iterable

from .model import ModuleContext


def call_func_name(node: ast.Call) -> str | None:
    """Bare name of the called function: ``f(...)`` -> "f",
    ``a.b.f(...)`` -> "f"."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def receiver_tail(node: ast.AST) -> str | None:
    """Innermost receiver identifier of an attribute access:
    ``x.f`` -> "x", ``a.b.f`` -> "b", ``self._dict.f`` -> "_dict"."""
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name):
            return node.value.id
        if isinstance(node.value, ast.Attribute):
            return node.value.attr
    return None


def dotted_parts(node: ast.AST) -> list[str]:
    """Flatten ``a.b.c`` to ["a", "b", "c"]; empty for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def annotation_name(node: ast.AST | None) -> str | None:
    """Terminal identifier of an annotation: ``URIRef`` -> "URIRef",
    ``terms.Literal`` -> "Literal", ``"Term"`` -> "Term" (string form),
    ``Optional[Term]`` -> "Term"."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split(".")[-1].split("[")[-1].rstrip("]") or None
    if isinstance(node, ast.Subscript):
        # Optional[Term] / list[Term]: the contained type is what flows.
        return annotation_name(node.slice)
    return None


#: Receiver tails that denote a term dictionary (``dictionary.decode``,
#: ``self._dict.encode``, ``graph._dict.decode``, ``base.decode`` via the
#: codec's captured base dictionary).
DICTIONARY_RECEIVERS = frozenset({"dictionary", "_dict", "term_dictionary", "termdict"})


def is_dictionary_method(node: ast.AST, method: str,
                         extra_receivers: Iterable[str] = ()) -> bool:
    """Matches ``<dict-like>.{method}`` attribute chains.

    Receiver names are matched by tail identifier so ``self._dict.encode``
    and ``graph.dictionary.decode`` both qualify; a bare ``text.encode()``
    (str.encode) never does because "text" is not a dictionary-shaped name.
    """
    if not (isinstance(node, ast.Attribute) and node.attr == method):
        return False
    tail = receiver_tail(node)
    return tail is not None and (
        tail in DICTIONARY_RECEIVERS or tail in set(extra_receivers)
    )


class FunctionFacts:
    """Name-level facts for one function body.

    * ``term_vars`` — names that may hold RDF term objects (assigned from a
      term constructor, a ``.decode(...)`` call, or declared with a
      term-typed annotation).
    * ``decode_aliases`` / ``encode_aliases`` — local names bound to a
      dictionary's bound method (``decode = dictionary.decode``), so rules
      can see through the common hot-loop aliasing idiom.
    * ``dict_aliases`` — local names bound to a dictionary object itself
      (``d = graph.dictionary()`` / ``d = self._dict``).
    """

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef,
                 term_constructors: Iterable[str],
                 term_annotations: Iterable[str]):
        self.func = func
        constructors = set(term_constructors)
        annotations = set(term_annotations)
        self.term_vars: set[str] = set()
        self.decode_aliases: set[str] = set()
        self.encode_aliases: set[str] = set()
        self.dict_aliases: set[str] = set()

        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if annotation_name(arg.annotation) in annotations:
                self.term_vars.add(arg.arg)

        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                names = [t.id for t in node.targets if isinstance(t, ast.Name)]
                self._record(names, node.value, constructors)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if annotation_name(node.annotation) in annotations:
                    self.term_vars.add(node.target.id)
                if node.value is not None:
                    self._record([node.target.id], node.value, constructors)

    def _record(self, names: list[str], value: ast.AST, constructors: set[str]) -> None:
        if not names:
            return
        if isinstance(value, ast.Call):
            func_name = call_func_name(value)
            if func_name in constructors:
                self.term_vars.update(names)
            elif func_name == "decode" and isinstance(value.func, ast.Attribute):
                if is_dictionary_method(value.func, "decode", self.dict_aliases):
                    self.term_vars.update(names)
            elif func_name in ("dictionary", "term_dictionary"):
                self.dict_aliases.update(names)
        elif isinstance(value, ast.Attribute):
            # decode = dictionary.decode  /  encode = self._dict.encode
            if is_dictionary_method(value, "decode", self.dict_aliases):
                self.decode_aliases.update(names)
            elif is_dictionary_method(value, "encode", self.dict_aliases):
                self.encode_aliases.update(names)
            elif value.attr in ("_dict", "dictionary") or (
                receiver_tail(value) in DICTIONARY_RECEIVERS
            ):
                self.dict_aliases.update(names)
        elif isinstance(value, ast.Name) and value.id in self.term_vars:
            self.term_vars.update(names)


def guard_names_of_test(test: ast.AST) -> set[str]:
    """Names a conditional test establishes as non-None/truthy.

    Recognises ``x is not None``, ``x``, ``x and y``, and the parenthesised
    combinations rules care about. Used to exempt deliberately-guarded
    instrumentation blocks from the hot-path cost lints.
    """
    names: set[str] = set()
    if isinstance(test, ast.Name):
        names.add(test.id)
    elif isinstance(test, ast.Compare):
        if (
            len(test.ops) == 1
            and isinstance(test.ops[0], ast.IsNot)
            and isinstance(test.left, ast.Name)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            names.add(test.left.id)
    elif isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        for value in test.values:
            names.update(guard_names_of_test(value))
    elif isinstance(test, ast.Attribute):
        tail = receiver_tail(test)
        if tail is not None:
            names.add(test.attr)
    return names


def is_cost_guarded(module: ModuleContext, node: ast.AST,
                    guard_names: Iterable[str]) -> bool:
    """True when ``node`` sits inside the *body* of an ``if`` whose test
    proves one of ``guard_names`` non-None (``if tracer is not None: ...``).

    Such blocks are off-by-default instrumentation the engine pays for only
    when explicitly enabled, so the cost lints skip them.
    """
    wanted = set(guard_names)
    child = node
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.If) and child in getattr(ancestor, "body", []):
            if guard_names_of_test(ancestor.test) & wanted:
                return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            break
        child = ancestor
    return False
