"""C4 — hot-path cost lints (ALEX-C030/C031/C032).

In the spirit of runtime-approximation work for link discovery (see
PAPERS.md), the join and scan kernels are treated as cost-bearing inner
loops whose per-row work should be integer comparisons and dict probes —
not term materialisation, not metric emission, not container churn. The
pass only looks at the configured hot functions (``sparql/eval.py`` join
kernels and scans, ``similarity/prepared.py`` scoring kernels):

* ALEX-C030 (warning) — ``decode``/``str()`` materialisation inside a
  loop: each call turns an int back into a term object; on a 1M-row scan
  that is 1M allocations the projection boundary would have amortised;
* ALEX-C031 (warning) — obs metric/trace-event construction inside a
  loop: per-row ``obs.inc``/``tracer.event`` turns O(rows) instrumentation
  overhead on even when tracing is disabled. Blocks guarded by
  ``if tracer is not None:`` (or another configured guard) are exempt —
  that is the sanctioned pay-only-when-enabled pattern;
* ALEX-C032 (info) — container allocation (``dict()``/``list()``/
  ``tuple()``/``.copy()``) at loop depth >= 2: the per-output-row cost of
  a join kernel. Info severity: sometimes unavoidable (output rows must
  be materialised) but every instance deserves a look.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .dataflow import FunctionFacts, is_cost_guarded, receiver_tail
from .model import AnalysisContext, CodeFinding, ModuleContext, Pass

#: obs functions that emit a metric sample (C031).
OBS_EMIT_FUNCS = frozenset({"inc", "observe", "set_gauge"})

#: Receivers whose ``.event(...)`` is a trace emission (C031).
TRACE_RECEIVERS = frozenset({"trace", "tracer", "span"})

#: Builtin container constructors counted as per-row allocation (C032).
CONTAINER_CONSTRUCTORS = frozenset({"dict", "list", "set", "tuple", "frozenset"})


class HotPathCostPass(Pass):
    name = "hot-path-cost"
    codes = {
        "ALEX-C030": (
            "warning",
            "term decode/str() materialisation inside a hot join/scan loop",
        ),
        "ALEX-C031": (
            "warning",
            "obs metric/trace event constructed inside a hot join/scan loop",
        ),
        "ALEX-C032": (
            "info",
            "per-row container allocation at loop depth >= 2 in a hot function",
        ),
    }

    def run(self, module: ModuleContext, ctx: AnalysisContext) -> Iterable[CodeFinding]:
        config = ctx.config
        hot = config.hot_functions(module.rel)
        if not hot:
            return []
        findings: list[CodeFinding] = []
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if func.name not in hot:
                continue
            facts = FunctionFacts(func, config.term_constructors, config.term_annotations)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                depth = module.loop_depth(node, within=func)
                if depth < 1:
                    continue
                guarded = is_cost_guarded(module, node, config.cost_guard_names)

                reason = self._materialisation(node, facts)
                if reason is not None and not guarded:
                    findings.append(self.finding(
                        module, node, "ALEX-C030",
                        f"{reason} inside a loop of hot function {func.name}() "
                        "materialises per row",
                        hint="stay in ID space inside the kernel; decode once "
                             "at the projection/ordering boundary",
                    ))

                emission = self._obs_emission(node)
                if emission is not None and not guarded:
                    findings.append(self.finding(
                        module, node, "ALEX-C031",
                        f"{emission} inside a loop of hot function {func.name}() "
                        "pays instrumentation cost per row",
                        hint="accumulate locally and emit once after the loop, "
                             "or guard with `if tracer is not None:`",
                    ))

                if depth >= 2:
                    allocation = self._allocation(node)
                    if allocation is not None:
                        findings.append(self.finding(
                            module, node, "ALEX-C032",
                            f"{allocation} at loop depth {depth} in hot function "
                            f"{func.name}() allocates per output row",
                            hint="reuse buffers or restructure the kernel if the "
                                 "allocation is avoidable; baseline it with a "
                                 "justification if the row must be materialised",
                        ))
        return findings

    @staticmethod
    def _materialisation(node: ast.Call, facts: FunctionFacts) -> str | None:
        if isinstance(node.func, ast.Attribute) and node.func.attr == "decode":
            receiver = receiver_tail(node.func) or "<expr>"
            return f"{receiver}.decode() term materialisation"
        if isinstance(node.func, ast.Name):
            if node.func.id in facts.decode_aliases:
                return f"{node.func.id}() (aliases dictionary.decode)"
            if node.func.id == "str" and node.args:
                return "str() materialisation"
        return None

    @staticmethod
    def _obs_emission(node: ast.Call) -> str | None:
        if not isinstance(node.func, ast.Attribute):
            return None
        receiver = receiver_tail(node.func)
        if receiver == "obs" and node.func.attr in OBS_EMIT_FUNCS:
            return f"obs.{node.func.attr}()"
        if receiver in TRACE_RECEIVERS and node.func.attr == "event":
            return f"{receiver}.event()"
        return None

    @staticmethod
    def _allocation(node: ast.Call) -> str | None:
        if isinstance(node.func, ast.Name) and node.func.id in CONTAINER_CONSTRUCTORS:
            return f"{node.func.id}() allocation"
        if isinstance(node.func, ast.Attribute) and node.func.attr == "copy":
            return f"{receiver_tail(node.func) or '<expr>'}.copy() allocation"
        return None
