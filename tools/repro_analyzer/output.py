"""Finding renderers: text, JSON, and SARIF 2.1.0.

SARIF output is the minimal subset GitHub code scanning ingests: one run,
one driver with the full rule table, one result per finding with a
physical location. Severities map error->error, warning->warning,
info->note.
"""

from __future__ import annotations

import json

from .model import CodeFinding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

_SARIF_LEVEL = {"error": "error", "warning": "warning", "info": "note"}


def render_text(findings: list[CodeFinding], suppressed: int = 0) -> str:
    lines = [finding.format() for finding in findings]
    if findings:
        lines.append(f"{len(findings)} finding(s)")
    else:
        lines.append("no findings")
    if suppressed:
        lines.append(f"({suppressed} baselined finding(s) suppressed)")
    return "\n".join(lines)


def render_json(findings: list[CodeFinding], suppressed: int = 0) -> str:
    return json.dumps(
        {
            "findings": [finding.to_dict() for finding in findings],
            "suppressed": suppressed,
        },
        indent=2,
        sort_keys=True,
    )


def render_sarif(
    findings: list[CodeFinding],
    rules: dict[str, tuple[str, str]],
    tool_name: str = "repro-analyzer",
    tool_version: str = "1.0.0",
) -> str:
    """SARIF document with the complete rule table and one result per
    finding; rules the run never fired stay in the table so dashboards can
    show them as passing."""
    rule_ids = sorted(rules)
    rule_index = {code: index for index, code in enumerate(rule_ids)}
    sarif_rules = [
        {
            "id": code,
            "shortDescription": {"text": rules[code][1]},
            "defaultConfiguration": {"level": _SARIF_LEVEL[rules[code][0]]},
            "helpUri": f"https://example.invalid/docs/diagnostics.md#{code.lower()}",
        }
        for code in rule_ids
    ]
    results = []
    for finding in findings:
        message = finding.message
        if finding.hint:
            message += f" (hint: {finding.hint})"
        results.append({
            "ruleId": finding.code,
            "ruleIndex": rule_index.get(finding.code, -1),
            "level": _SARIF_LEVEL.get(finding.severity, "note"),
            "message": {"text": message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": max(finding.column, 1),
                        },
                    }
                }
            ],
        })
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": tool_version,
                        "informationUri": "https://example.invalid/docs/diagnostics.md",
                        "rules": sarif_rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
