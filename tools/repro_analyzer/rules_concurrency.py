"""C5 — concurrency contracts (ALEX-C040..C044, C050) and ``locks.json``.

The ROADMAP's ALEX-as-a-service tentpole puts a long-lived engine behind
concurrent request handlers, so the locking discipline of the shared
structures (the obs registry, the trace ring buffer, the SPARQL plan
cache) stops being a convention and becomes a contract. This pass turns
it into a checked one:

* a **lock inventory** discovers every ``threading.Lock``/``RLock`` held
  by a class (``self._lock = threading.Lock()``) or a module
  (``_cache_lock = threading.Lock()``), infers which attributes each
  lock *guards* from the mutations performed inside ``with <lock>:``
  blocks, and is emitted as a committed artifact (``locks.json``) next
  to ``writers.json``;
* a lightweight **intra-module call graph** propagates "holds lock L"
  through private helper calls: a ``_helper`` whose every call site
  holds L is analyzed as entered with L held (greatest-fixpoint
  intersection over call sites);
* on top of that inventory, the checked contracts:

  - **ALEX-C040** — a guarded attribute is read or written outside its
    lock (``__init__`` is exempt: construction is single-threaded);
  - **ALEX-C041** — two locks are acquired in opposite orders somewhere
    in the analyzed tree (static lock graph; every acquisition edge on a
    cycle is flagged as a potential deadlock, including re-acquiring a
    non-reentrant ``Lock`` already held);
  - **ALEX-C042** — a blocking call (``time.sleep``, I/O, a nested
    ``.acquire()``) happens while a lock is held, or inside an
    ``async def`` (where it stalls the event loop);
  - **ALEX-C043** — a manual ``acquire()`` is not immediately followed
    by ``try:`` ... ``finally: release()``, so an exception leaks the
    lock;
  - **ALEX-C044** — a method returns/yields a bare reference to guarded
    *mutable* state (list/dict/set-valued), letting it escape its lock
    even when the return itself runs locked;
  - **ALEX-C050** — a *designated writer* (``writers.json``) of a
    lock-owning class mutates guarded state without holding the lock —
    the cross-check between the C3 mutation inventory and this tier.

Heuristics are deliberately modest: attribute guards are inferred only
for the module's own inventoried locks; lock-ish *names* (a parameter
called ``lock``) participate only in the C042/C043 shape checks. Code
that acquires manually and then blocks three statements later is out of
scope — the with-statement is the only held-region tracker.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from .dataflow import dotted_parts
from .model import AnalysisContext, CodeFinding, ModuleContext, Pass, finding_at
from .rules_mutation import CONTAINER_MUTATORS

#: Constructors recognised as lock factories (bare or ``threading.``-qualified).
LOCK_FACTORIES = frozenset({"Lock", "RLock"})

#: Receiver methods that mutate a container in place, for guard inference
#: (the C3 set plus the OrderedDict/deque verbs the lock modules use).
CONCURRENCY_MUTATORS = CONTAINER_MUTATORS | {"move_to_end", "appendleft", "popleft"}

#: Initializer shapes marking an attribute as mutable-container-valued (C044).
MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "defaultdict", "OrderedDict", "deque", "Counter",
    "bytearray",
})

#: Methods whose body is exempt from the C040/C050 access checks:
#: construction is single-threaded by contract.
CHECK_EXEMPT_METHODS = frozenset({"__init__", "__new__"})

MODULE_SCOPE = "<module>"


def _lock_factory_kind(value: ast.AST) -> str | None:
    """``threading.Lock()`` / ``Lock()`` -> "Lock"; RLock likewise; else None."""
    if not isinstance(value, ast.Call) or value.args or value.keywords:
        return None
    parts = dotted_parts(value.func)
    if not parts or parts[-1] not in LOCK_FACTORIES:
        return None
    if len(parts) > 1 and parts[-2] != "threading":
        return None
    return parts[-1]


def _is_mutable_initializer(value: ast.AST) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set,
                          ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        parts = dotted_parts(value.func)
        return bool(parts) and parts[-1] in MUTABLE_FACTORIES
    return False


def _self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("self", "cls")
    ):
        return node.attr
    return None


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on valid trees
        return ""


@dataclass
class _Scope:
    """One lock-owning candidate scope: a top-level class or the module."""

    name: str                                  # class name or "<module>"
    locks: dict[str, str] = field(default_factory=dict)   # lock name -> kind
    mutable: set[str] = field(default_factory=set)        # container-valued attrs
    guards: dict[str, set[str]] = field(default_factory=dict)  # attr -> lock tokens
    acquired_in: dict[str, set[str]] = field(default_factory=dict)  # lock -> funcs


@dataclass
class _Access:
    node: ast.AST
    func: str                  # qualified function name ("Cls.meth" / "f")
    scope: str                 # owning scope name of the accessed state
    attr: str
    is_write: bool
    held: frozenset


@dataclass
class _Acquisition:
    node: ast.AST
    func: str
    token: str                 # held-set token of the acquired lock
    via: str                   # "with" | "acquire"
    held: frozenset
    in_async: bool


@dataclass
class _Blocking:
    node: ast.AST
    func: str
    what: str
    held: frozenset
    in_async: bool


@dataclass
class _Escape:
    node: ast.AST
    func: str
    scope: str
    attr: str
    verb: str                  # "returns" | "yields"


@dataclass
class LockOrderEdge:
    """One acquisition of ``dst`` while ``src`` was held (C041 graph edge)."""

    src: str                   # qualified lock id "rel::scope.name"
    dst: str
    rel: str
    line: int
    column: int
    src_display: str
    dst_display: str


class ConcurrencyContractsPass(Pass):
    name = "concurrency-contracts"
    codes = {
        "ALEX-C040": (
            "error",
            "lock-guarded attribute read or written outside its lock",
        ),
        "ALEX-C041": (
            "error",
            "inconsistent lock-acquisition order (potential deadlock cycle)",
        ),
        "ALEX-C042": (
            "warning",
            "blocking call while holding a lock or inside an async function",
        ),
        "ALEX-C043": (
            "error",
            "manual lock acquire() without a try/finally release",
        ),
        "ALEX-C044": (
            "warning",
            "locked method returns a reference to guarded mutable state",
        ),
        "ALEX-C050": (
            "error",
            "designated writer mutates guarded state without holding the owning lock",
        ),
    }

    def run(self, module: ModuleContext, ctx: AnalysisContext) -> Iterable[CodeFinding]:
        if not ctx.config.in_library(module.rel):
            return []
        scan = _ModuleScan(module, ctx.config)
        scan.collect()
        findings = scan.check()
        scan.export(ctx)
        return findings

    # -- C041: resolved once, over the whole-run lock graph ----------------

    def finalize(self, ctx: AnalysisContext) -> Iterable[CodeFinding]:
        edges: list[LockOrderEdge] = ctx.lock_order_edges
        adjacency: dict[str, set[str]] = {}
        for edge in edges:
            adjacency.setdefault(edge.src, set()).add(edge.dst)
        findings = []
        seen: set[tuple] = set()
        for edge in edges:
            if edge.src == edge.dst:
                if ctx.lock_kinds.get(edge.src) == "RLock":
                    continue  # re-entrant by design
                message = (
                    f"re-acquiring non-reentrant lock {edge.src_display} while "
                    "it is already held on this path — guaranteed self-deadlock"
                )
                hint = "use threading.RLock, or restructure so the helper is " \
                       "called with the lock already dropped"
            elif self._reaches(adjacency, edge.dst, edge.src):
                message = (
                    f"acquires {edge.dst_display} while holding "
                    f"{edge.src_display}, but the opposite order is taken "
                    "elsewhere — a potential deadlock cycle"
                )
                hint = "pick one global acquisition order for these locks and " \
                       "apply it on every path"
            else:
                continue
            key = (edge.rel, edge.line, edge.column, edge.src, edge.dst)
            if key in seen:
                continue
            seen.add(key)
            findings.append(CodeFinding(
                path=edge.rel, line=edge.line, column=edge.column,
                code="ALEX-C041", severity=self.codes["ALEX-C041"][0],
                message=message, hint=hint,
            ))
        return findings

    @staticmethod
    def _reaches(adjacency: dict[str, set[str]], start: str, goal: str) -> bool:
        stack, visited = [start], set()
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in visited:
                continue
            visited.add(node)
            stack.extend(adjacency.get(node, ()))
        return False


class _ModuleScan:
    """All concurrency facts of one module, then the checks over them."""

    def __init__(self, module: ModuleContext, config):
        self.module = module
        self.config = config
        self.scopes: dict[str, _Scope] = {}
        self.functions: dict[str, tuple[ast.AST, str]] = {}  # qual -> (node, scope)
        self.call_sites: list[tuple[str, str, frozenset]] = []
        self.entry_held: dict[str, frozenset] = {}
        self.accesses: list[_Access] = []
        self.acquisitions: list[_Acquisition] = []
        self.blockings: list[_Blocking] = []
        self.escapes: list[_Escape] = []
        self.findings: list[CodeFinding] = []
        self._severity = dict(ConcurrencyContractsPass.codes)

    # ------------------------------------------------------------------ #
    # Collection
    # ------------------------------------------------------------------ #

    def collect(self) -> None:
        self._discover_scopes()
        for qual, (func, scope_name) in self.functions.items():
            self._scan_function(qual, func, scope_name)
        self._solve_entry_held()
        self._infer_guards()

    def _discover_scopes(self) -> None:
        tree = self.module.tree
        module_scope = _Scope(MODULE_SCOPE)
        for stmt in tree.body:
            targets, value = self._assign_shape(stmt)
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                kind = _lock_factory_kind(value)
                if kind is not None:
                    module_scope.locks[target.id] = kind
                elif _is_mutable_initializer(value):
                    module_scope.mutable.add(target.id)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = (stmt, MODULE_SCOPE)
        self.scopes[MODULE_SCOPE] = module_scope

        for class_node in tree.body:
            if not isinstance(class_node, ast.ClassDef):
                continue
            scope = _Scope(class_node.name)
            for node in ast.walk(class_node):
                targets, value = self._assign_shape(node)
                for target in targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    kind = _lock_factory_kind(value)
                    if kind is not None:
                        scope.locks[attr] = kind
                    elif _is_mutable_initializer(value):
                        scope.mutable.add(attr)
            for method in class_node.body:
                if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self.functions[f"{class_node.name}.{method.name}"] = (
                        method, class_node.name
                    )
            self.scopes[class_node.name] = scope

    @staticmethod
    def _assign_shape(node: ast.AST) -> tuple[list[ast.AST], ast.AST | None]:
        """Targets and value of a plain/annotated assignment, else ([], None)."""
        if isinstance(node, ast.Assign):
            return list(node.targets), node.value
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            return [node.target], node.value
        return [], None

    # -- per-function scan -------------------------------------------------

    def _scan_function(self, qual: str, func: ast.AST, scope_name: str) -> None:
        state = _FuncState(
            qual=qual,
            scope=scope_name,
            in_async=isinstance(func, ast.AsyncFunctionDef),
            shadowed=self._shadowed_names(func),
        )
        for stmt in func.body:
            self._walk(stmt, frozenset(), state)
        self._check_manual_acquires(qual, func, scope_name)

    @staticmethod
    def _shadowed_names(func: ast.AST) -> frozenset[str]:
        """Names that are function-local (params or bare assignments without
        a ``global`` declaration) and therefore never alias module globals."""
        declared_global: set[str] = set()
        assigned: set[str] = set()
        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            assigned.add(arg.arg)
        if args.vararg:
            assigned.add(args.vararg.arg)
        if args.kwarg:
            assigned.add(args.kwarg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                assigned.add(node.id)
        return frozenset(assigned - declared_global)

    def _walk(self, node: ast.AST, held: frozenset, state: "_FuncState") -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = []
            for item in node.items:
                self._walk(item.context_expr, held, state)
                if item.optional_vars is not None:
                    self._walk(item.optional_vars, held, state)
                token = self._lock_token(item.context_expr, state)
                if token is not None:
                    acquired.append(token)
            inner = held
            for token in acquired:
                self.acquisitions.append(_Acquisition(
                    node=node, func=state.qual, token=token, via="with",
                    held=inner, in_async=state.in_async,
                ))
                inner = inner | {token}
            for stmt in node.body:
                self._walk(stmt, inner, state)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested definition runs later, possibly without the lock:
            # analyze its body with nothing held and no entry propagation.
            nested = _FuncState(
                qual=f"{state.qual}.<nested>",
                scope=state.scope,
                in_async=isinstance(node, ast.AsyncFunctionDef),
                shadowed=state.shadowed | self._shadowed_names(node)
                if not isinstance(node, ast.Lambda) else state.shadowed,
            )
            body = node.body if not isinstance(node, ast.Lambda) else [node.body]
            for child in body:
                self._walk(child, frozenset(), nested)
            return

        self._classify(node, held, state)
        for child in ast.iter_child_nodes(node):
            self._walk(child, held, state)

    def _classify(self, node: ast.AST, held: frozenset, state: "_FuncState") -> None:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            self._classify_writes(node, held, state)
        elif isinstance(node, ast.Call):
            self._classify_call(node, held, state)
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            attr = _self_attr(node)
            if (
                attr is not None
                and id(node) not in state.consumed
                and state.scope != MODULE_SCOPE
            ):
                self.accesses.append(_Access(
                    node=node, func=state.qual, scope=state.scope, attr=attr,
                    is_write=False, held=held,
                ))
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if id(node) not in state.consumed and node.id not in state.shadowed:
                self.accesses.append(_Access(
                    node=node, func=state.qual, scope=MODULE_SCOPE, attr=node.id,
                    is_write=False, held=held,
                ))
        elif isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
            verb = "returns" if isinstance(node, ast.Return) else "yields"
            attr = _self_attr(node.value)
            if attr is not None and state.scope != MODULE_SCOPE:
                self.escapes.append(_Escape(
                    node=node, func=state.qual, scope=state.scope, attr=attr,
                    verb=verb,
                ))
            elif (
                isinstance(node.value, ast.Name)
                and node.value.id not in state.shadowed
            ):
                self.escapes.append(_Escape(
                    node=node, func=state.qual, scope=MODULE_SCOPE,
                    attr=node.value.id, verb=verb,
                ))

    def _classify_writes(self, node: ast.AST, held: frozenset,
                         state: "_FuncState") -> None:
        if isinstance(node, ast.Delete):
            targets = node.targets
        else:
            targets, value = self._assign_shape_aug(node)
            if targets is None:
                return
        queue = list(targets)
        while queue:
            target = queue.pop()
            if isinstance(target, (ast.Tuple, ast.List)):
                queue.extend(target.elts)
                continue
            anchor = target
            if isinstance(target, ast.Subscript):
                anchor = target.value
                state.consumed.add(id(anchor))
            attr = _self_attr(anchor)
            if attr is not None and state.scope != MODULE_SCOPE:
                self.accesses.append(_Access(
                    node=anchor, func=state.qual, scope=state.scope, attr=attr,
                    is_write=True, held=held,
                ))
            elif isinstance(anchor, ast.Name):
                bare = not isinstance(target, ast.Subscript)
                if bare and anchor.id in state.shadowed:
                    continue  # plain local assignment, not the global
                if not bare and anchor.id in state.shadowed:
                    continue
                self.accesses.append(_Access(
                    node=anchor, func=state.qual, scope=MODULE_SCOPE,
                    attr=anchor.id, is_write=True, held=held,
                ))

    @staticmethod
    def _assign_shape_aug(node: ast.AST):
        if isinstance(node, ast.Assign):
            return node.targets, node.value
        if isinstance(node, ast.AugAssign):
            return [node.target], node.value
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            return [node.target], node.value
        return None, None

    def _classify_call(self, node: ast.Call, held: frozenset,
                       state: "_FuncState") -> None:
        func = node.func
        # In-place mutator: <receiver>.append(...) and friends.
        if isinstance(func, ast.Attribute) and func.attr in CONCURRENCY_MUTATORS:
            receiver = func.value
            attr = _self_attr(receiver)
            if attr is not None and state.scope != MODULE_SCOPE:
                state.consumed.add(id(receiver))
                self.accesses.append(_Access(
                    node=node, func=state.qual, scope=state.scope, attr=attr,
                    is_write=True, held=held,
                ))
            elif isinstance(receiver, ast.Name) and receiver.id not in state.shadowed:
                state.consumed.add(id(receiver))
                self.accesses.append(_Access(
                    node=node, func=state.qual, scope=MODULE_SCOPE,
                    attr=receiver.id, is_write=True, held=held,
                ))
        # Manual acquire: records a lock-graph edge / nested-acquire C042.
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            token = self._lock_token(func.value, state)
            if token is not None:
                self.acquisitions.append(_Acquisition(
                    node=node, func=state.qual, token=token, via="acquire",
                    held=held, in_async=state.in_async,
                ))
        # Blocking-call table.
        what = self._blocking_match(node)
        if what is not None:
            self.blockings.append(_Blocking(
                node=node, func=state.qual, what=what, held=held,
                in_async=state.in_async,
            ))
        # Intra-module call graph: self._helper() / bare helper().
        callee = None
        if isinstance(func, ast.Attribute):
            recv_attr = _self_attr(func)
            if recv_attr is not None and state.scope != MODULE_SCOPE:
                callee = f"{state.scope}.{func.attr}"
        elif isinstance(func, ast.Name) and func.id not in state.shadowed:
            callee = func.id
        if callee is not None and callee in self.functions:
            self.call_sites.append((state.qual, callee, held))

    def _blocking_match(self, node: ast.Call) -> str | None:
        parts = dotted_parts(node.func)
        if not parts:
            return None
        for entry in self.config.blocking_calls:
            eparts = entry.split(".")
            if len(eparts) == 1:
                if parts == eparts:
                    return entry
            elif len(parts) >= len(eparts) and parts[-len(eparts):] == eparts:
                return entry
        return None

    def _lock_token(self, expr: ast.AST, state: "_FuncState") -> str | None:
        """Held-set token for a lock-valued expression, or None.

        Inventoried locks get precise tokens ("<scope>:<name>"); anything
        whose terminal identifier contains "lock" gets a heuristic token
        that participates only in the C042/C043 shape checks.
        """
        attr = _self_attr(expr)
        if attr is not None and state.scope != MODULE_SCOPE:
            if attr in self.scopes[state.scope].locks:
                return f"{state.scope}:{attr}"
        if isinstance(expr, ast.Name):
            if expr.id in self.scopes[MODULE_SCOPE].locks and (
                expr.id not in state.shadowed
            ):
                return f"{MODULE_SCOPE}:{expr.id}"
            if "lock" in expr.id.lower():
                return f"?:{expr.id}"
        if isinstance(expr, ast.Attribute) and "lock" in expr.attr.lower():
            return f"?:{expr.attr}"
        return None

    # -- C043: manual acquire without try/finally --------------------------

    def _check_manual_acquires(self, qual: str, func: ast.AST,
                               scope_name: str) -> None:
        state = _FuncState(qual=qual, scope=scope_name, in_async=False,
                           shadowed=self._shadowed_names(func))
        for body in self._statement_lists(func):
            for index, stmt in enumerate(body):
                receiver = self._acquire_receiver(stmt)
                if receiver is None:
                    continue
                if self._lock_token(receiver, state) is None:
                    continue
                follower = body[index + 1] if index + 1 < len(body) else None
                if isinstance(follower, ast.Try) and self._releases(
                    follower, _unparse(receiver)
                ):
                    continue
                source = _unparse(receiver)
                self._emit(stmt, "ALEX-C043",
                           f"{source}.acquire() is not followed by "
                           "try/finally release; an exception on this path "
                           "leaks the lock",
                           hint=f"prefer `with {source}:`, or wrap the locked "
                                "region in try/finally with "
                                f"`{source}.release()` in the finally block")

    @staticmethod
    def _statement_lists(func: ast.AST):
        for node in ast.walk(func):
            for attr in ("body", "orelse", "finalbody"):
                stmts = getattr(node, attr, None)
                if isinstance(stmts, list) and stmts and isinstance(stmts[0], ast.stmt):
                    yield stmts

    @staticmethod
    def _acquire_receiver(stmt: ast.AST) -> ast.AST | None:
        value = None
        if isinstance(stmt, ast.Expr):
            value = stmt.value
        elif isinstance(stmt, ast.Assign):
            value = stmt.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "acquire"
        ):
            return value.func.value
        return None

    @staticmethod
    def _releases(try_node: ast.Try, receiver_source: str) -> bool:
        for stmt in try_node.finalbody:
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and stmt.value.func.attr == "release"
                and _unparse(stmt.value.func.value) == receiver_source
            ):
                return True
        return False

    # ------------------------------------------------------------------ #
    # Resolution
    # ------------------------------------------------------------------ #

    def _solve_entry_held(self) -> None:
        universe = frozenset().union(
            *(acq.held | {acq.token} for acq in self.acquisitions),
            *(access.held for access in self.accesses),
        ) if (self.acquisitions or self.accesses) else frozenset()
        called = {callee for _, callee, _ in self.call_sites}
        entry: dict[str, frozenset] = {}
        for qual in self.functions:
            bare = qual.rsplit(".", 1)[-1]
            private = bare.startswith("_") and not bare.startswith("__")
            entry[qual] = universe if private and qual in called else frozenset()
        changed = True
        while changed:
            changed = False
            for qual in entry:
                if not entry[qual]:
                    continue
                sites = [
                    held | entry.get(caller, frozenset())
                    for caller, callee, held in self.call_sites
                    if callee == qual
                ]
                if not sites:
                    continue
                narrowed = frozenset.intersection(*sites)
                if narrowed != entry[qual]:
                    entry[qual] = narrowed
                    changed = True
        self.entry_held = entry

    def _effective(self, func: str, held: frozenset) -> frozenset:
        return held | self.entry_held.get(func, frozenset())

    def _infer_guards(self) -> None:
        for access in self.accesses:
            if not access.is_write:
                continue
            scope = self.scopes[access.scope]
            if access.attr in scope.locks:
                continue
            for token in self._effective(access.func, access.held):
                owner, _, name = token.partition(":")
                if owner == access.scope and name in scope.locks:
                    scope.guards.setdefault(access.attr, set()).add(token)
        for acq in self.acquisitions:
            owner, _, name = acq.token.partition(":")
            if owner == "?":
                continue
            scope = self.scopes.get(owner)
            if scope is not None and name in scope.locks:
                scope.acquired_in.setdefault(name, set()).add(
                    acq.func.rsplit(".", 1)[-1]
                )

    # ------------------------------------------------------------------ #
    # Checks
    # ------------------------------------------------------------------ #

    def check(self) -> list[CodeFinding]:
        self._check_guarded_access()
        self._check_blocking()
        self._check_acquisition_shapes()
        self._check_escapes()
        return self.findings

    def _exempt(self, func: str) -> bool:
        bare = func.rsplit(".", 1)[-1]
        return bare in CHECK_EXEMPT_METHODS or func.endswith(".<nested>") and (
            func.split(".")[-2] in CHECK_EXEMPT_METHODS
        )

    def _check_guarded_access(self) -> None:
        designated = self.config.designated_writers
        for access in self.accesses:
            if self._exempt(access.func):
                continue
            scope = self.scopes[access.scope]
            guards = scope.guards.get(access.attr)
            if not guards:
                continue
            if self._effective(access.func, access.held) & guards:
                continue
            lock_names = ", ".join(sorted(
                self._display(token) for token in guards
            ))
            owner_display = (
                f"{access.scope}.{access.attr}" if access.scope != MODULE_SCOPE
                else access.attr
            )
            if access.is_write:
                writer_set = designated.get(access.scope, ())
                bare = access.func.rsplit(".", 1)[-1]
                if access.scope != MODULE_SCOPE and bare in writer_set:
                    self._emit(access.node, "ALEX-C050",
                               f"designated writer {access.func} mutates "
                               f"guarded state {owner_display!r} without "
                               f"holding {lock_names}",
                               hint="the writers.json contract only holds if "
                                    "every designated writer takes the owning "
                                    "lock; wrap the mutation in "
                                    f"`with {lock_names}:`")
                    continue
                verb = "written"
            else:
                verb = "read"
            self._emit(access.node, "ALEX-C040",
                       f"{owner_display!r} is guarded by {lock_names} "
                       f"(see locks.json) but is {verb} here without it",
                       hint=f"move the access inside `with {lock_names}:`, or "
                            "snapshot the state under the lock first")

    def _check_blocking(self) -> None:
        for blocking in self.blockings:
            effective = self._effective(blocking.func, blocking.held)
            if effective:
                locks = ", ".join(sorted(self._display(t) for t in effective))
                self._emit(blocking.node, "ALEX-C042",
                           f"blocking call {blocking.what}() while holding "
                           f"{locks} stalls every other thread contending for "
                           "the lock",
                           hint="do the blocking work outside the locked "
                                "region; hold locks only around state access")
            elif blocking.in_async:
                self._emit(blocking.node, "ALEX-C042",
                           f"blocking call {blocking.what}() inside an async "
                           "function stalls the event loop",
                           hint="await an async equivalent or run it in a "
                                "thread-pool executor")

    def _check_acquisition_shapes(self) -> None:
        for acq in self.acquisitions:
            effective = self._effective(acq.func, acq.held)
            if acq.via == "acquire" and effective:
                locks = ", ".join(sorted(self._display(t) for t in effective))
                self._emit(acq.node, "ALEX-C042",
                           f"nested {self._display(acq.token)}.acquire() while "
                           f"holding {locks} blocks with a lock held",
                           hint="acquire both locks with `with a, b:` in one "
                                "global order, or drop the outer lock first")
            if acq.in_async and acq.via == "with":
                self._emit(acq.node, "ALEX-C042",
                           f"synchronous lock {self._display(acq.token)} "
                           "acquired inside an async function blocks the "
                           "event loop while contended",
                           hint="use an asyncio.Lock in coroutine code")

    def _check_escapes(self) -> None:
        for escape in self.escapes:
            if self._exempt(escape.func):
                continue
            scope = self.scopes[escape.scope]
            if escape.attr not in scope.guards or escape.attr not in scope.mutable:
                continue
            locks = ", ".join(sorted(
                self._display(t) for t in scope.guards[escape.attr]
            ))
            owner_display = (
                f"{escape.scope}.{escape.attr}" if escape.scope != MODULE_SCOPE
                else escape.attr
            )
            self._emit(escape.node, "ALEX-C044",
                       f"{escape.func} {escape.verb} the guarded mutable "
                       f"container {owner_display!r} itself; the reference "
                       f"escapes {locks} and callers mutate or iterate it "
                       "unlocked",
                       hint="return a copy or an immutable snapshot "
                            "(list(...), tuple(...), dict(...)) taken under "
                            "the lock")

    def _display(self, token: str) -> str:
        owner, _, name = token.partition(":")
        if owner == MODULE_SCOPE or owner == "?":
            return name
        return f"self.{name}" if owner in self.scopes else name

    def _emit(self, node: ast.AST, code: str, message: str,
              hint: str | None = None) -> None:
        self.findings.append(finding_at(
            node, self.module.rel, code, self._severity[code][0], message, hint,
        ))

    # ------------------------------------------------------------------ #
    # Export: locks.json entries + the cross-module lock graph
    # ------------------------------------------------------------------ #

    def export(self, ctx: AnalysisContext) -> None:
        rel = self.module.rel
        for scope_name in sorted(self.scopes):
            scope = self.scopes[scope_name]
            if not scope.locks:
                continue
            inverted: dict[str, set[str]] = {name: set() for name in scope.locks}
            for attr, tokens in scope.guards.items():
                for token in tokens:
                    _, _, name = token.partition(":")
                    if name in inverted:
                        inverted[name].add(attr)
            ctx.lock_inventory[f"{rel}::{scope_name}"] = {
                "module": rel,
                "scope": scope_name,
                "locks": {
                    name: {
                        "kind": scope.locks[name],
                        "guards": sorted(inverted[name]),
                        "acquired_in": sorted(scope.acquired_in.get(name, ())),
                    }
                    for name in sorted(scope.locks)
                },
            }
            for name, kind in scope.locks.items():
                ctx.lock_kinds[f"{rel}::{scope_name}.{name}"] = kind

        for acq in self.acquisitions:
            dst = self._qualify(acq.token)
            if dst is None:
                continue
            for held_token in self._effective(acq.func, acq.held):
                src = self._qualify(held_token)
                if src is None:
                    continue
                ctx.lock_order_edges.append(LockOrderEdge(
                    src=src, dst=dst, rel=rel,
                    line=getattr(acq.node, "lineno", 0) or 0,
                    column=(getattr(acq.node, "col_offset", 0) or 0) + 1,
                    src_display=self._qualified_display(held_token),
                    dst_display=self._qualified_display(acq.token),
                ))

    def _qualify(self, token: str) -> str | None:
        owner, _, name = token.partition(":")
        if owner == "?":
            return None
        return f"{self.module.rel}::{owner}.{name}"

    def _qualified_display(self, token: str) -> str:
        owner, _, name = token.partition(":")
        if owner in ("?", MODULE_SCOPE):
            return name
        return f"{owner}.{name}"


@dataclass
class _FuncState:
    qual: str
    scope: str
    in_async: bool
    shadowed: frozenset[str]
    consumed: set[int] = field(default_factory=set)
