"""Multi-pass driver: file discovery, parsing, pass scheduling, results.

One :func:`analyze_paths` call parses each module once, hands the shared
:class:`ModuleContext` to every enabled pass, and returns the merged,
position-sorted findings plus the cross-module artifacts (the writer
inventory) accumulated along the way.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from . import codes as codes_module
from .model import (
    AnalysisContext,
    AnalyzerConfig,
    CodeFinding,
    ModuleContext,
    Pass,
)
from .rules_concurrency import ConcurrencyContractsPass
from .rules_cost import HotPathCostPass
from .rules_encoding import EncodingBoundaryPass
from .rules_mutation import MutationSafetyPass
from .rules_repo import RepoInvariantsPass
from .rules_rng import RngDisciplinePass

#: Rule families -> pass factory. The wrapper (tools/lint_repro.py) runs
#: only "repo"; `repro lint-code` runs everything by default.
PASS_FAMILIES: dict[str, type[Pass]] = {
    "repo": RepoInvariantsPass,
    "encoding": EncodingBoundaryPass,
    "rng": RngDisciplinePass,
    "mutation": MutationSafetyPass,
    "cost": HotPathCostPass,
    "concurrency": ConcurrencyContractsPass,
}

DEFAULT_FAMILIES = ("repo", "encoding", "rng", "mutation", "cost", "concurrency")


def build_passes(families: tuple[str, ...] = DEFAULT_FAMILIES) -> list[Pass]:
    unknown = [f for f in families if f not in PASS_FAMILIES]
    if unknown:
        raise ValueError(
            f"unknown rule families {unknown}; known: {sorted(PASS_FAMILIES)}"
        )
    return [PASS_FAMILIES[family]() for family in families]


def all_rule_codes(families: tuple[str, ...] = DEFAULT_FAMILIES) -> dict[str, tuple[str, str]]:
    """code -> (severity, summary) across the enabled families."""
    table: dict[str, tuple[str, str]] = {}
    for family in families:
        table.update(PASS_FAMILIES[family].codes)
    return table


def collect_registered_codes(root: str, config: AnalyzerConfig | None = None) -> set[str]:
    """String keys of every module-level ``CODES = {...}`` dict under the
    library roots, plus this analyzer's own ALEX-C table.

    This is the static mirror of ``repro.diagnostics``: each analyzer
    registers a literal CODES table, so parsing those tables recovers the
    registry without importing the package (CI runs the wrapper without
    ``PYTHONPATH=src``).
    """
    config = config or AnalyzerConfig()
    codes: set[str] = set(codes_module.CODES)
    for library_root in config.library_roots:
        base = os.path.join(root, *library_root.strip("/").split("/"))
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                with open(path, "r", encoding="utf-8") as handle:
                    try:
                        tree = ast.parse(handle.read())
                    except SyntaxError:
                        continue  # reported as R000 during analysis
                for node in tree.body:
                    if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                        continue
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    if not any(
                        isinstance(t, ast.Name) and t.id == "CODES" for t in targets
                    ):
                        continue
                    if isinstance(node.value, ast.Dict):
                        for key in node.value.keys:
                            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                                codes.add(key.value)
    return codes


def iter_python_files(paths: list[str], root: str):
    """Yield ``(abs_path, rel_path)`` for every .py file under ``paths``
    (files or directories, resolved against ``root`` when relative)."""
    seen: set[str] = set()
    for raw in paths:
        base = raw if os.path.isabs(raw) else os.path.join(root, raw)
        base = os.path.normpath(base)
        if os.path.isfile(base):
            candidates = [base]
        elif os.path.isdir(base):
            candidates = []
            for dirpath, dirnames, filenames in os.walk(base):
                # Sorted traversal keeps module order — and with it artifact
                # and finding order — byte-stable across filesystems.
                dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                candidates.extend(
                    os.path.join(dirpath, f) for f in sorted(filenames)
                    if f.endswith(".py")
                )
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for path in candidates:
            if not path.endswith(".py") or path in seen:
                continue
            seen.add(path)
            yield path, os.path.relpath(path, root)


@dataclass
class AnalysisResult:
    findings: list[CodeFinding] = field(default_factory=list)
    writer_inventory: dict[str, dict] = field(default_factory=dict)
    lock_inventory: dict[str, dict] = field(default_factory=dict)
    modules_scanned: int = 0

    @property
    def rule_codes(self) -> set[str]:
        return {finding.code for finding in self.findings}


def analyze_paths(
    paths: list[str],
    root: str,
    config: AnalyzerConfig | None = None,
    families: tuple[str, ...] = DEFAULT_FAMILIES,
    registered_codes: set[str] | None = None,
) -> AnalysisResult:
    """Run the enabled pass families over every Python file under ``paths``."""
    config = config or AnalyzerConfig()
    if registered_codes is None:
        registered_codes = collect_registered_codes(root, config)
    passes = build_passes(families)
    ctx = AnalysisContext(config, registered_codes)
    result = AnalysisResult()

    for path, rel in iter_python_files(paths, root):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            result.findings.append(CodeFinding(
                path=rel.replace(os.sep, "/"),
                line=error.lineno or 0,
                column=(error.offset or 0) or 1,
                code="R000",
                severity="error",
                message=f"syntax error: {error.msg}",
            ))
            continue
        module = ModuleContext(path, rel, source, tree)
        result.modules_scanned += 1
        for pass_ in passes:
            result.findings.extend(pass_.run(module, ctx))

    for pass_ in passes:
        result.findings.extend(pass_.finalize(ctx))

    result.findings.sort(key=CodeFinding.sort_key)
    result.writer_inventory = {
        name: ctx.writer_inventory[name] for name in sorted(ctx.writer_inventory)
    }
    result.lock_inventory = {
        key: ctx.lock_inventory[key] for key in sorted(ctx.lock_inventory)
    }
    return result
