"""Core datatypes of the code analyzer: findings, module contexts, passes.

The analyzer is organised as a list of *passes* (see
:mod:`repro_analyzer.driver`). Each pass declares the diagnostic codes it
can emit and inspects one parsed module at a time through a
:class:`ModuleContext`, which carries the AST plus the derived structures
every pass needs (parent links, enclosing-function lookup, loop depth).

The module deliberately has **no dependency on the repro package**: the
repo-invariant wrapper (``tools/lint_repro.py``) must run in CI jobs that
never set ``PYTHONPATH=src``. Severity names mirror
``repro.diagnostics.SEVERITIES`` and the driver cross-registers the code
table when ``repro`` is importable (see :mod:`repro_analyzer.codes`).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

#: Severity levels, most severe first (mirror of repro.diagnostics).
SEVERITIES = ("error", "warning", "info")

SEVERITY_RANK: dict[str, int] = {severity: rank for rank, severity in enumerate(SEVERITIES)}


def meets_threshold(severity: str, threshold: str) -> bool:
    """True when ``severity`` is at or above (more severe than) ``threshold``."""
    return SEVERITY_RANK[severity] <= SEVERITY_RANK[threshold]


@dataclass(frozen=True)
class CodeFinding:
    """One code-level finding with a source position.

    ``path`` is repo-relative with forward slashes; ``line``/``column`` are
    1-based (column 1 = first character), matching the convention of the
    SPARQL analyzer's diagnostics and of SARIF regions.
    """

    path: str
    line: int
    column: int
    code: str
    severity: str
    message: str
    hint: str | None = None

    def format(self) -> str:
        text = f"{self.path}:{self.line}:{self.column}: {self.code} {self.severity}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.column, self.code, self.message)


def finding_at(node: ast.AST, path: str, code: str, severity: str, message: str,
               hint: str | None = None) -> CodeFinding:
    """A :class:`CodeFinding` anchored at ``node``'s source position."""
    return CodeFinding(
        path=path,
        line=getattr(node, "lineno", 0) or 0,
        column=(getattr(node, "col_offset", 0) or 0) + 1,
        code=code,
        severity=severity,
        message=message,
        hint=hint,
    )


@dataclass
class AnalyzerConfig:
    """Tunable contract tables. Defaults encode the repro architecture;
    tests override them to point the rules at fixture packages.

    All path entries are repo-relative posix suffixes — a module matches
    when its relative path ends with the entry (so ``rdf/graph.py``
    matches ``src/repro/rdf/graph.py``).
    """

    #: Path prefixes treated as *library* code (R001/R002/R005/R006 scope).
    library_roots: tuple[str, ...] = ("src/repro/",)

    #: Library modules allowed to print (the CLI surface) — basenames.
    print_allowed: tuple[str, ...] = ("cli.py", "__main__.py")

    #: Modules allowed to call ``TermDictionary.encode`` (the write path).
    #: Everything else interning terms through a graph's dictionary is
    #: dictionary growth on a read path (ALEX-C002).
    encode_boundary: tuple[str, ...] = (
        "rdf/dictionary.py",
        "rdf/graph.py",
        "rdf/dataset.py",
    )

    #: Modules allowed to decode IDs back to terms: the term-object
    #: boundary (projection / ordering / aggregation / expression
    #: evaluation) plus the dictionary itself (ALEX-C003).
    decode_boundary: tuple[str, ...] = (
        "rdf/dictionary.py",
        "rdf/graph.py",
        "rdf/dataset.py",
        "sparql/eval.py",
        "sparql/explain.py",
    )

    #: ID-keyed APIs that must never receive Term objects (ALEX-C001).
    id_api_names: tuple[str, ...] = ("triples_ids", "count_ids")

    #: Constructors whose results are RDF term objects.
    term_constructors: tuple[str, ...] = ("URIRef", "Literal", "BNode")

    #: Type annotations marking a parameter as term-valued.
    term_annotations: tuple[str, ...] = (
        "Term", "URIRef", "Literal", "BNode", "Subject", "Predicate", "Object",
    )

    #: Package prefix owning private tracer RNG state (ALEX-C011).
    rng_owner_roots: tuple[str, ...] = ("obs/",)

    #: Modules sanctioned to (re)construct engine RNGs outside ``__init__``
    #: (persistence restores the RNG state on load) (ALEX-C012).
    rng_sanctioned_modules: tuple[str, ...] = ("core/persistence.py",)

    #: Function names sanctioned to seed/construct RNGs (ALEX-C012).
    rng_sanctioned_functions: tuple[str, ...] = ("__init__",)

    #: Shared-state attribute -> owning module suffix (ALEX-C020a: any
    #: mutation of these attributes outside the owning module is flagged).
    shared_state_owners: dict[str, str] = field(default_factory=lambda: {
        "_spo": "rdf/graph.py",
        "_pos": "rdf/graph.py",
        "_osp": "rdf/graph.py",
        "_dict": "rdf/graph.py",
        "_size": "rdf/graph.py",
        "_version": "rdf/graph.py",
        "_terms": "rdf/dictionary.py",
        "_ids": "rdf/dictionary.py",
        "_links": "links.py",
        "_by_left": "links.py",
        "_by_right": "links.py",
        "_scores": "links.py",
        "_tally": "core/engine.py",
        "_plan_cache": "sparql/prepared.py",
    })

    #: Classes whose mutation surface is inventoried, with the writer
    #: methods *designated* to mutate instance state (ALEX-C020b: any other
    #: method of the class that mutates shared state is flagged).
    designated_writers: dict[str, tuple[str, ...]] = field(default_factory=lambda: {
        "Graph": ("__init__", "add", "add_all", "remove", "clear"),
        "TermDictionary": ("__init__", "encode"),
        "LinkSet": ("__init__", "add", "remove", "update"),
        "AlexEngine": (
            "__init__", "process_feedback", "end_episode", "preflight",
            "_credit", "_explore_from", "_remove_link", "_maybe_rollback",
            "reporter", "close",
        ),
    })

    #: Method names that mutate their receiver (set/dict/list mutators plus
    #: the domain writers of LinkSet / ledger / policy / value tables).
    mutator_methods: tuple[str, ...] = (
        "add", "add_all", "append", "clear", "discard", "extend", "insert",
        "pop", "popitem", "remove", "setdefault", "update",
        "record", "record_return", "record_positive", "record_negative",
        "record_feedback", "record_action", "improve", "forget_pair",
    )

    #: Hot-path functions (module suffix -> function names) for the C4 cost
    #: lints: decode/str materialization, obs events, per-row allocation.
    hot_paths: dict[str, tuple[str, ...]] = field(default_factory=lambda: {
        "sparql/eval.py": (
            "_eval_pattern_ids", "_eval_path_pattern", "_nested_loop_group",
            "_hash_join_group", "_eval_values", "match_pattern",
        ),
        "similarity/prepared.py": (
            "_string_score", "_pair_score", "_best_uncached",
            "_prepared_jaro_winkler",
        ),
    })

    #: Guard variable names whose ``is not None`` test exempts the guarded
    #: block from the C030/C031 cost lints (deliberate, off-by-default
    #: instrumentation such as tracers and EXPLAIN observers).
    cost_guard_names: tuple[str, ...] = ("tracer", "observer")

    #: Dotted call patterns the C042 check treats as blocking. Multi-part
    #: entries match by attribute-chain suffix (``time.sleep`` matches
    #: ``time.sleep(...)``); single-part entries match a bare name call
    #: only (``open`` matches ``open(...)``, never ``zf.open(...)``).
    blocking_calls: tuple[str, ...] = (
        "time.sleep",
        "open",
        "input",
        "socket.create_connection",
        "socket.getaddrinfo",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.request",
    )

    def with_changes(self, **kwargs) -> "AnalyzerConfig":
        return replace(self, **kwargs)

    def in_library(self, rel: str) -> bool:
        return any(rel.startswith(root) or root in ("", "./") for root in self.library_roots)

    def matches(self, rel: str, suffixes: Iterable[str]) -> bool:
        return any(rel.endswith(suffix) for suffix in suffixes)

    def hot_functions(self, rel: str) -> frozenset[str]:
        out: set[str] = set()
        for suffix, names in self.hot_paths.items():
            if rel.endswith(suffix):
                out.update(names)
        return frozenset(out)


class ModuleContext:
    """One parsed module plus the derived lookup structures passes share."""

    def __init__(self, path: str, rel: str, source: str, tree: ast.Module):
        self.path = path
        self.rel = rel.replace(os.sep, "/")
        self.source = source
        self.tree = tree
        self.basename = os.path.basename(path)
        self._parents: dict[ast.AST, ast.AST] | None = None

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        """Child node -> parent node, computed lazily once per module."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    parents[child] = parent
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Enclosing nodes of ``node``, innermost first."""
        parents = self.parents
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def loop_depth(self, node: ast.AST, within: ast.AST | None = None) -> int:
        """Number of for/while loops enclosing ``node`` (stopping at
        ``within`` when given — function bodies don't inherit the loops of
        their enclosing scope)."""
        depth = 0
        for ancestor in self.ancestors(node):
            if ancestor is within:
                break
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                break
            if isinstance(ancestor, (ast.For, ast.AsyncFor, ast.While)):
                depth += 1
        return depth


class AnalysisContext:
    """Cross-module state one analysis run threads through every pass."""

    def __init__(self, config: AnalyzerConfig, registered_codes: set[str]):
        self.config = config
        #: ALEX-* codes the R006 rule accepts (src CODES tables + this
        #: analyzer's own table).
        self.registered_codes = registered_codes
        #: Mutation-safety inventory accumulated by the C3 pass:
        #: class -> {"module": rel, "designated": [...], "writers": {method: [attrs]}}.
        self.writer_inventory: dict[str, dict] = {}
        #: Lock inventory accumulated by the C5 pass:
        #: "rel::scope" -> {"module": rel, "scope": name, "locks": {...}}.
        self.lock_inventory: dict[str, dict] = {}
        #: Static lock graph accumulated by the C5 pass and resolved in its
        #: ``finalize`` hook: one entry per cross-lock acquisition site.
        self.lock_order_edges: list = []
        #: Qualified lock id ("rel::scope.name") -> "Lock" | "RLock".
        self.lock_kinds: dict[str, str] = {}


class Pass:
    """Base class for analyzer passes (the rule plugin protocol).

    A pass declares ``name`` and its ``codes`` table (code ->
    (severity, summary)) and implements :meth:`run`, returning findings for
    one module. Docs for each code live in ``docs/diagnostics.md`` under
    the ``#alex-cNNN`` anchors (R-rules keep their historical docs in the
    module docstring of ``tools/lint_repro.py``).
    """

    name: str = "pass"
    codes: dict[str, tuple[str, str]] = {}

    def run(self, module: ModuleContext, ctx: AnalysisContext) -> Iterable[CodeFinding]:
        raise NotImplementedError

    def finalize(self, ctx: AnalysisContext) -> Iterable[CodeFinding]:
        """Cross-module findings emitted once after every module ran (the
        C041 lock-order cycle check is the only user today)."""
        return []

    def finding(self, module: ModuleContext, node: ast.AST, code: str, message: str,
                hint: str | None = None) -> CodeFinding:
        severity = self.codes[code][0]
        return finding_at(node, module.rel, code, severity, message, hint)
