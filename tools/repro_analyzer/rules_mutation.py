"""C3 — mutation-safety inventory (ALEX-C020/C021) and ``writers.json``.

The ROADMAP's next tentpole (ALEX-as-a-service with a single-writer
feedback queue) needs a reliable answer to "which code paths mutate shared
engine/graph state?". This pass computes that answer instead of trusting
convention:

* every method of an inventoried class (``Graph``, ``TermDictionary``,
  ``LinkSet``, ``AlexEngine``) that mutates instance state is classified;
  mutating methods outside the *designated writer* set are flagged
  (ALEX-C020), and the full classification is emitted as a
  machine-readable inventory (``writers.json``) for the service layer to
  check its queue routing against;
* mutations of owned shared attributes (``_spo``/``_pos``/``_osp``,
  ``_links``, the plan cache, ...) from outside their owning module are
  flagged with the same code — encapsulation violations are exactly the
  mutations a single-writer queue cannot see;
* iterating a graph/link index while mutating it in the loop body is
  flagged (ALEX-C021) unless the iterable is snapshotted first
  (``list(...)``/``tuple(...)``/``sorted(...)``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from .model import AnalysisContext, CodeFinding, ModuleContext, Pass

#: Receiver methods that mutate a container in place (C021 body scan).
CONTAINER_MUTATORS = frozenset({
    "add", "add_all", "append", "clear", "discard", "extend", "insert",
    "pop", "popitem", "remove", "setdefault", "update",
})

#: Iterable wrappers that snapshot before iteration (safe to mutate under).
SNAPSHOT_WRAPPERS = frozenset({"list", "tuple", "sorted", "set", "frozenset"})


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on valid trees
        return ""


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> "X", else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in ("self", "cls")
    ):
        return node.attr
    return None


class MutationSafetyPass(Pass):
    name = "mutation-safety"
    codes = {
        "ALEX-C020": (
            "error",
            "shared engine/graph state mutated by a non-designated writer",
        ),
        "ALEX-C021": (
            "error",
            "iteration over a graph/link index while mutating it in the loop body",
        ),
    }

    def run(self, module: ModuleContext, ctx: AnalysisContext) -> Iterable[CodeFinding]:
        config = ctx.config
        if not config.in_library(module.rel):
            return []
        findings: list[CodeFinding] = []
        findings.extend(self._check_shared_attribute_owners(module, ctx))
        findings.extend(self._inventory_writer_classes(module, ctx))
        findings.extend(self._check_iterate_while_mutating(module, ctx))
        return findings

    # -- C020a: owned shared attributes touched cross-module -------------

    def _check_shared_attribute_owners(
        self, module: ModuleContext, ctx: AnalysisContext
    ) -> list[CodeFinding]:
        config = ctx.config
        findings: list[CodeFinding] = []
        for node in ast.walk(module.tree):
            for attr_node, attr, how in self._mutations_in(node, config):
                owner = config.shared_state_owners.get(attr)
                if owner is None or module.rel.endswith(owner):
                    continue
                # `self._x` is instance-own state (same attribute *name* as
                # an owned one is a coincidence, e.g. FeatureSpace._by_left
                # vs LinkSet._by_left) and is covered by the designated
                # writer inventory; the cross-module rule is about poking
                # *foreign* objects' private state.
                if self._receiver_is_self(attr_node):
                    continue
                findings.append(self.finding(
                    module, attr_node, "ALEX-C020",
                    f"{how} of shared attribute {attr!r} outside its owning "
                    f"module ({owner}); route the mutation through the owner's "
                    "designated writer API",
                    hint="shared-state writers are inventoried in writers.json; "
                         "cross-module pokes bypass the single-writer contract",
                ))
        return findings

    @staticmethod
    def _receiver_is_self(anchor: ast.AST) -> bool:
        """True when the mutated attribute hangs off ``self``/``cls``:
        ``self._x = ...``, ``self._x[k] = ...``, ``self._x.update(...)``."""
        node = anchor
        if isinstance(node, ast.Call):
            node = node.func  # mutator call: anchor is the Call itself
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Attribute):
            node = node.value  # <recv>.<attr>.mutator — the owned attr access
        if isinstance(node, ast.Subscript):
            node = node.value
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
        )

    def _mutations_in(self, node: ast.AST, config):
        """Yield ``(anchor, attribute_name, description)`` for mutations of
        ``<anything>.<attr>`` performed by ``node`` (one statement/expr)."""
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute):
                    yield target, target.attr, "assignment"
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Attribute
                ):
                    yield target, target.value.attr, "item assignment"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    yield target, target.attr, "deletion"
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Attribute
                ):
                    yield target, target.value.attr, "item deletion"
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in config.mutator_methods and isinstance(
                node.func.value, ast.Attribute
            ):
                yield node, node.func.value.attr, f"{node.func.attr}() call"

    # -- C020b: writer-class methods outside the designated set -----------

    def _inventory_writer_classes(
        self, module: ModuleContext, ctx: AnalysisContext
    ) -> list[CodeFinding]:
        config = ctx.config
        findings: list[CodeFinding] = []
        for class_node in module.tree.body:
            if not isinstance(class_node, ast.ClassDef):
                continue
            designated = config.designated_writers.get(class_node.name)
            if designated is None:
                continue
            state = self._init_state_attrs(class_node)
            writers: dict[str, list[str]] = {}
            for method in class_node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                mutated = self._self_mutations(method, state, config)
                if not mutated:
                    continue
                writers[method.name] = sorted(mutated)
                if method.name not in designated:
                    findings.append(self.finding(
                        module, method, "ALEX-C020",
                        f"{class_node.name}.{method.name} mutates instance state "
                        f"({', '.join(sorted(mutated))}) but is not a designated "
                        "writer",
                        hint="add it to the designated-writer set (and "
                             "writers.json) deliberately, or route the mutation "
                             "through an existing writer",
                    ))
            ctx.writer_inventory[class_node.name] = {
                "module": module.rel,
                "designated": sorted(designated),
                "writers": {name: attrs for name, attrs in sorted(writers.items())},
            }
        return findings

    @staticmethod
    def _init_state_attrs(class_node: ast.ClassDef) -> set[str]:
        """Instance attributes assigned in ``__init__`` — the state surface."""
        attrs: set[str] = set()
        for method in class_node.body:
            if isinstance(method, ast.FunctionDef) and method.name == "__init__":
                for node in ast.walk(method):
                    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                        targets = (
                            node.targets if isinstance(node, ast.Assign) else [node.target]
                        )
                        for target in targets:
                            attr = _self_attr(target)
                            if attr is not None:
                                attrs.add(attr)
        return attrs

    def _self_mutations(self, method: ast.AST, state: set[str], config) -> set[str]:
        """State attributes ``method`` mutates through ``self``."""
        mutated: set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign)) or (
                isinstance(node, ast.AnnAssign) and node.value is not None
            ):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None and attr in state:
                        mutated.add(attr)
                    elif isinstance(target, ast.Subscript):
                        attr = _self_attr(target.value)
                        if attr is not None and attr in state:
                            mutated.add(attr)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    anchor = target.value if isinstance(target, ast.Subscript) else target
                    attr = _self_attr(anchor)
                    if attr is not None and attr in state:
                        mutated.add(attr)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in config.mutator_methods:
                    attr = _self_attr(node.func.value)
                    if attr is not None and attr in state:
                        mutated.add(attr)
        return mutated

    # -- C021: iterate-while-mutating -------------------------------------

    def _check_iterate_while_mutating(
        self, module: ModuleContext, ctx: AnalysisContext
    ) -> list[CodeFinding]:
        findings: list[CodeFinding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            subject = self._iteration_subject(node.iter)
            if subject is None:
                continue
            key = _unparse(subject)
            if not key:
                continue
            for inner in ast.walk(node):
                if inner is node.iter or self._within(module, inner, node.iter):
                    continue
                mutation = self._mutates_key(inner, key)
                if mutation is not None:
                    findings.append(self.finding(
                        module, inner, "ALEX-C021",
                        f"{mutation} mutates {key!r} while a for-loop is "
                        "iterating it; dict/set iteration order is invalidated "
                        "(RuntimeError on dict views)",
                        hint=f"snapshot first: `for ... in list({key})` — or "
                             "collect changes and apply after the loop",
                    ))
        return findings

    @staticmethod
    def _iteration_subject(iter_node: ast.AST) -> ast.AST | None:
        """The live container a for-loop walks, or None when snapshotted.

        ``for t in graph.triples(...)`` -> ``graph`` (generator over live
        indexes); ``for k in self._spo`` -> ``self._spo``; ``for k in
        list(self._spo)`` -> None (safe snapshot).
        """
        if isinstance(iter_node, ast.Call):
            if (
                isinstance(iter_node.func, ast.Name)
                and iter_node.func.id in SNAPSHOT_WRAPPERS
            ):
                return None
            if isinstance(iter_node.func, ast.Attribute):
                # x.items()/x.keys()/x.values()/graph.triples() iterate x live.
                return iter_node.func.value
            return None
        if isinstance(iter_node, (ast.Name, ast.Attribute, ast.Subscript)):
            return iter_node
        return None

    @staticmethod
    def _within(module: ModuleContext, node: ast.AST, container: ast.AST) -> bool:
        return any(ancestor is container for ancestor in module.ancestors(node))

    @staticmethod
    def _mutates_key(node: ast.AST, key: str) -> str | None:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in CONTAINER_MUTATORS and _unparse(node.func.value) == key:
                return f"{node.func.attr}() call"
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and _unparse(target.value) == key:
                    return "item assignment"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and _unparse(target.value) == key:
                    return "item deletion"
        return None
