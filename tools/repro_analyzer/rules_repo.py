"""Repo-invariant rules R001-R007, migrated from the regex-grade
``tools/lint_repro.py`` (which now execs this analyzer as a deprecation
wrapper).

Semantics are preserved from the original linter; the findings now carry
column positions and flow through the same baseline / output machinery as
the ALEX-C contract passes. R-rules are repo hygiene, not engine
contracts, so they stay outside the ALEX-C namespace and are not
registered in ``repro.diagnostics``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from .model import AnalysisContext, CodeFinding, ModuleContext, Pass

#: Diagnostic code shape accepted by R006: ALEX-<letter><3 digits>.
ALEX_CODE_RE = re.compile(r"ALEX-[A-Z]\d{3}")

#: Call names whose result is a fresh mutable container (R005).
MUTABLE_FACTORIES = {"list", "dict", "set", "defaultdict", "Counter", "OrderedDict"}

#: R007: dotted lowercase name, 2-4 segments (``alex.links.discovered``).
DOTTED_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*){1,3}$")

#: R007: hierarchical obs.span names are single-segment (``episode``).
SPAN_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: obs functions taking a metric name as first argument (R007).
OBS_METRIC_FUNCS = {
    "inc", "observe", "set_gauge", "counter", "gauge", "histogram", "timer",
}

#: trace/tracer methods taking an event or span name as first argument.
TRACE_NAME_FUNCS = {"event", "span"}

FORBIDDEN_OBS_CALLS = {"set_registry", "reset"}


def _is_obs_attr(node: ast.AST, name: str) -> bool:
    """Matches ``obs.<name>`` / ``repro.obs.<name>`` attribute access."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == name
        and isinstance(node.value, (ast.Name, ast.Attribute))
        and (
            (isinstance(node.value, ast.Name) and node.value.id == "obs")
            or (isinstance(node.value, ast.Attribute) and node.value.attr == "obs")
        )
    )


def _receiver_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name):
            return node.value.id
        if isinstance(node.value, ast.Attribute):
            return node.value.attr
    return None


def _observability_name_call(node: ast.Call) -> tuple[str, str, ast.AST] | None:
    """R007: recognise calls declaring a metric/span/event name literal."""
    if not isinstance(node.func, ast.Attribute) or not node.args:
        return None
    first = node.args[0]
    if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
        return None
    attr = node.func.attr
    receiver = _receiver_name(node.func)
    if receiver == "obs":
        if attr == "span":
            return ("obs-span", first.value, first)
        if attr in OBS_METRIC_FUNCS:
            return ("metric", first.value, first)
        return None
    if attr in TRACE_NAME_FUNCS and receiver in ("trace", "tracer", "span"):
        return ("metric", first.value, first)
    return None


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in MUTABLE_FACTORIES
    return False


def _imported_and_defined_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


class RepoInvariantsPass(Pass):
    """R001-R007: project hygiene invariants (historical linter rules)."""

    name = "repo-invariants"
    codes = {
        "R000": ("error", "file does not parse as Python"),
        "R001": ("error", "print() in library code outside the CLI modules"),
        "R002": ("error", "direct mutation of the global obs registry outside repro.obs"),
        "R003": ("error", "__all__ exports a name the module neither defines nor imports"),
        "R004": ("error", "bare 'except:' swallows KeyboardInterrupt/SystemExit"),
        "R005": ("error", "mutable default argument shared across calls"),
        "R006": ("error", "ALEX-* code string not registered in any CODES table"),
        "R007": ("error", "observability name breaks the dotted naming convention"),
    }

    def run(self, module: ModuleContext, ctx: AnalysisContext) -> Iterable[CodeFinding]:
        config = ctx.config
        rel = module.rel
        in_library = config.in_library(rel)
        in_obs = any(rel.startswith(root + obs_dir)
                     for root in config.library_roots
                     for obs_dir in ("obs/",)) or "/obs/" in rel
        findings: list[CodeFinding] = []

        for node in ast.walk(module.tree):
            # R001: print() in library code
            if (
                in_library
                and module.basename not in config.print_allowed
                and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                findings.append(self.finding(
                    module, node, "R001",
                    "print() in library code; return values, raise, or use repro.obs",
                ))
            # R002: poking the global obs registry
            if in_library and not in_obs:
                if isinstance(node, (ast.Attribute, ast.Name)):
                    name = node.attr if isinstance(node, ast.Attribute) else node.id
                    if name == "_default_registry":
                        findings.append(self.finding(
                            module, node, "R002",
                            "direct access to obs._default_registry; use "
                            "obs.get_registry()/obs.use_registry()",
                        ))
                if isinstance(node, ast.Call):
                    for forbidden in FORBIDDEN_OBS_CALLS:
                        if _is_obs_attr(node.func, forbidden):
                            findings.append(self.finding(
                                module, node, "R002",
                                f"obs.{forbidden}() mutates the global registry; "
                                "use obs.use_registry() scoping",
                            ))
            # R004: bare except (all scanned roots, not just library code)
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                findings.append(self.finding(
                    module, node, "R004",
                    "bare 'except:'; catch a specific exception (or Exception)",
                ))
            # R005: mutable default arguments in library code
            if in_library and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                arguments = node.args
                for default in list(arguments.defaults) + [
                    d for d in arguments.kw_defaults if d is not None
                ]:
                    if _is_mutable_default(default):
                        findings.append(self.finding(
                            module, default, "R005",
                            "mutable default argument; the instance is shared "
                            "across calls — default to None and create inside",
                        ))
            # R007: observability names follow the dotted naming convention
            if isinstance(node, ast.Call):
                name_call = _observability_name_call(node)
                if name_call is not None:
                    rule, name, anchor = name_call
                    if rule == "obs-span" and not SPAN_NAME_RE.match(name):
                        findings.append(self.finding(
                            module, anchor, "R007",
                            f"obs.span name {name!r} must be a single lowercase "
                            "segment (hierarchy comes from nesting)",
                        ))
                    elif rule == "metric" and not DOTTED_NAME_RE.match(name):
                        findings.append(self.finding(
                            module, anchor, "R007",
                            f"observability name {name!r} must be dotted lowercase "
                            "subsystem.noun.verb (2-4 segments)",
                        ))
            # R006: only registered ALEX-* diagnostic codes in library code
            if (
                in_library
                and ctx.registered_codes
                and isinstance(node, ast.Constant)
                and isinstance(node.value, str)
            ):
                for code in ALEX_CODE_RE.findall(node.value):
                    if code not in ctx.registered_codes:
                        findings.append(self.finding(
                            module, node, "R006",
                            f"diagnostic code {code} is not registered in any "
                            "module-level CODES table",
                        ))

        findings.extend(self._check_all_exports(module))
        return findings

    def _check_all_exports(self, module: ModuleContext) -> list[CodeFinding]:
        """R003: ``__all__`` entries must name something that exists."""
        exported: list[tuple[str, ast.AST]] = []
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
                if "__all__" in targets and isinstance(node.value, (ast.List, ast.Tuple)):
                    for element in node.value.elts:
                        if isinstance(element, ast.Constant) and isinstance(element.value, str):
                            exported.append((element.value, element))
        if not exported:
            return []
        available = _imported_and_defined_names(module.tree) | {"__version__"}
        return [
            self.finding(
                module, anchor, "R003",
                f"__all__ exports {name!r} but the module neither defines nor imports it",
            )
            for name, anchor in exported
            if name not in available
        ]
