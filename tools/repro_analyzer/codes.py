"""The ALEX-C* diagnostic family: code-level contract checks.

Third diagnostic tier alongside the query analyzer (``ALEX-E/W/I``,
:mod:`repro.sparql.analysis`) and the data analyzer (``ALEX-D*``,
:mod:`repro.rdf.validate`). Codes are append-only and stable; each maps
to ``(severity, summary)`` and is documented under the matching anchor in
``docs/diagnostics.md``.

Registration into ``repro.diagnostics`` is best-effort: the analyzer must
keep working when invoked standalone (CI runs ``tools/lint_repro.py``
without ``PYTHONPATH=src``), so the import of ``repro`` is guarded.

The migrated repo-invariant rules keep their historical ``R00x`` names;
they are deliberately *not* part of the ALEX-C namespace (they are repo
hygiene, not engine contracts) and are not registered in
``repro.diagnostics``.
"""

from __future__ import annotations

#: ALEX-C* code -> (severity, summary). Append-only.
CODES: dict[str, tuple[str, str]] = {
    # -- C1: encoding-boundary contract ---------------------------------
    "ALEX-C001": (
        "error",
        "term object passed to an ID-keyed API (triples_ids/count_ids take ints)",
    ),
    "ALEX-C002": (
        "error",
        "dictionary.encode() outside the encoding boundary grows the dictionary on a read path",
    ),
    "ALEX-C003": (
        "warning",
        "dictionary.decode() outside the decoding boundary materialises terms mid-pipeline",
    ),
    # -- C2: RNG discipline ---------------------------------------------
    "ALEX-C010": (
        "error",
        "module-level random.* call in library code breaks seeded-run determinism",
    ),
    "ALEX-C011": (
        "error",
        "tracer RNG (_rng) referenced outside the obs package crosses the obs/engine seam",
    ),
    "ALEX-C012": (
        "error",
        "engine RNG (re)seeded outside a sanctioned constructor",
    ),
    # -- C3: mutation-safety inventory ----------------------------------
    "ALEX-C020": (
        "error",
        "shared engine/graph state mutated by a non-designated writer",
    ),
    "ALEX-C021": (
        "error",
        "iteration over a graph/link index while mutating it in the loop body",
    ),
    # -- C4: hot-path cost lints ----------------------------------------
    "ALEX-C030": (
        "warning",
        "term decode/str() materialisation inside a hot join/scan loop",
    ),
    "ALEX-C031": (
        "warning",
        "obs metric/trace event constructed inside a hot join/scan loop",
    ),
    "ALEX-C032": (
        "info",
        "per-row container allocation at loop depth >= 2 in a hot function",
    ),
    # -- C5: concurrency contracts --------------------------------------
    "ALEX-C040": (
        "error",
        "lock-guarded attribute read or written outside its lock",
    ),
    "ALEX-C041": (
        "error",
        "inconsistent lock-acquisition order (potential deadlock cycle)",
    ),
    "ALEX-C042": (
        "warning",
        "blocking call while holding a lock or inside an async function",
    ),
    "ALEX-C043": (
        "error",
        "manual lock acquire() without a try/finally release",
    ),
    "ALEX-C044": (
        "warning",
        "locked method returns a reference to guarded mutable state",
    ),
    "ALEX-C050": (
        "error",
        "designated writer mutates guarded state without holding the owning lock",
    ),
}

ANALYZER_NAME = "repro_analyzer"


def register() -> bool:
    """Register the ALEX-C table in ``repro.diagnostics`` when available.

    Returns True when registration happened (``repro`` importable), False
    in standalone mode. Idempotent either way.
    """
    try:
        from repro.diagnostics import register_codes
    except ImportError:
        return False
    register_codes(CODES, ANALYZER_NAME)
    return True
