"""C2 — RNG discipline (ALEX-C010/C011/C012).

PR 5's tracing layer carries its own private RNG (``repro.obs.trace._rng``)
for span-ID generation precisely so that enabling a tracer never perturbs
the engine's seeded streams. The complementary engine-side contract is
that every stochastic component draws from an instance RNG constructed
once from ``config.seed``. Three code shapes break seeded-run parity:

* calling the *module-level* ``random.*`` functions in library code —
  that draws from the interpreter-global stream, which any import or
  third-party call can advance (ALEX-C010);
* touching the tracer's private ``_rng`` from outside the obs package —
  the obs/engine seam exists so tracer draws and engine draws cannot
  interleave (ALEX-C011);
* re-seeding or re-constructing an engine RNG outside a sanctioned
  constructor — a mid-run ``rng.seed(...)`` silently restarts the stream
  and two runs with the same seed diverge from that point (ALEX-C012).
"""

from __future__ import annotations

import ast
from typing import Iterable

from .dataflow import receiver_tail
from .model import AnalysisContext, CodeFinding, ModuleContext, Pass

#: random-module functions that draw from (or reset) the global stream.
#: ``random.Random(...)`` constructs an independent instance and is fine.
GLOBAL_RANDOM_DRAWS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "seed", "getrandbits", "vonmisesvariate",
    "paretovariate", "weibullvariate", "lognormvariate", "gammavariate",
    "binomialvariate",
})

#: Receiver names that denote an RNG instance (``self.rng.seed()``,
#: ``rng.seed()``, ``engine.rng.seed()``).
RNG_RECEIVER_TAILS = frozenset({"rng", "_rng", "random_state"})


class RngDisciplinePass(Pass):
    name = "rng-discipline"
    codes = {
        "ALEX-C010": (
            "error",
            "module-level random.* call in library code breaks seeded-run determinism",
        ),
        "ALEX-C011": (
            "error",
            "tracer RNG (_rng) referenced outside the obs package crosses the "
            "obs/engine seam",
        ),
        "ALEX-C012": (
            "error",
            "engine RNG (re)seeded outside a sanctioned constructor",
        ),
    }

    def run(self, module: ModuleContext, ctx: AnalysisContext) -> Iterable[CodeFinding]:
        config = ctx.config
        rel = module.rel
        if not config.in_library(rel):
            return []
        in_obs = any(
            rel.startswith(root + owner) or f"/{owner}" in rel
            for root in config.library_roots
            for owner in config.rng_owner_roots
        )
        sanctioned_module = config.matches(rel, config.rng_sanctioned_modules)

        findings: list[CodeFinding] = []
        for node in ast.walk(module.tree):
            # -- C010: module-level random.* draws -----------------------
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "random"
                and node.func.attr in GLOBAL_RANDOM_DRAWS
            ):
                findings.append(self.finding(
                    module, node, "ALEX-C010",
                    f"random.{node.func.attr}() draws from the interpreter-global "
                    "stream; library code must use an instance RNG seeded from "
                    "config.seed",
                    hint="construct random.Random(seed) in the component's "
                         "__init__ and draw from it",
                ))

            # -- C011: tracer RNG crossing the obs/engine seam -----------
            if not in_obs:
                name = None
                if isinstance(node, ast.Attribute) and node.attr == "_rng":
                    name = f"{receiver_tail(node) or '<expr>'}._rng"
                elif isinstance(node, ast.Name) and node.id == "_rng":
                    # `from repro.obs.trace import _rng` style leakage.
                    name = "_rng"
                if name is not None and not self._is_self_rng_definition(module, node):
                    findings.append(self.finding(
                        module, node, "ALEX-C011",
                        f"{name} referenced outside the obs package; the tracer "
                        "RNG is private so tracing never perturbs engine streams",
                        hint="draw from the component's own rng, never the "
                             "tracer's",
                    ))

            # -- C012: re-seeding outside sanctioned constructors --------
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if (
                    node.func.attr == "seed"
                    and receiver_tail(node.func) in RNG_RECEIVER_TAILS
                    and not self._sanctioned(module, node, config, sanctioned_module)
                ):
                    findings.append(self.finding(
                        module, node, "ALEX-C012",
                        "rng.seed() outside a sanctioned constructor restarts "
                        "the stream mid-run and breaks seeded parity",
                        hint="seed exactly once, in __init__, from config.seed",
                    ))
            if isinstance(node, ast.Assign):
                # X.rng = random.Random(...) outside __init__ re-constructs
                # the stream; plain local `rng = random.Random(...)` in a
                # helper is how sanctioned factories build them, so only
                # attribute targets are flagged.
                if self._is_rng_construction(node.value) and any(
                    isinstance(t, ast.Attribute) and t.attr in RNG_RECEIVER_TAILS
                    for t in node.targets
                ):
                    if not self._sanctioned(module, node, config, sanctioned_module):
                        findings.append(self.finding(
                            module, node, "ALEX-C012",
                            "engine RNG re-constructed outside a sanctioned "
                            "constructor; the stream restarts and seeded runs "
                            "diverge",
                            hint="construct the RNG in __init__ (or a sanctioned "
                                 "persistence restore) only",
                        ))
        return findings

    @staticmethod
    def _is_rng_construction(value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Name) and func.id == "Random":
            return True
        return (
            isinstance(func, ast.Attribute)
            and func.attr == "Random"
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
        )

    def _sanctioned(self, module: ModuleContext, node: ast.AST, config,
                    sanctioned_module: bool) -> bool:
        if sanctioned_module:
            return True
        func = module.enclosing_function(node)
        return func is not None and func.name in config.rng_sanctioned_functions

    @staticmethod
    def _is_self_rng_definition(module: ModuleContext, node: ast.AST) -> bool:
        """``self._rng`` inside a class is that component's own RNG, not the
        tracer's — only bare ``_rng`` names and foreign-receiver attribute
        access cross the seam."""
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
        )
