"""repro_analyzer — AST/dataflow contract analyzer for the repro codebase.

The third static-analysis tier next to the query analyzer
(:mod:`repro.sparql.analysis`) and the data analyzer
(:mod:`repro.rdf.validate`): multi-pass analysis of the engine's *code*,
checking the architectural contracts the first six PRs introduced but
could not enforce —

* **C1 encoding boundary** (ALEX-C001..C003): terms stay out of ID-keyed
  APIs; the dictionary grows only on write paths; decode happens at
  sanctioned boundaries.
* **C2 RNG discipline** (ALEX-C010..C012): no global ``random.*`` in
  library code; the tracer RNG never crosses the obs/engine seam; engine
  RNGs seed exactly once.
* **C3 mutation safety** (ALEX-C020..C021): shared graph/engine state is
  written only by designated writers (inventoried in ``writers.json``);
  no iteration-while-mutating of the SPO/POS/OSP indexes.
* **C4 hot-path cost** (ALEX-C030..C032): no per-row decode/str/obs-event
  work inside the join and scoring kernels.
* **C5 concurrency contracts** (ALEX-C040..C044, C050): lock-guarded
  state is accessed under its lock (inventoried in ``locks.json``),
  lock-acquisition order is globally consistent, nothing blocks while
  holding a lock or inside ``async def``, manual ``acquire()`` pairs
  with a try/finally ``release()``, and guarded mutable state never
  escapes its lock.

The historical repo invariants R001-R007 are migrated as the "repo" pass
family; ``tools/lint_repro.py`` remains as a deprecation wrapper running
exactly that family.

Usage: ``python -m repro_analyzer [paths...]`` standalone, or
``repro lint-code`` through the package CLI. Findings support text/JSON/
SARIF output and a committed baseline (``baseline.json``) so pre-existing
accepted findings don't block CI while regressions fail it.
"""

from .baseline import (
    BaselineEntry,
    BaselineError,
    apply_baseline,
    generate_baseline,
    load_baseline,
    parse_baseline,
    validate_codes,
)
from .codes import ANALYZER_NAME, CODES, register
from .driver import (
    DEFAULT_FAMILIES,
    PASS_FAMILIES,
    AnalysisResult,
    all_rule_codes,
    analyze_paths,
    build_passes,
    collect_registered_codes,
    iter_python_files,
)
from .model import (
    SEVERITIES,
    SEVERITY_RANK,
    AnalysisContext,
    AnalyzerConfig,
    CodeFinding,
    ModuleContext,
    Pass,
    meets_threshold,
)
from .output import render_json, render_sarif, render_text
from .rules_concurrency import ConcurrencyContractsPass, LockOrderEdge

#: Best-effort registration of the ALEX-C table into repro.diagnostics
#: (no-op when the repro package is not importable — standalone CI mode).
REGISTERED_WITH_REPRO = register()

__version__ = "1.0.0"

__all__ = [
    "ANALYZER_NAME",
    "AnalysisContext",
    "AnalysisResult",
    "AnalyzerConfig",
    "BaselineEntry",
    "BaselineError",
    "CODES",
    "CodeFinding",
    "ConcurrencyContractsPass",
    "DEFAULT_FAMILIES",
    "LockOrderEdge",
    "ModuleContext",
    "PASS_FAMILIES",
    "Pass",
    "REGISTERED_WITH_REPRO",
    "SEVERITIES",
    "SEVERITY_RANK",
    "all_rule_codes",
    "analyze_paths",
    "apply_baseline",
    "build_passes",
    "collect_registered_codes",
    "generate_baseline",
    "iter_python_files",
    "load_baseline",
    "meets_threshold",
    "parse_baseline",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "validate_codes",
]
