#!/usr/bin/env python
"""Run the feature-space construction benchmark from a checkout.

Thin wrapper over ``repro bench`` (see :mod:`repro.bench`) that works
without installing the package::

    python tools/bench.py                  # full run, writes BENCH_space.json
    python tools/bench.py --quick          # CI smoke configuration
    python tools/bench.py --workers 4      # also time a multi-process build
    python tools/bench.py --min-speedup 3  # enforce the acceptance floor
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main(["bench", *sys.argv[1:]]))
