"""Specific-domain linking: NBA players (paper Section 7.2.2, Figure 4(c)).

An application wants all news about NBA players. The ground truth is small,
feedback arrives in 10-item episodes, and the user expects visible
improvement quickly. This example runs the exact scenario the benchmark
uses, then inspects what ALEX learned: which features its policy prefers,
and which it marked as non-distinctive.

Run with: python examples/nba_domain.py
"""

from repro import (
    AlexConfig,
    AlexEngine,
    FeatureSpace,
    FeedbackSession,
    GroundTruthOracle,
    QualityTracker,
    evaluate_links,
    load_pair,
    paris_links,
)


def main() -> None:
    pair = load_pair("dbpedia_nba_nytimes")
    space = FeatureSpace.build(pair.left, pair.right)
    initial = paris_links(pair.left, pair.right, score_threshold=0.8)
    print(f"initial links: {evaluate_links(initial, pair.ground_truth)}")

    config = AlexConfig(episode_size=10, rollback_min_negatives=3, seed=11)
    engine = AlexEngine(space, initial, config)
    tracker = QualityTracker(pair.ground_truth)
    tracker.record_initial(engine.candidates)
    session = FeedbackSession(
        engine, GroundTruthOracle(pair.ground_truth), seed=11,
        on_episode_end=tracker.on_episode_end,
    )
    session.run(episode_size=10, max_episodes=50)
    print(f"final links:   {tracker.final.quality}")
    print(f"new correct links discovered: "
          f"{tracker.final.quality.true_positives - evaluate_links(initial, pair.ground_truth).true_positives}\n")

    # What did the policy learn? Count how often each feature is the greedy
    # choice across states, and which features were ruled out globally.
    greedy_counts: dict[str, int] = {}
    for state in engine.policy.states():
        action = engine.policy.greedy_action(state)
        if action is not None:
            label = f"({action[0].local_name}, {action[1].local_name})"
            greedy_counts[label] = greedy_counts.get(label, 0) + 1
    print("greedy feature choices across states:")
    for label, count in sorted(greedy_counts.items(), key=lambda kv: -kv[1]):
        print(f"  {count:3d}x {label}")

    print("\nfeatures marked non-distinctive (the rdf:type lesson):")
    for key in space.feature_keys():
        if not engine.distinctiveness.is_distinctive(key):
            print(
                f"  ({key[0].local_name}, {key[1].local_name}): "
                f"{engine.distinctiveness.negatives(key)} negatives, "
                f"{engine.distinctiveness.positives(key)} positives"
            )


if __name__ == "__main__":
    main()
