"""Batch-mode linking pipeline with partitioning (paper Sections 6.2, 7.2.1).

The service-provider setting: large datasets, feedback collected from many
users in big episodes, the search space partitioned so partitions could run
in parallel. The improved links are exported as an ``owl:sameAs`` N-Triples
file — the artifact a deployment would publish back to the LOD cloud.

Run with: python examples/batch_linking_pipeline.py [output.nt]
"""

import sys
import time

from repro import (
    AlexConfig,
    FeedbackSession,
    GroundTruthOracle,
    PartitionedAlex,
    QualityTracker,
    build_partitioned_spaces,
    evaluate_links,
    load_pair,
    paris_links,
)
from repro.rdf import ntriples

N_PARTITIONS = 4


def main(output_path: str = "improved_links.nt") -> None:
    pair = load_pair("dbpedia_nytimes")
    print(f"linking {pair.spec.left_name} ({len(pair.left)} triples) to "
          f"{pair.spec.right_name} ({len(pair.right)} triples)")

    started = time.perf_counter()
    spaces = build_partitioned_spaces(pair.left, pair.right, N_PARTITIONS)
    print(f"built {len(spaces)} partition spaces in {time.perf_counter()-started:.1f}s: "
          + ", ".join(str(space.size) for space in spaces) + " pairs")

    initial = paris_links(pair.left, pair.right, score_threshold=0.88)
    print(f"initial links: {evaluate_links(initial, pair.ground_truth)}")

    config = AlexConfig(episode_size=200, max_episodes=40, seed=5)
    alex = PartitionedAlex(spaces, initial, config)
    tracker = QualityTracker(pair.ground_truth)
    tracker.record_initial(alex.candidates)
    session = FeedbackSession(
        alex, GroundTruthOracle(pair.ground_truth), seed=5,
        on_episode_end=tracker.on_episode_end,
    )
    started = time.perf_counter()
    episodes = session.run(episode_size=200, max_episodes=40)
    print(f"ran {episodes} episodes in {time.perf_counter()-started:.1f}s "
          f"({session.total_feedback} feedback items)")
    print(f"final links: {tracker.final.quality}")
    for engine in alex.engines:
        print(f"  {engine.name}: {len(engine.candidates)} links, "
              f"converged at {engine.converged_at}")

    # Export the improved sameAs links.
    graph = alex.candidates.to_graph()
    count = ntriples.dump_file(graph, output_path)
    print(f"\nwrote {count} owl:sameAs triples to {output_path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "improved_links.nt")
