"""Quickstart: improve automatically generated links with simulated feedback.

Pipeline in five steps:
1. generate a small synthetic dataset pair with known ground truth;
2. run the PARIS-style automatic linker to get initial candidate links;
3. build the θ-filtered feature space ALEX explores;
4. drive ALEX with oracle feedback until convergence;
5. compare the link quality before and after.

Run with: python examples/quickstart.py
"""

from repro import (
    AlexConfig,
    AlexEngine,
    FeatureSpace,
    FeedbackSession,
    GroundTruthOracle,
    QualityTracker,
    evaluate_links,
    load_pair,
    paris_links,
    quality_curve_table,
)


def main() -> None:
    # 1. A "DBpedia (NBA players)" / "NYTimes" pair, ~600/400 triples.
    pair = load_pair("dbpedia_nba_nytimes")
    print(f"left dataset:  {pair.left}")
    print(f"right dataset: {pair.right}")
    print(f"ground truth:  {len(pair.ground_truth)} links\n")

    # 2. Automatic linking (simplified PARIS) with a strict threshold:
    #    precise links, but many are missed.
    initial_links = paris_links(pair.left, pair.right, score_threshold=0.8)
    print(f"PARIS initial links: {evaluate_links(initial_links, pair.ground_truth)}")

    # 3. The space of potential links ALEX can explore.
    space = FeatureSpace.build(pair.left, pair.right)
    print(f"feature space: {space}\n")

    # 4. ALEX with 10-item feedback episodes (the paper's domain setting).
    config = AlexConfig(episode_size=10, rollback_min_negatives=3, seed=42)
    engine = AlexEngine(space, initial_links, config)
    tracker = QualityTracker(pair.ground_truth)
    tracker.record_initial(engine.candidates)
    session = FeedbackSession(
        engine,
        GroundTruthOracle(pair.ground_truth),
        seed=42,
        on_episode_end=tracker.on_episode_end,
    )
    episodes = session.run(episode_size=10, max_episodes=50)

    # 5. Before/after.
    print(quality_curve_table(tracker, title=f"link quality over {episodes} episodes"))
    print(f"\nfinal: {tracker.final.quality}")
    if engine.converged_at is not None:
        print(f"converged after {engine.converged_at} episodes")


if __name__ == "__main__":
    main()
