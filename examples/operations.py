"""Operating ALEX across sessions: persistence, introspection, export.

A deployed link-improvement service collects feedback continuously. This
example shows the operational loop: run some episodes, save the engine
state to JSON, restart (rebuild the space, reload the state), continue
learning, inspect what the policy learned, and export the quality curve as
CSV for external dashboards.

Run with: python examples/operations.py [state.json]
"""

import sys

from repro import (
    AlexConfig,
    AlexEngine,
    FeatureSpace,
    FeedbackSession,
    GroundTruthOracle,
    QualityTracker,
    load_pair,
    paris_links,
)
from repro.core import policy_report
from repro.evaluation import tracker_to_csv


def main(state_path: str = "alex_state.json") -> None:
    pair = load_pair("opencyc_nytimes")
    space = FeatureSpace.build(pair.left, pair.right)
    oracle = GroundTruthOracle(pair.ground_truth)
    tracker = QualityTracker(pair.ground_truth)

    # --- session 1: bootstrap from the automatic linker ----------------- #
    initial = paris_links(pair.left, pair.right, score_threshold=0.88)
    engine = AlexEngine(space, initial, AlexConfig(episode_size=150, seed=13))
    tracker.record_initial(engine.candidates)
    session = FeedbackSession(engine, oracle, seed=13, on_episode_end=tracker.on_episode_end)
    session.run(episode_size=150, max_episodes=5)
    print(f"session 1: {engine.episodes_completed} episodes, "
          f"quality {tracker.final.quality}")

    engine.save(state_path)
    print(f"state saved to {state_path}\n")

    # --- restart: a new process would rebuild the space and reload ------- #
    restored = AlexEngine.load(space, state_path)
    print(f"restored engine: {restored}")
    session2 = FeedbackSession(restored, oracle, seed=14, on_episode_end=tracker.on_episode_end)
    session2.run(episode_size=150, max_episodes=30)
    print(f"session 2: now {restored.episodes_completed} total episodes, "
          f"quality {tracker.final.quality}\n")

    # --- what did it learn? --------------------------------------------- #
    print(policy_report(restored).render())

    # --- export the full curve ------------------------------------------- #
    csv_text = tracker_to_csv(tracker, label="opencyc_nytimes")
    print(f"\nCSV export ({len(csv_text.splitlines()) - 1} rows):")
    print("\n".join(csv_text.splitlines()[:4]))
    print("...")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "alex_state.json")
