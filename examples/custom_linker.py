"""Bring your own linker: ALEX on top of a naive label-equality matcher.

The paper emphasizes that "ALEX can work with any initial set of candidate
links, regardless of how they were generated". This example replaces PARIS
with the crudest possible linker — exact (case-folded) label equality — and
shows ALEX repairing its blind spots: the naive linker misses every entity
whose label diverges by a single typo, and ALEX recovers them from feedback.

Run with: python examples/custom_linker.py
"""

from repro import (
    AlexConfig,
    AlexEngine,
    FeatureSpace,
    FeedbackSession,
    Graph,
    GroundTruthOracle,
    Link,
    LinkSet,
    Literal,
    QualityTracker,
    URIRef,
    evaluate_links,
    load_pair,
)
from repro.similarity import normalize


def naive_label_linker(left: Graph, right: Graph) -> LinkSet:
    """Link entities whose literal values contain an identical (normalized)
    label — no similarity, no learning, no scores."""
    labels_right: dict[str, list[URIRef]] = {}
    for triple in right.triples():
        if isinstance(triple.object, Literal) and isinstance(triple.subject, URIRef):
            labels_right.setdefault(normalize(triple.object.lexical), []).append(triple.subject)
    links = LinkSet(name="naive-label-equality")
    for triple in left.triples():
        if isinstance(triple.object, Literal) and isinstance(triple.subject, URIRef):
            for candidate in labels_right.get(normalize(triple.object.lexical), ()):
                links.add(Link(triple.subject, candidate))
    return links


def main() -> None:
    pair = load_pair("opencyc_lexvo")

    initial = naive_label_linker(pair.left, pair.right)
    print(f"naive label-equality linker: "
          f"{evaluate_links(initial, pair.ground_truth)}")

    space = FeatureSpace.build(pair.left, pair.right)
    engine = AlexEngine(space, initial, AlexConfig(episode_size=100, seed=23))
    tracker = QualityTracker(pair.ground_truth)
    tracker.record_initial(engine.candidates)
    session = FeedbackSession(
        engine, GroundTruthOracle(pair.ground_truth), seed=23,
        on_episode_end=tracker.on_episode_end,
    )
    episodes = session.run(episode_size=100, max_episodes=30)

    print(f"after {episodes} episodes of feedback: {tracker.final.quality}")
    print(f"new correct links ALEX discovered: "
          f"{tracker.final.quality.true_positives - evaluate_links(initial, pair.ground_truth).true_positives}")
    if engine.converged_at is not None:
        print(f"converged at episode {engine.converged_at}")


if __name__ == "__main__":
    main()
