"""The paper's motivating scenario, end to end.

"Find all New York Times articles about the NBA's MVP of 2013": the answer
needs DBpedia (who is the MVP?) joined to the New York Times data (articles
about that person) through an ``owl:sameAs`` link. This example builds the
two small datasets by hand, runs the federated query, routes the user's
feedback on *answers* back to the *links* that produced them, and shows ALEX
discovering a missing link after feedback.

Run with: python examples/federated_feedback.py
"""

from repro import (
    AlexConfig,
    AlexEngine,
    Endpoint,
    FeatureSpace,
    FederatedEngine,
    GroundTruthOracle,
    Link,
    LinkSet,
    QueryFeedbackSession,
    URIRef,
)
from repro.rdf import turtle

DBPEDIA_TTL = """
@prefix db:  <http://dbpedia.org/resource/> .
@prefix dbo: <http://dbpedia.org/ontology/> .

db:LeBron_James a dbo:BasketballPlayer ;
    dbo:label "LeBron James" ; dbo:birthYear 1984 ;
    dbo:award db:NBA_MVP_2013 .
db:Kevin_Durant a dbo:BasketballPlayer ;
    dbo:label "Kevin Durant" ; dbo:birthYear 1988 ;
    dbo:award db:NBA_MVP_2014 .
db:Stephen_Curry a dbo:BasketballPlayer ;
    dbo:label "Stephen Curry" ; dbo:birthYear 1988 ;
    dbo:award db:NBA_MVP_2015 .
"""

NYTIMES_TTL = """
@prefix nyt:  <http://data.nytimes.com/> .
@prefix nytp: <http://data.nytimes.com/elements/> .

nyt:lebron_james_per nytp:name "Lebron James" ; nytp:born 1984 ;
    nytp:topicOf nyt:article_mvp_finals , nyt:article_heat_return .
nyt:kevin_durant_per nytp:name "Kevin Durant" ; nytp:born 1988 ;
    nytp:topicOf nyt:article_okc_season .
nyt:stephen_curry_per nytp:name "Steph Curry" ; nytp:born 1988 ;
    nytp:topicOf nyt:article_three_point_record .
"""

MVP_QUERY = """
PREFIX db:   <http://dbpedia.org/resource/>
PREFIX dbo:  <http://dbpedia.org/ontology/>
PREFIX nytp: <http://data.nytimes.com/elements/>
SELECT ?player ?article WHERE {
  ?player dbo:award db:NBA_MVP_2013 .
  ?player nytp:topicOf ?article .
}
"""


def main() -> None:
    dbpedia = turtle.load(DBPEDIA_TTL, name="dbpedia")
    nytimes = turtle.load(NYTIMES_TTL, name="nytimes")

    db = "http://dbpedia.org/resource/"
    nyt = "http://data.nytimes.com/"
    ground_truth = LinkSet(
        [
            Link(URIRef(db + "LeBron_James"), URIRef(nyt + "lebron_james_per")),
            Link(URIRef(db + "Kevin_Durant"), URIRef(nyt + "kevin_durant_per")),
            Link(URIRef(db + "Stephen_Curry"), URIRef(nyt + "stephen_curry_per")),
        ]
    )

    # The automatic linker found only one of the three links.
    initial = LinkSet([Link(URIRef(db + "Kevin_Durant"), URIRef(nyt + "kevin_durant_per"))])

    # ALEX shares the candidate LinkSet with the federation engine, so new
    # links become usable by queries the moment they are discovered.
    space = FeatureSpace.build(dbpedia, nytimes)
    alex = AlexEngine(space, initial, AlexConfig(episode_size=5, seed=1))
    federation = FederatedEngine(
        [Endpoint(dbpedia), Endpoint(nytimes)], links=alex.candidates
    )
    session = QueryFeedbackSession(alex, federation, GroundTruthOracle(ground_truth))

    print("query: NYTimes articles about the NBA MVP of 2013")
    result = federation.select(MVP_QUERY)
    print(f"  answers before feedback: {len(result)} (the LeBron link is missing)\n")

    # A user asks about Durant's articles and approves the answers; ALEX
    # interprets that as approval of the Durant link and explores around it.
    durant_query = MVP_QUERY.replace("NBA_MVP_2013", "NBA_MVP_2014")
    items = session.submit_query(durant_query)
    print(f"feedback on the Durant answers: {items} item(s) routed to ALEX")
    print(f"candidate links now: {len(alex.candidates)}")
    for link in alex.candidates:
        marker = "new" if link not in initial else "initial"
        print(f"  [{marker}] {link}")

    result = federation.select(MVP_QUERY)
    print(f"\nanswers after feedback: {len(result)}")
    for row in result:
        player = row.bindings[next(v for v in result.variables if v.name == "player")]
        article = row.bindings[next(v for v in result.variables if v.name == "article")]
        print(f"  {player.local_name} -> {article.local_name} "
              f"(via {len(row.links_used)} link(s))")


if __name__ == "__main__":
    main()
