"""Command-line interface.

Subcommands::

    repro datasets list                      # the Table 1 catalog
    repro datasets generate KEY --out DIR    # write left/right/truth .nt files
    repro link LEFT.nt RIGHT.nt [options]    # run the automatic linker
    repro query DATA.nt 'SELECT ...'         # run SPARQL over a file
    repro explain DATA.nt 'SELECT ...'       # EXPLAIN / EXPLAIN ANALYZE plan tree
    repro lint-query 'SELECT ...'            # static analysis (ALEX-* codes)
    repro lint-data DATA.nt [RIGHT.nt]       # RDF graph & link-set validation
    repro run SCENARIO                       # run one experiment scenario
    repro bench [--suite space|sparql|all]   # parity-checked benchmarks
    repro figures all | FIGURE               # regenerate paper figures
    repro stats                              # exercise the stack, print obs metrics
    repro health                             # engine/pool/cache health as JSON
    repro slowlog                            # slowest queries and episodes
    repro trace show|summary FILE.jsonl      # replay an exported trace

Every command writes human-readable text to stdout and exits non-zero on
error, so the tool composes in shell pipelines.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Sequence

from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ALEX reproduction toolkit: linking, feedback-driven "
        "exploration, and the paper's experiments.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets = subparsers.add_parser("datasets", help="dataset catalog operations")
    datasets_sub = datasets.add_subparsers(dest="datasets_command", required=True)
    datasets_sub.add_parser("list", help="show the Table 1 catalog")
    generate = datasets_sub.add_parser("generate", help="generate a pair to .nt files")
    generate.add_argument("key", help="catalog key, e.g. dbpedia_nytimes")
    generate.add_argument("--out", default=".", help="output directory")
    generate.add_argument("--seed", type=int, default=None, help="override the seed")

    link = subparsers.add_parser("link", help="run the PARIS-style automatic linker")
    link.add_argument("left", help="left dataset (N-Triples)")
    link.add_argument("right", help="right dataset (N-Triples)")
    link.add_argument("--threshold", type=float, default=0.9, help="score threshold")
    link.add_argument(
        "--all-pairs",
        action="store_true",
        help="keep every scored pair above the threshold (no mutual-best assignment)",
    )
    link.add_argument("--out", default=None, help="write owl:sameAs links to this file")

    query = subparsers.add_parser("query", help="run a SPARQL query over an N-Triples file")
    query.add_argument("data", help="dataset (N-Triples)")
    query.add_argument("sparql", help="the query text")
    query.add_argument(
        "--strict",
        action="store_true",
        help="reject the query if static analysis finds error-level diagnostics",
    )

    explain = subparsers.add_parser(
        "explain",
        help="show the optimized query plan; --analyze executes with "
        "per-operator rows and timings (EXPLAIN ANALYZE)",
    )
    explain.add_argument("data", help="dataset (N-Triples)")
    explain.add_argument("sparql", help="the query text (or @FILE to read it from a file)")
    explain.add_argument(
        "--analyze", action="store_true",
        help="execute the query and annotate operators with rows/timings",
    )
    explain.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    explain.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="with --analyze: export the run's trace events as JSONL",
    )

    lint = subparsers.add_parser(
        "lint-query",
        help="statically analyze a SPARQL query and print ALEX-* diagnostics",
    )
    lint.add_argument("sparql", help="the query text (or @FILE to read it from a file)")
    lint.add_argument(
        "--data", default=None, metavar="FILE",
        help="N-Triples file enabling cardinality-based cost lints",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    lint.add_argument(
        "--fail-on", choices=("error", "warning", "info"), default="error",
        help="exit non-zero when a diagnostic at or above this severity exists",
    )

    lint_data = subparsers.add_parser(
        "lint-data",
        help="statically validate RDF data and sameAs link sets (ALEX-D* diagnostics)",
    )
    lint_data.add_argument(
        "data", nargs="+",
        help="one or two dataset files (.nt, .nq, or .ttl); with two files "
        "and --links, the first is the left side and the second the right",
    )
    lint_data.add_argument(
        "--links", default=None, metavar="FILE",
        help="owl:sameAs link set (N-Triples) to validate against the data",
    )
    lint_data.add_argument(
        "--theta", type=float, default=None,
        help="flag links scored below this threshold (requires scores in --links)",
    )
    lint_data.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    lint_data.add_argument(
        "--fail-on", choices=("error", "warning", "info"), default="error",
        help="exit non-zero when a diagnostic at or above this severity exists",
    )
    lint_data.add_argument(
        "--strict", action="store_true",
        help="shorthand for --fail-on warning",
    )

    lint_code = subparsers.add_parser(
        "lint-code",
        help="run the code-level contract analyzer (ALEX-C* + repo invariants) "
             "over the codebase",
    )
    lint_code.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze (default: src tools benchmarks)",
    )
    lint_code.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format",
    )
    lint_code.add_argument(
        "--fail-on", choices=("error", "warning", "info"), default="error",
        help="exit non-zero when a non-baselined finding at or above this "
             "severity exists",
    )
    lint_code.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline JSON suppressing accepted findings (default: "
             "tools/repro_analyzer/baseline.json; 'none' disables)",
    )
    lint_code.add_argument(
        "--check-baseline", action="store_true",
        help="validate the baseline file (format + registered codes) and exit",
    )
    lint_code.add_argument(
        "--rules", default="repo,encoding,rng,mutation,cost,concurrency",
        help="comma-separated rule families to run",
    )
    lint_code.add_argument(
        "--writers", default=None, metavar="FILE",
        help="write the mutation-safety writer inventory (writers.json) here",
    )
    lint_code.add_argument(
        "--locks", default=None, metavar="FILE",
        help="write the concurrency lock inventory (locks.json) here",
    )
    lint_code.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="GITREF",
        help="analyze only Python files changed relative to GITREF (default "
             "HEAD) plus untracked ones; mutually exclusive with explicit paths",
    )

    describe = subparsers.add_parser("describe", help="print statistics of an N-Triples file")
    describe.add_argument("data", help="dataset (N-Triples)")

    run = subparsers.add_parser("run", help="run one experiment scenario")
    run.add_argument("scenario", help="scenario key, e.g. fig2a")
    run.add_argument("--max-episodes", type=int, default=None)
    run.add_argument("--csv", default=None, help="export the per-episode curve as CSV")
    run.add_argument(
        "--obs-json", default=None, metavar="PATH",
        help="dump the run's observability snapshot as JSON",
    )
    run.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record a decision audit trail and export it as JSONL",
    )
    run.add_argument(
        "--trace-sample", type=float, default=1.0,
        help="head-based sampling rate for --trace-out traces (default 1.0)",
    )

    stats = subparsers.add_parser(
        "stats",
        help="run a small end-to-end workload (linking, feedback episodes, "
        "local + federated SPARQL) and print the collected obs metrics",
    )
    stats.add_argument(
        "--pair", default="dbpedia_nba_nytimes", help="dataset pair to exercise"
    )
    stats.add_argument("--episodes", type=int, default=3, help="feedback episodes to run")
    stats.add_argument("--json", default=None, metavar="PATH", help="also dump JSON here")
    stats.add_argument(
        "--from", dest="from_file", default=None, metavar="FILE",
        help="render a previously dumped snapshot instead of running the workload",
    )
    stats.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="limit every section to its N largest entries",
    )
    stats.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record the workload's trace events and export them as JSONL",
    )
    stats.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="re-render every SECONDS (Ctrl-C stops): with --from the file "
        "is re-read each tick; without, the workload re-runs each tick and "
        "the registry accumulates",
    )
    stats.add_argument(
        "--iterations", type=int, default=None, metavar="M",
        help="with --watch: stop after M renders instead of running forever",
    )
    stats.add_argument(
        "--prom-out", default=None, metavar="PATH",
        help="also write the final snapshot as Prometheus text exposition "
        "(version 0.0.4)",
    )
    stats.add_argument(
        "--report-out", default=None, metavar="PATH",
        help="run the workload under a background Reporter appending "
        "interval samples (repro-report/1 JSONL) to PATH",
    )
    stats.add_argument(
        "--report-interval", type=float, default=0.5, metavar="S",
        help="Reporter sampling interval for --report-out (default: 0.5s)",
    )

    health = subparsers.add_parser(
        "health",
        help="run the stats workload to warm the engine, then print its "
        "health (pool, caches, trace ring, reporter, dictionaries) as JSON",
    )
    health.add_argument(
        "--pair", default="dbpedia_nba_nytimes", help="dataset pair to exercise"
    )
    health.add_argument(
        "--episodes", type=int, default=2, help="feedback episodes to run"
    )

    slowlog_cmd = subparsers.add_parser(
        "slowlog",
        help="run the stats workload with the slow-operation log (and "
        "per-query accounting) enabled, then print the slowest operations",
    )
    slowlog_cmd.add_argument(
        "--pair", default="dbpedia_nba_nytimes", help="dataset pair to exercise"
    )
    slowlog_cmd.add_argument(
        "--episodes", type=int, default=2, help="feedback episodes to run"
    )
    slowlog_cmd.add_argument(
        "--threshold", type=float, default=0.0, metavar="SECONDS",
        help="record only operations at least this slow (default 0: all)",
    )
    slowlog_cmd.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="show only the N slowest entries",
    )
    slowlog_cmd.add_argument(
        "--json", default=None, metavar="PATH",
        help="also flush the repro-slowlog/1 payload here",
    )

    trace_cmd = subparsers.add_parser(
        "trace", help="render exported trace files (repro-trace/1 JSONL)"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    trace_show = trace_sub.add_parser(
        "show", help="per-trace waterfall: span tree, timings, events"
    )
    trace_show.add_argument("file", help="trace JSONL file")
    trace_show.add_argument(
        "--trace", default=None, metavar="ID",
        help="show only the trace whose id starts with ID",
    )
    trace_summary = trace_sub.add_parser(
        "summary", help="event counts by type and the slowest spans"
    )
    trace_summary.add_argument("file", help="trace JSONL file")
    trace_summary.add_argument("--top", type=int, default=10, help="slowest spans to list")

    bench = subparsers.add_parser(
        "bench",
        help="benchmark a subsystem against its reference implementation, "
        "prove parity, and write BENCH_<suite>.json",
    )
    bench.add_argument(
        "--suite", choices=("space", "sparql", "all"), default="space",
        help="space = feature-space construction (naive vs fast), "
        "sparql = query engine (hash-join vs pre-1.6 reference); default: space",
    )
    bench.add_argument("--out", default=None, metavar="PATH",
                       help="output JSON path (single suite only; "
                       "default: BENCH_space.json / BENCH_sparql.json)")
    bench.add_argument("--quick", action="store_true",
                       help="smallest bundle only — the CI smoke configuration")
    bench.add_argument("--workers", type=int, default=0,
                       help="space suite: also sweep multi-process builds on "
                       "the persistent pool at workers in {2, 4, ..., N} "
                       "(cold + steady-state timings, per-partition stats)")
    bench.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="exit non-zero unless every run suite's headline speedup "
        "reaches this factor",
    )

    figures = subparsers.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("figure", help="'all', 'table1', or a figure id like fig2a / fig10")

    report = subparsers.add_parser(
        "report", help="regenerate every table/figure into one Markdown report"
    )
    report.add_argument("--out", default="report.md", help="output path")
    return parser


def _cmd_datasets_list() -> int:
    from repro.datasets import catalog_keys, pair_spec

    from repro.evaluation.report import format_table

    rows = []
    for key in catalog_keys():
        spec = pair_spec(key)
        rows.append(
            (key, spec.left_name, spec.right_name, spec.n_shared,
             spec.n_left_only + spec.n_shared, spec.n_right_only + spec.n_shared)
        )
    print(format_table(
        ("pair", "left", "right", "ground truth", "left entities", "right entities"), rows
    ))
    return 0


def _cmd_datasets_generate(key: str, out_dir: str, seed: int | None) -> int:
    from repro.datasets import load_pair
    from repro.rdf import ntriples

    pair = load_pair(key, seed=seed)
    os.makedirs(out_dir, exist_ok=True)
    left_path = os.path.join(out_dir, f"{key}_left.nt")
    right_path = os.path.join(out_dir, f"{key}_right.nt")
    truth_path = os.path.join(out_dir, f"{key}_truth.nt")
    ntriples.dump_file(pair.left, left_path)
    ntriples.dump_file(pair.right, right_path)
    ntriples.dump_file(pair.ground_truth.to_graph(), truth_path)
    print(f"wrote {left_path} ({len(pair.left)} triples)")
    print(f"wrote {right_path} ({len(pair.right)} triples)")
    print(f"wrote {truth_path} ({len(pair.ground_truth)} links)")
    return 0


def _cmd_link(left_path: str, right_path: str, threshold: float, all_pairs: bool,
              out_path: str | None) -> int:
    from repro.paris import paris_links
    from repro.rdf import ntriples

    left = ntriples.load_file(left_path)
    right = ntriples.load_file(right_path)
    links = paris_links(left, right, score_threshold=threshold, mutual_best=not all_pairs)
    print(f"{len(links)} links above threshold {threshold}")
    if out_path is not None:
        ntriples.dump_file(links.to_graph(), out_path)
        print(f"wrote {out_path}")
    else:
        for link in sorted(links, key=lambda l: (l.left.value, l.right.value)):
            print(f"  {link}  (score {links.score(link):.3f})")
    return 0


def _cmd_query(data_path: str, sparql: str, strict: bool = False) -> int:
    from repro.rdf import ntriples
    from repro.rdf.graph import Graph
    from repro.sparql import QueryResult, query as run_query

    graph = ntriples.load_file(data_path)
    result = run_query(graph, sparql, strict=strict)
    if isinstance(result, bool):
        print("yes" if result else "no")
        return 0
    if isinstance(result, Graph):
        print(ntriples.serialize(result.triples()), end="")
        return 0
    assert isinstance(result, QueryResult)
    print("\t".join(str(var) for var in result.variables))
    for row in result.as_tuples():
        print("\t".join("" if term is None else str(term) for term in row))
    print(f"({len(result)} rows)", file=sys.stderr)
    return 0


def _cmd_explain(
    data_path: str,
    sparql: str,
    analyze: bool,
    output_format: str,
    trace_out: str | None,
) -> int:
    import json

    from repro.obs import trace
    from repro.rdf import ntriples
    from repro.sparql.explain import explain

    if sparql.startswith("@"):
        with open(sparql[1:], "r", encoding="utf-8") as handle:
            sparql = handle.read()
    graph = ntriples.load_file(data_path)
    tracer = None
    if trace_out is not None and analyze:
        tracer = trace.install()
    plan = explain(graph, sparql, analyze=analyze)
    if output_format == "json":
        print(json.dumps(plan.to_dict(), indent=2, sort_keys=True))
    else:
        print(plan.render())
    if tracer is not None:
        tracer.write_jsonl(trace_out)
        print(f"wrote {trace_out} ({len(tracer)} trace records)", file=sys.stderr)
        trace.uninstall()
    return 0


def _cmd_trace(
    trace_command: str, path: str, trace_id: str | None = None, top: int = 10
) -> int:
    from repro.obs import trace

    payload = trace.load_jsonl(path)
    if trace_command == "summary":
        print(trace.render_summary(payload["records"], top=top, dropped=payload["dropped"]))
    else:
        print(trace.render_waterfall(payload["records"], trace_id=trace_id))
    return 0


def _render_diagnostics(diagnostics, output_format: str, fail_on: str) -> int:
    """Print diagnostics (text or JSON) and compute the exit code against
    the ``--fail-on`` severity threshold (shared across the lint commands
    via :func:`repro.diagnostics.severity_exit_code`)."""
    import json

    from repro.diagnostics import severity_exit_code

    if output_format == "json":
        print(json.dumps([d.to_dict() for d in diagnostics], indent=2))
    else:
        for diagnostic in diagnostics:
            print(diagnostic.format())
        errors = sum(1 for d in diagnostics if d.severity == "error")
        warnings = sum(1 for d in diagnostics if d.severity == "warning")
        infos = len(diagnostics) - errors - warnings
        print(f"{errors} error(s), {warnings} warning(s), {infos} info(s)")
    return severity_exit_code((d.severity for d in diagnostics), fail_on)


def _count_lint_run(tool: str) -> None:
    """``lint.runs{tool=...}`` — one counter, emitted consistently by all
    three lint commands (query/data/code)."""
    from repro import obs

    obs.inc("lint.runs", tool=tool)


def _cmd_lint_query(
    sparql: str, data_path: str | None, output_format: str, fail_on: str = "error"
) -> int:
    """Statically analyze a query; exit 1 at/above the --fail-on severity."""
    from repro.sparql import analyze_query

    _count_lint_run("query")
    if sparql.startswith("@"):
        with open(sparql[1:], "r", encoding="utf-8") as handle:
            sparql = handle.read()
    graph = None
    if data_path is not None:
        from repro.rdf import ntriples

        graph = ntriples.load_file(data_path)
    diagnostics = analyze_query(sparql, graph=graph)
    return _render_diagnostics(diagnostics, output_format, fail_on)


def _load_data_file(path: str):
    """Load ``path`` by extension: .nq -> Dataset, .ttl -> Graph, else
    N-Triples Graph."""
    if path.endswith(".nq"):
        from repro.rdf import nquads

        return nquads.load_file(path)
    if path.endswith(".ttl"):
        from repro.rdf import turtle

        with open(path, encoding="utf-8") as handle:
            return turtle.load(handle.read(), name=path)
    from repro.rdf import ntriples

    return ntriples.load_file(path)


def _cmd_lint_data(
    data_paths: list[str],
    links_path: str | None,
    theta: float | None,
    output_format: str,
    fail_on: str,
    strict: bool,
) -> int:
    """Validate RDF files (and optionally a link set against them)."""
    from repro.links import LinkSet
    from repro.rdf import ntriples
    from repro.rdf.dataset import Dataset
    from repro.rdf.validate import validate_dataset, validate_graph, validate_links

    _count_lint_run("data")
    if strict and fail_on == "error":
        fail_on = "warning"
    if len(data_paths) > 2:
        print("error: lint-data takes at most two dataset files", file=sys.stderr)
        return 2
    graphs = []
    diagnostics = []
    for path in data_paths:
        loaded = _load_data_file(path)
        if isinstance(loaded, Dataset):
            diagnostics.extend(validate_dataset(loaded))
            graphs.append(loaded.union())
        else:
            diagnostics.extend(validate_graph(loaded))
            graphs.append(loaded)
    if links_path is not None:
        links = LinkSet.from_graph(ntriples.load_file(links_path), name=links_path)
        left = graphs[0] if graphs else None
        right = graphs[1] if len(graphs) > 1 else left
        diagnostics.extend(validate_links(links, left=left, right=right, theta=theta))
    return _render_diagnostics(diagnostics, output_format, fail_on)


def _import_analyzer():
    """Import :mod:`repro_analyzer` (the code-level analyzer under
    ``tools/``); falls back to inserting the repo's ``tools`` directory on
    ``sys.path`` for source checkouts run via ``PYTHONPATH=src``."""
    try:
        import repro_analyzer
    except ImportError:
        repo_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        tools_dir = os.path.join(repo_root, "tools")
        if not os.path.isdir(os.path.join(tools_dir, "repro_analyzer")):
            raise ReproError(
                "repro_analyzer not importable and no tools/repro_analyzer "
                "directory next to the package; install or PYTHONPATH the "
                "analyzer to use lint-code"
            ) from None
        sys.path.insert(0, tools_dir)
        import repro_analyzer
    return repro_analyzer


def _cmd_lint_code(
    paths: list[str],
    output_format: str,
    fail_on: str,
    baseline: str | None,
    check_baseline: bool,
    rules: str,
    writers_out: str | None,
    locks_out: str | None = None,
    changed: str | None = None,
) -> int:
    """Run the code-level contract analyzer (ALEX-C* + migrated R00x) over
    ``paths``; exit 1 at/above --fail-on after baseline suppression, 2 on
    baseline/usage errors."""
    import json

    from repro.diagnostics import severity_exit_code

    analyzer = _import_analyzer()
    from repro_analyzer.baseline import BaselineError
    from repro_analyzer.cli import (
        changed_python_files,
        default_baseline_path,
        repo_root_default,
    )

    _count_lint_run("code")
    root = repo_root_default()
    if changed is not None and paths:
        print("error: --changed and explicit paths are mutually exclusive",
              file=sys.stderr)
        return 2
    if changed is not None:
        try:
            paths = changed_python_files(root, changed)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if not paths:
            print(f"no Python files changed vs {changed}; nothing to analyze")
            return 0
    elif not paths:
        paths = [p for p in ("src", "tools", "benchmarks")
                 if os.path.isdir(os.path.join(root, p))]
    families = tuple(f.strip() for f in rules.split(",") if f.strip())

    if baseline is None and os.path.isfile(default_baseline_path()):
        baseline = default_baseline_path()
    if baseline == "none":
        baseline = None

    registered = analyzer.collect_registered_codes(root)
    entries = []
    if baseline is not None:
        try:
            entries = analyzer.load_baseline(baseline)
        except (OSError, BaselineError) as error:
            print(f"baseline error: {error}", file=sys.stderr)
            return 2
        problems = analyzer.validate_codes(entries, registered | set(analyzer.all_rule_codes()))
        if problems:
            for problem in problems:
                print(f"baseline error: {problem}", file=sys.stderr)
            return 2
        if check_baseline:
            print(f"baseline OK: {len(entries)} bucket(s), codes all registered")
            return 0
    elif check_baseline:
        print("baseline error: no baseline file found", file=sys.stderr)
        return 2

    try:
        result = analyzer.analyze_paths(
            paths, root, families=families, registered_codes=registered
        )
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if writers_out:
        with open(writers_out, "w", encoding="utf-8") as handle:
            json.dump(result.writer_inventory, handle, indent=2, sort_keys=True)
            handle.write("\n")

    if locks_out:
        with open(locks_out, "w", encoding="utf-8") as handle:
            json.dump(result.lock_inventory, handle, indent=2, sort_keys=True)
            handle.write("\n")

    surviving, suppressed, stale = analyzer.apply_baseline(result.findings, entries)
    for warning in stale:
        print(f"note: {warning}", file=sys.stderr)

    if output_format == "json":
        print(analyzer.render_json(surviving, suppressed))
    elif output_format == "sarif":
        print(analyzer.render_sarif(surviving, analyzer.all_rule_codes(families)))
    else:
        print(analyzer.render_text(surviving, suppressed))
    return severity_exit_code((f.severity for f in surviving), fail_on)


def _cmd_describe(data_path: str) -> int:
    from repro.rdf import ntriples
    from repro.rdf.stats import graph_statistics

    graph = ntriples.load_file(data_path)
    print(graph_statistics(graph).render())
    return 0


def _cmd_run(
    scenario_key: str,
    max_episodes: int | None,
    csv_path: str | None = None,
    obs_json: str | None = None,
    trace_out: str | None = None,
    trace_sample: float = 1.0,
) -> int:
    from repro.evaluation.export import write_csv
    from repro.evaluation.report import quality_curve_table
    from repro.experiments import run_scenario, scenario

    tracer = None
    if trace_out is not None:
        from repro.obs import trace

        tracer = trace.install(sample=trace_sample, seed=0)
    spec = scenario(scenario_key)
    if max_episodes is not None:
        spec = spec.with_changes(max_episodes=max_episodes)
    result = run_scenario(spec)
    if tracer is not None:
        from repro.obs import trace

        tracer.write_jsonl(trace_out)
        print(f"wrote {trace_out} ({len(tracer)} trace records)")
        trace.uninstall()
    if csv_path is not None:
        write_csv(result.tracker, csv_path, label=scenario_key)
        print(f"wrote {csv_path}")
    print(quality_curve_table(result.tracker, title=f"scenario {scenario_key}"))
    print(f"initial: {result.initial_quality}")
    print(f"final:   {result.final_quality}")
    print(
        f"episodes: {result.episodes_run}, converged at {result.converged_at}, "
        f"relaxed at {result.relaxed_converged_at}, "
        f"new links: {result.new_links_found}/{result.ground_truth_size}"
    )
    if obs_json is not None:
        from repro import obs

        obs.dump_json(obs_json)
        print(f"wrote {obs_json}")
    return 0


def _run_stats_workload(
    pair_key: str,
    episodes: int,
    report_interval: float = 0.0,
    report_path: str | None = None,
):
    """The miniature end-to-end workload behind ``stats``/``health``/
    ``slowlog``: dataset → PARIS → θ-filtered space → feedback episodes →
    local SPARQL → federated SPARQL with sameAs rewriting. Returns the warm
    ``(engine, pair)`` — the caller owns ``engine.close()``.
    """
    from repro.core.config import AlexConfig
    from repro.core.engine import AlexEngine
    from repro.datasets import load_pair
    from repro.features.space import FeatureSpace
    from repro.federation import Endpoint, FederatedEngine
    from repro.feedback import FeedbackSession, GroundTruthOracle
    from repro.paris import paris_links
    from repro.sparql import query as run_query

    pair = load_pair(pair_key)
    initial = paris_links(pair.left, pair.right, score_threshold=0.8)
    space = FeatureSpace.build(pair.left, pair.right)
    engine = AlexEngine(
        space,
        initial,
        AlexConfig(
            episode_size=10,
            seed=7,
            report_interval=report_interval,
            report_path=report_path,
        ),
    )
    session = FeedbackSession(engine, GroundTruthOracle(pair.ground_truth), seed=7)
    session.run(episode_size=10, max_episodes=episodes)

    run_query(pair.left, "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 5")
    federation = FederatedEngine(
        [Endpoint(pair.left, "left"), Endpoint(pair.right, "right")],
        engine.candidates,
    )
    federation.select("SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 5")
    return engine, pair


def _render_metrics_file(path: str, top: int | None = None) -> str:
    """Render an obs snapshot JSON *or* a repro-report/1 JSONL file."""
    from repro import obs
    from repro.obs import report as obs_report

    with open(path, encoding="utf-8") as handle:
        head = handle.readline()
    try:
        first = json.loads(head) if head.strip() else {}
    except json.JSONDecodeError:
        first = {}
    if isinstance(first, dict) and first.get("schema") == obs_report.REPORT_SCHEMA:
        loaded = obs_report.load_report(path)
        samples = loaded["samples"]
        if not samples:
            return f"(report {path}: no samples yet)"
        return obs_report.render_sample(samples[-1], top=top)
    registry = obs.Registry(path)
    registry.merge(obs.load_snapshot(path))
    return registry.render(top=top)


def _cmd_stats(
    pair_key: str,
    episodes: int,
    json_path: str | None,
    from_file: str | None,
    top: int | None = None,
    trace_out: str | None = None,
    watch: float | None = None,
    iterations: int | None = None,
    prom_out: str | None = None,
    report_out: str | None = None,
    report_interval: float = 0.5,
) -> int:
    from repro import obs

    if from_file is not None:
        print(_render_metrics_file(from_file, top=top))
        if watch is not None:
            rendered = 1
            try:
                while iterations is None or rendered < iterations:
                    time.sleep(watch)
                    print()
                    print(_render_metrics_file(from_file, top=top))
                    rendered += 1
            except KeyboardInterrupt:
                pass
        return 0

    tracer = None
    if trace_out is not None:
        from repro.obs import trace

        tracer = trace.install(seed=0)

    rendered = 0
    try:
        while True:
            engine, _ = _run_stats_workload(
                pair_key,
                episodes,
                report_interval=report_interval if report_out is not None else 0.0,
                report_path=report_out,
            )
            if report_out is not None:
                # Let the reporter take at least two interval samples even
                # when the workload itself outran the sampling interval.
                time.sleep(report_interval * 2.2)
            engine.close()
            print(obs.render(top=top))
            rendered += 1
            if watch is None or (iterations is not None and rendered >= iterations):
                break
            time.sleep(watch)
            print()
    except KeyboardInterrupt:
        pass

    if json_path is not None:
        obs.dump_json(json_path)
        print(f"wrote {json_path}")
    if prom_out is not None:
        exposition = obs.render_prometheus(obs.snapshot())
        with open(prom_out, "w", encoding="utf-8") as handle:
            handle.write(exposition)
        samples = obs.validate_exposition(exposition)
        print(f"wrote {prom_out} ({samples} samples)")
    if report_out is not None:
        print(f"wrote {report_out}")
    if tracer is not None:
        from repro.obs import trace

        tracer.write_jsonl(trace_out)
        print(f"wrote {trace_out} ({len(tracer)} trace records)")
        trace.uninstall()
    return 0


def _cmd_health(pair_key: str, episodes: int) -> int:
    """Warm the engine with the stats workload, print health, exit non-zero
    when degraded."""
    engine, pair = _run_stats_workload(pair_key, episodes)
    health = engine.health(graphs={"left": pair.left, "right": pair.right})
    engine.close()
    print(json.dumps(health, indent=2, sort_keys=True))
    return 0 if health["status"] == "ok" else 1


def _cmd_slowlog(
    pair_key: str,
    episodes: int,
    threshold: float,
    top: int | None,
    json_out: str | None,
) -> int:
    from repro.obs import accounting, slowlog

    slog = slowlog.configure(threshold=threshold)
    accounting.enable()
    try:
        engine, _ = _run_stats_workload(pair_key, episodes)
        engine.close()
    finally:
        accounting.disable()
        slowlog.disable()
    print(slog.render(top=top))
    if json_out is not None:
        slog.flush(json_out)
        print(f"wrote {json_out}")
    return 0


_FIGURES = {
    "table1": "table_1",
    "fig2a": "figure_2a", "fig2b": "figure_2b", "fig2c": "figure_2c",
    "fig3a": "figure_3a", "fig3b": "figure_3b", "fig3c": "figure_3c",
    "fig4a": "figure_4a", "fig4b": "figure_4b", "fig4c": "figure_4c",
    "fig4d": "figure_4d",
    "fig5": "figure_5", "fig6": "figure_6", "fig7": "figure_7",
    "fig8": "figure_8", "fig9": "figure_9", "fig10": "figure_10",
    "fig11": "figure_11", "timing": "execution_time",
}


def _cmd_bench(
    suite: str, out: str | None, quick: bool, workers: int, min_speedup: float
) -> int:
    from repro import bench, bench_sparql

    suites = ("space", "sparql") if suite == "all" else (suite,)
    if out is not None and len(suites) > 1:
        print("error: --out requires a single --suite", file=sys.stderr)
        return 2
    failed = False
    for name in suites:
        module = bench if name == "space" else bench_sparql
        if name == "space":
            payload = module.run_bench(quick=quick, workers=workers)
        else:
            payload = module.run_bench(quick=quick)
        path = out if out is not None else module.DEFAULT_OUT
        module.write_payload(payload, path)
        print(module.render_report(payload))
        print(f"wrote {path}")
        if not payload["parity"]["ok"]:
            print(f"error: {name} suite parity check failed", file=sys.stderr)
            failed = True
        if min_speedup > 0 and (payload["speedup"] or 0.0) < min_speedup:
            print(
                f"error: {name} speedup {payload['speedup']}x below "
                f"required {min_speedup}x",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


def _cmd_figures(figure: str) -> int:
    import repro.experiments as experiments

    keys = list(_FIGURES) if figure == "all" else [figure]
    unknown = [key for key in keys if key not in _FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}; known: {', '.join(_FIGURES)}",
              file=sys.stderr)
        return 2
    for key in keys:
        report = getattr(experiments, _FIGURES[key])()
        print(report.render())
        print()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "datasets":
            if args.datasets_command == "list":
                return _cmd_datasets_list()
            return _cmd_datasets_generate(args.key, args.out, args.seed)
        if args.command == "link":
            return _cmd_link(args.left, args.right, args.threshold, args.all_pairs, args.out)
        if args.command == "query":
            return _cmd_query(args.data, args.sparql, strict=args.strict)
        if args.command == "explain":
            return _cmd_explain(
                args.data, args.sparql, args.analyze, args.format, args.trace_out
            )
        if args.command == "trace":
            return _cmd_trace(
                args.trace_command,
                args.file,
                trace_id=getattr(args, "trace", None),
                top=getattr(args, "top", 10),
            )
        if args.command == "lint-query":
            return _cmd_lint_query(args.sparql, args.data, args.format, args.fail_on)
        if args.command == "lint-data":
            return _cmd_lint_data(
                args.data, args.links, args.theta, args.format, args.fail_on, args.strict
            )
        if args.command == "lint-code":
            return _cmd_lint_code(
                args.paths, args.format, args.fail_on, args.baseline,
                args.check_baseline, args.rules, args.writers,
                locks_out=args.locks, changed=args.changed,
            )
        if args.command == "describe":
            return _cmd_describe(args.data)
        if args.command == "run":
            return _cmd_run(
                args.scenario, args.max_episodes, args.csv, args.obs_json,
                args.trace_out, args.trace_sample,
            )
        if args.command == "stats":
            return _cmd_stats(
                args.pair, args.episodes, args.json, args.from_file,
                top=args.top, trace_out=args.trace_out,
                watch=args.watch, iterations=args.iterations,
                prom_out=args.prom_out, report_out=args.report_out,
                report_interval=args.report_interval,
            )
        if args.command == "health":
            return _cmd_health(args.pair, args.episodes)
        if args.command == "slowlog":
            return _cmd_slowlog(
                args.pair, args.episodes, args.threshold, args.top, args.json
            )
        if args.command == "bench":
            return _cmd_bench(
                args.suite, args.out, args.quick, args.workers, args.min_speedup
            )
        if args.command == "figures":
            return _cmd_figures(args.figure)
        if args.command == "report":
            from repro.experiments.report_md import write_report

            write_report(args.out, progress=lambda heading: print(f"... {heading}"))
            print(f"wrote {args.out}")
            return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    raise SystemExit(main())
