"""Introspection reports: what did ALEX learn?

Operators of a feedback-driven system need to see *why* it explores the way
it does. These helpers summarize an engine's learned state: which features
the policy prefers (per state and in aggregate), which features were ruled
out as non-distinctive, and how the action values are distributed.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.engine import AlexEngine
from repro.core.state import StateAction, available_actions
from repro.features.feature_set import FeatureKey


def feature_label(key: FeatureKey) -> str:
    """Human-readable ``(left_local, right_local)`` rendering of a feature."""
    return f"({key[0].local_name}, {key[1].local_name})"


@dataclass
class FeatureSummary:
    """Aggregate view of one feature across the engine's experience."""

    key: FeatureKey
    greedy_states: int            # states whose improved policy picks it
    positives: int                # positive feedback on links it generated
    negatives: int
    average_return: float | None
    distinctive: bool

    @property
    def label(self) -> str:
        return feature_label(self.key)


@dataclass
class PolicyReport:
    """The full introspection bundle for one engine."""

    engine_name: str
    improved_states: int
    candidate_count: int
    blacklist_count: int
    episodes_completed: int
    features: list[FeatureSummary] = field(default_factory=list)

    def preferred_features(self, top: int = 5) -> list[FeatureSummary]:
        """Features ranked by how many states' greedy policies choose them."""
        ranked = sorted(self.features, key=lambda f: (-f.greedy_states, f.label))
        return [summary for summary in ranked[:top] if summary.greedy_states > 0]

    def non_distinctive_features(self) -> list[FeatureSummary]:
        return sorted(
            (summary for summary in self.features if not summary.distinctive),
            key=lambda f: f.label,
        )

    def render(self) -> str:
        lines = [
            f"policy report for {self.engine_name!r}: "
            f"{self.candidate_count} candidates, {self.blacklist_count} blacklisted, "
            f"{self.improved_states} improved states, "
            f"{self.episodes_completed} episodes",
            "",
            "preferred features (by greedy-state count):",
        ]
        for summary in self.preferred_features():
            avg = "n/a" if summary.average_return is None else f"{summary.average_return:+.2f}"
            lines.append(
                f"  {summary.greedy_states:3d}x {summary.label}  "
                f"(+{summary.positives}/-{summary.negatives}, avg return {avg})"
            )
        poisoned = self.non_distinctive_features()
        lines.append("")
        lines.append(f"non-distinctive features ({len(poisoned)}):")
        for summary in poisoned:
            lines.append(
                f"  {summary.label}  (+{summary.positives}/-{summary.negatives})"
            )
        return "\n".join(lines)


def policy_report(engine: AlexEngine) -> PolicyReport:
    """Build the introspection report for ``engine``."""
    greedy_counts: Counter[FeatureKey] = Counter()
    for state in engine.policy.states():
        action = engine.policy.greedy_action(state)
        if action is not None:
            greedy_counts[action] += 1

    distinctiveness = engine.distinctiveness
    keys = set(greedy_counts)
    keys.update(engine.space.feature_keys())
    summaries = [
        FeatureSummary(
            key=key,
            greedy_states=greedy_counts.get(key, 0),
            positives=distinctiveness.positives(key),
            negatives=distinctiveness.negatives(key),
            average_return=distinctiveness.average_return(key),
            distinctive=distinctiveness.is_distinctive(key),
        )
        for key in sorted(keys, key=lambda k: (k[0].value, k[1].value))
    ]
    return PolicyReport(
        engine_name=engine.name,
        improved_states=len(engine.policy),
        candidate_count=len(engine.candidates),
        blacklist_count=len(engine.blacklist),
        episodes_completed=engine.episodes_completed,
        features=summaries,
    )


def q_value_table(engine: AlexEngine, limit: int = 20) -> list[tuple[str, str, float, int]]:
    """The top-|Q| state-action values: (state, action, Q, #returns)."""
    rows = []
    for state_action in engine.values.known_pairs():
        q = engine.values.q(state_action)
        rows.append(
            (
                state_action.state.left.local_name,
                feature_label(state_action.action),
                q,
                len(engine.values.returns(state_action)),
            )
        )
    rows.sort(key=lambda row: (-abs(row[2]), row[0], row[1]))
    return rows[:limit]
