"""True multi-core execution of partitioned ALEX (Section 6.2).

The paper: "The different partitions can be independently explored in
parallel, either on different CPU cores of the same machine or on multiple
machines in a distributed setting." :class:`~repro.core.parallel.PartitionedAlex`
runs partitions in-process; this module ships each partition to a worker
process instead. Because partitions share nothing, the only coordination is
the initial scatter and the final gather.

Both entry points run on the persistent :mod:`repro.core.workers` pool —
workers spawn once and survive across builds — and partitions cross the
process boundary **dictionary-encoded** (the flat-array wire format of
:mod:`repro.similarity.prepared`), never as pickled entity objects:

* :func:`build_space_parallel` ships each left chunk and the shared right
  side as entity blobs; workers return scored feature-space deltas
  (:func:`~repro.features.space.encode_space_delta`) plus their obs
  snapshot, and the parent merges and freezes once.
* :func:`run_partitions_parallel` ships each partition's feature space as a
  space-delta blob; each worker runs a full feedback session against its
  own slice of the ground truth (the paper's model: feedback "is directed
  to all partitions" — a feedback item concerns exactly one link, hence
  exactly one partition).

Workers memoize decoded blobs by digest, so the right side decodes once per
worker lifetime however many chunks or builds flow through, and the
module-level similarity caches stay warm between builds — decoded terms are
value-equal to the originals, so the intern tables hit and steady-state
rebuilds skip most of the string-metric work.
"""

from __future__ import annotations

import hashlib
import time
import zlib
from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.core.config import AlexConfig
from repro.core.engine import AlexEngine
from repro.core.workers import WorkerPool, shared_pool
from repro.errors import ConfigError
from repro.features.feature_set import DEFAULT_THETA
from repro.features.space import (
    FeatureSpace,
    decode_space_delta,
    encode_space_delta,
    merge_spaces,
)
from repro.feedback.oracle import GroundTruthOracle, NoisyOracle
from repro.feedback.session import FeedbackSession
from repro.links import Link, LinkSet
from repro.obs import trace
from repro.rdf.entity import Entity
from repro.similarity.prepared import decode_entities, encode_entities


@dataclass
class PartitionOutcome:
    """Result of one partition's run."""

    name: str
    candidates: frozenset[Link]
    episodes_run: int
    converged_at: int | None
    relaxed_converged_at: int | None
    elapsed_seconds: float
    #: the worker's obs registry snapshot; merged into the parent's registry
    obs_snapshot: dict | None = field(default=None, repr=False)


@dataclass
class PartitionBuildStats:
    """Per-partition runtime facts from one space-build task.

    These are the features runtime-approximation planners fit cost models
    on (see PAPERS.md); the bench records them verbatim in its payload.
    """

    name: str
    pairs_considered: int
    pairs_admitted: int
    bytes_shipped: int
    wall_seconds: float


# --------------------------------------------------------------------- #
# Worker-side decoded-blob memo
# --------------------------------------------------------------------- #

#: digest → decoded entity list, bounded. Worker-process state: the shared
#: right side arrives with every chunk task but decodes once per worker
#: lifetime, and repeated builds of the same datasets skip decoding
#: entirely. Worker processes are single-threaded, so no lock is needed.
_decode_cache: dict[bytes, list[Entity]] = {}
_DECODE_CACHE_MAX = 8


def _decode_entities_cached(blob: bytes) -> list[Entity]:
    digest = hashlib.sha1(blob).digest()
    entities = _decode_cache.get(digest)
    if entities is None:
        entities = decode_entities(blob)
        if len(_decode_cache) >= _DECODE_CACHE_MAX:
            _decode_cache.pop(next(iter(_decode_cache)))
        _decode_cache[digest] = entities
    return entities


# --------------------------------------------------------------------- #
# Space building
# --------------------------------------------------------------------- #


def _score_space_partition(
    left_blob: bytes,
    right_blob: bytes,
    theta: float,
    use_blocking: bool,
    fast: bool,
    name: str,
) -> tuple[bytes, dict, float, int]:
    """Worker body: decode one partition, score it, encode the delta.

    Returns ``(delta_blob, obs_snapshot, wall_seconds, pairs_admitted)``.
    Runs under an isolated obs registry (same pattern as feedback
    partitions) so the worker's phase timers and cache counters travel back
    in the snapshot and merge into the parent registry.
    """
    started = time.monotonic()
    with obs.use_registry(obs.Registry(name)) as registry:
        with obs.timer("space.build.ship"):
            left_chunk = _decode_entities_cached(left_blob)
            right_entities = _decode_entities_cached(right_blob)
        space = FeatureSpace._build_single_process(
            left_chunk, right_entities, theta, use_blocking, fast, freeze=False
        )
        with obs.timer("space.build.ship"):
            delta = encode_space_delta(space)
        return delta, registry.snapshot(), time.monotonic() - started, space.size


def build_space_parallel(
    left_entities: Sequence[Entity],
    right_entities: Sequence[Entity],
    *,
    theta: float = DEFAULT_THETA,
    use_blocking: bool = True,
    fast: bool = True,
    workers: int = 2,
    pool: WorkerPool | None = None,
    stats_out: list[PartitionBuildStats] | None = None,
) -> FeatureSpace:
    """Build a :class:`FeatureSpace` with the left side split across processes.

    Each worker scores a contiguous slice of the left entities against the
    full right side, so no candidate pair is scored twice and the merged
    space is identical (links, scores, ``total_pairs_considered``) to a
    single-process build: blocking depends only on the right side, and the
    merge deduplicates by link. Worker obs snapshots (``space.build.*``
    phase timers, ``similarity.cache.*`` counters) merge into the caller's
    registry, mirroring :func:`run_partitions_parallel`.

    ``workers`` controls the number of partitions; the pool itself sizes to
    the machine's CPUs and persists across calls (``pool=None`` uses the
    process-shared pool). ``stats_out``, when given, receives one
    :class:`PartitionBuildStats` per partition.
    """
    left_entities = list(left_entities)
    right_entities = list(right_entities)
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    workers = min(workers, max(1, len(left_entities)))
    chunk_size = (len(left_entities) + workers - 1) // workers if left_entities else 1
    chunks = [left_entities[i:i + chunk_size] for i in range(0, len(left_entities), chunk_size)]
    if not chunks:
        chunks = [[]]

    with obs.timer("space.build.ship"):
        right_blob = encode_entities(right_entities)
        jobs = [
            (
                encode_entities(chunk),
                right_blob,
                theta,
                use_blocking,
                fast,
                f"space-build-{index}",
            )
            for index, chunk in enumerate(chunks)
        ]
        bytes_per_job = [len(job[0]) + len(right_blob) for job in jobs]
        obs.inc("pool.bytes.shipped", sum(bytes_per_job))

    if len(jobs) == 1 or workers == 1:
        # Inline fallback: same codec + scoring body, no process hop.
        results = [_score_space_partition(*job) for job in jobs]
    else:
        if pool is None:
            pool = shared_pool(workers)
        results = pool.run_tasks(_score_space_partition, jobs, label="space-build")

    with obs.timer("space.build.merge"):
        spaces = []
        for index, (delta, snapshot, wall_seconds, admitted) in enumerate(results):
            space = decode_space_delta(delta)
            spaces.append(space)
            obs.merge(snapshot)
            if stats_out is not None:
                stats_out.append(
                    PartitionBuildStats(
                        name=f"space-build-{index}",
                        pairs_considered=len(chunks[index]) * len(right_entities),
                        pairs_admitted=admitted,
                        bytes_shipped=bytes_per_job[index] + len(delta),
                        wall_seconds=wall_seconds,
                    )
                )
        obs.inc("space.build.partitions", len(spaces))
        merged = merge_spaces(spaces)
    return merged


# --------------------------------------------------------------------- #
# Episode batch processing
# --------------------------------------------------------------------- #


def _run_partition(
    space_blob: bytes,
    initial_links: frozenset[Link],
    ground_truth_links: frozenset[Link],
    config: AlexConfig,
    episode_size: int,
    max_episodes: int,
    feedback_seed: int,
    error_rate: float,
    name: str,
    trace_config: tuple | None = None,
) -> PartitionOutcome:
    """Worker body: one partition, one engine, one session.

    The partition's feature space arrives as a space-delta blob (the same
    dictionary-encoded wire format the build path uses) and is frozen after
    decoding — deterministic, since freezing sorts by value.

    ``trace_config`` is ``(capacity, sample, seed)`` when the parent had a
    tracer installed: the worker installs its own (per-partition seed) on
    its scoped registry, and the audit events ride home inside the
    ``obs_snapshot``'s ``events`` section.
    """
    # An isolated registry per partition: forked workers inherit the parent
    # registry, and the inline (max_workers=1) path shares it — either way
    # the partition's metrics must be its own, merged once at the gather.
    with obs.use_registry(obs.Registry(name)) as registry:
        if trace_config is not None:
            capacity, sample, seed = trace_config
            trace.install(capacity=capacity, sample=sample, seed=seed)
        with obs.timer("space.build.ship"):
            space = decode_space_delta(space_blob)
            space.freeze()
        engine = AlexEngine(space, LinkSet(initial_links), config, name=name)
        oracle: GroundTruthOracle | NoisyOracle = GroundTruthOracle(LinkSet(ground_truth_links))
        if error_rate > 0.0:
            oracle = NoisyOracle(oracle, error_rate, seed=feedback_seed)
        session = FeedbackSession(engine, oracle, seed=feedback_seed)
        episodes = session.run(episode_size=episode_size, max_episodes=max_episodes)
        return PartitionOutcome(
            name=name,
            candidates=engine.candidates.snapshot(),
            episodes_run=episodes,
            converged_at=engine.converged_at,
            relaxed_converged_at=engine.relaxed_converged_at,
            elapsed_seconds=session.elapsed_seconds,
            obs_snapshot=registry.snapshot(),
        )


def run_partitions_parallel(
    spaces: Sequence[FeatureSpace],
    initial_links: LinkSet,
    ground_truth: LinkSet,
    config: AlexConfig,
    episode_size: int,
    max_episodes: int,
    max_workers: int | None = None,
    feedback_seed: int = 3,
    error_rate: float = 0.0,
    pool: WorkerPool | None = None,
) -> tuple[LinkSet, list[PartitionOutcome]]:
    """Run every partition in its own process and merge the results.

    Returns the union of all partitions' final candidate links plus the
    per-partition outcomes. Links outside every partition's space are routed
    by a hash of the left entity (same rule as
    :class:`~repro.core.parallel.PartitionedAlex`). Partition work runs on
    the persistent worker pool (``pool=None`` uses the process-shared one),
    so consecutive runs reuse the same worker processes.
    """
    if not spaces:
        raise ConfigError("run_partitions_parallel needs at least one space")

    def route(link: Link) -> int:
        for index, space in enumerate(spaces):
            if link in space:
                return index
        return zlib.crc32(link.left.value.encode()) % len(spaces)

    initial_per_partition: list[set[Link]] = [set() for _ in spaces]
    for link in initial_links:
        initial_per_partition[route(link)].add(link)
    truth_per_partition: list[set[Link]] = [set() for _ in spaces]
    for link in ground_truth:
        truth_per_partition[route(link)].add(link)

    parent_tracer = trace.active()
    with obs.timer("space.build.ship"):
        space_blobs = [encode_space_delta(space) for space in spaces]
        obs.inc("pool.bytes.shipped", sum(len(blob) for blob in space_blobs))
    jobs = [
        (
            space_blobs[index],
            frozenset(initial_per_partition[index]),
            frozenset(truth_per_partition[index]),
            config.replace(seed=config.seed + index),
            episode_size,
            max_episodes,
            feedback_seed + index,
            error_rate,
            f"partition-{index}",
            None
            if parent_tracer is None
            else (
                parent_tracer.capacity,
                parent_tracer.sample,
                None if parent_tracer.seed is None else parent_tracer.seed + index + 1,
            ),
        )
        for index in range(len(spaces))
    ]

    if max_workers == 1 or len(spaces) == 1:
        outcomes = [_run_partition(*job) for job in jobs]
    else:
        if pool is None:
            pool = shared_pool(max_workers)
        outcomes = pool.run_tasks(_run_partition, jobs, label="episodes")

    merged = LinkSet(name="parallel-merged")
    obs.inc("parallel.partitions.run", len(outcomes))
    for outcome in outcomes:
        for link in outcome.candidates:
            merged.add(link)
        if outcome.obs_snapshot is not None:
            # one whole-run snapshot: counters/histograms/spans sum across
            # partitions (gauges are last-write-wins — label per-partition
            # breakdowns yourself if you need them)
            obs.merge(outcome.obs_snapshot)
    return merged, outcomes
