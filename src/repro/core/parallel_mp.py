"""True multi-core execution of partitioned ALEX (Section 6.2).

The paper: "The different partitions can be independently explored in
parallel, either on different CPU cores of the same machine or on multiple
machines in a distributed setting." :class:`~repro.core.parallel.PartitionedAlex`
runs partitions in-process; this module ships each partition to a worker
process instead. Because partitions share nothing, the only coordination is
the initial scatter and the final gather.

Each worker runs a full feedback session against its own slice of the ground
truth (the paper's model: feedback "is directed to all partitions" — a
feedback item concerns exactly one link, hence exactly one partition).
"""

from __future__ import annotations

import zlib

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.obs import trace
from repro.core.config import AlexConfig
from repro.core.engine import AlexEngine
from repro.errors import ConfigError
from repro.features.feature_set import DEFAULT_THETA
from repro.features.space import FeatureSpace, merge_spaces
from repro.feedback.oracle import GroundTruthOracle, NoisyOracle
from repro.feedback.session import FeedbackSession
from repro.links import Link, LinkSet
from repro.rdf.entity import Entity


@dataclass
class PartitionOutcome:
    """Result of one partition's run."""

    name: str
    candidates: frozenset[Link]
    episodes_run: int
    converged_at: int | None
    relaxed_converged_at: int | None
    elapsed_seconds: float
    #: the worker's obs registry snapshot; merged into the parent's registry
    obs_snapshot: dict | None = field(default=None, repr=False)


def _run_partition(
    space: FeatureSpace,
    initial_links: frozenset[Link],
    ground_truth_links: frozenset[Link],
    config: AlexConfig,
    episode_size: int,
    max_episodes: int,
    feedback_seed: int,
    error_rate: float,
    name: str,
    trace_config: tuple | None = None,
) -> PartitionOutcome:
    """Worker body: one partition, one engine, one session.

    ``trace_config`` is ``(capacity, sample, seed)`` when the parent had a
    tracer installed: the worker installs its own (per-partition seed) on
    its scoped registry, and the audit events ride home inside the
    ``obs_snapshot``'s ``events`` section.
    """
    # An isolated registry per partition: forked workers inherit the parent
    # registry, and the inline (max_workers=1) path shares it — either way
    # the partition's metrics must be its own, merged once at the gather.
    with obs.use_registry(obs.Registry(name)) as registry:
        if trace_config is not None:
            capacity, sample, seed = trace_config
            trace.install(capacity=capacity, sample=sample, seed=seed)
        engine = AlexEngine(space, LinkSet(initial_links), config, name=name)
        oracle: GroundTruthOracle | NoisyOracle = GroundTruthOracle(LinkSet(ground_truth_links))
        if error_rate > 0.0:
            oracle = NoisyOracle(oracle, error_rate, seed=feedback_seed)
        session = FeedbackSession(engine, oracle, seed=feedback_seed)
        episodes = session.run(episode_size=episode_size, max_episodes=max_episodes)
        return PartitionOutcome(
            name=name,
            candidates=engine.candidates.snapshot(),
            episodes_run=episodes,
            converged_at=engine.converged_at,
            relaxed_converged_at=engine.relaxed_converged_at,
            elapsed_seconds=session.elapsed_seconds,
            obs_snapshot=registry.snapshot(),
        )


def _build_space_partition(
    left_chunk: list[Entity],
    right_entities: list[Entity],
    theta: float,
    use_blocking: bool,
    fast: bool,
    name: str,
) -> tuple[FeatureSpace, dict]:
    """Worker body: build one left-partition's sub-space.

    Runs under an isolated obs registry (same pattern as feedback
    partitions) so the worker's phase timers and cache counters travel back
    in the returned snapshot and merge into the parent registry.
    """
    with obs.use_registry(obs.Registry(name)) as registry:
        space = FeatureSpace.build(
            left_chunk, right_entities, theta, use_blocking, fast=fast, workers=1
        )
        return space, registry.snapshot()


def build_space_parallel(
    left_entities: Sequence[Entity],
    right_entities: Sequence[Entity],
    *,
    theta: float = DEFAULT_THETA,
    use_blocking: bool = True,
    fast: bool = True,
    workers: int = 2,
) -> FeatureSpace:
    """Build a :class:`FeatureSpace` with the left side split across processes.

    Each worker scores a contiguous slice of the left entities against the
    full right side, so no candidate pair is scored twice and the merged
    space is identical (links, scores, ``total_pairs_considered``) to a
    single-process build: blocking depends only on the right side, and the
    merge deduplicates by link. Worker obs snapshots (``space.build.*``
    phase timers, ``similarity.cache.*`` counters) merge into the caller's
    registry, mirroring :func:`run_partitions_parallel`.
    """
    left_entities = list(left_entities)
    right_entities = list(right_entities)
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    workers = min(workers, max(1, len(left_entities)))
    chunk_size = (len(left_entities) + workers - 1) // workers if left_entities else 1
    chunks = [left_entities[i:i + chunk_size] for i in range(0, len(left_entities), chunk_size)]
    if not chunks:
        chunks = [[]]
    jobs = [
        (chunk, right_entities, theta, use_blocking, fast, f"space-build-{index}")
        for index, chunk in enumerate(chunks)
    ]
    if len(jobs) == 1 or workers == 1:
        results = [_build_space_partition(*job) for job in jobs]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_build_space_partition, *zip(*jobs)))
    spaces = []
    for space, snap in results:
        spaces.append(space)
        obs.merge(snap)
    obs.inc("space.build.partitions", len(spaces))
    with obs.timer("space.build.merge"):
        merged = merge_spaces(spaces)
    return merged


def run_partitions_parallel(
    spaces: Sequence[FeatureSpace],
    initial_links: LinkSet,
    ground_truth: LinkSet,
    config: AlexConfig,
    episode_size: int,
    max_episodes: int,
    max_workers: int | None = None,
    feedback_seed: int = 3,
    error_rate: float = 0.0,
) -> tuple[LinkSet, list[PartitionOutcome]]:
    """Run every partition in its own process and merge the results.

    Returns the union of all partitions' final candidate links plus the
    per-partition outcomes. Links outside every partition's space are routed
    by a hash of the left entity (same rule as
    :class:`~repro.core.parallel.PartitionedAlex`).
    """
    if not spaces:
        raise ConfigError("run_partitions_parallel needs at least one space")

    def route(link: Link) -> int:
        for index, space in enumerate(spaces):
            if link in space:
                return index
        return zlib.crc32(link.left.value.encode()) % len(spaces)

    initial_per_partition: list[set[Link]] = [set() for _ in spaces]
    for link in initial_links:
        initial_per_partition[route(link)].add(link)
    truth_per_partition: list[set[Link]] = [set() for _ in spaces]
    for link in ground_truth:
        truth_per_partition[route(link)].add(link)

    parent_tracer = trace.active()
    jobs = [
        (
            space,
            frozenset(initial_per_partition[index]),
            frozenset(truth_per_partition[index]),
            config.replace(seed=config.seed + index),
            episode_size,
            max_episodes,
            feedback_seed + index,
            error_rate,
            f"partition-{index}",
            None
            if parent_tracer is None
            else (
                parent_tracer.capacity,
                parent_tracer.sample,
                None if parent_tracer.seed is None else parent_tracer.seed + index + 1,
            ),
        )
        for index, space in enumerate(spaces)
    ]

    if max_workers == 1 or len(spaces) == 1:
        outcomes = [_run_partition(*job) for job in jobs]
    else:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            outcomes = list(pool.map(_run_partition, *zip(*jobs)))

    merged = LinkSet(name="parallel-merged")
    obs.inc("parallel.partitions.run", len(outcomes))
    for outcome in outcomes:
        for link in outcome.candidates:
            merged.add(link)
        if outcome.obs_snapshot is not None:
            # one whole-run snapshot: counters/histograms/spans sum across
            # partitions (gauges are last-write-wins — label per-partition
            # breakdowns yourself if you need them)
            obs.merge(outcome.obs_snapshot)
    return merged, outcomes
