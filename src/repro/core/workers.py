"""Persistent process pool for partitioned execution.

Before this module existed every parallel entry point
(:func:`~repro.core.parallel_mp.build_space_parallel`,
:func:`~repro.core.parallel_mp.run_partitions_parallel`) spawned a fresh
``ProcessPoolExecutor`` per call, so process start-up and full-object
pickling dominated the similarity work ALEX actually needs parallelized —
``BENCH_space.json`` recorded the multi-process build *losing* to the
single-process fast path. A :class:`WorkerPool` instead spawns its workers
once, lazily, and keeps them alive across builds: repeated builds pay no
respawn cost, and long-lived workers keep their interned term tables and
score memo caches warm (the same values recur across builds of a churning
KB, so steady-state rebuilds skip most of the string metric work).

Lifecycle discipline — nothing may leak processes out of a test run:

* **lazy spawn** — no process exists until the first task batch arrives;
* **idle timeout** — a daemon timer shuts the executor down after
  ``idle_timeout`` seconds without a batch (workers respawn transparently
  on next use);
* **atexit + Engine.close()** — the process-shared pool is torn down at
  interpreter exit and by :meth:`~repro.core.engine.AlexEngine.close`.

Crash robustness: a batch whose worker dies (``BrokenProcessPool``) is
retried once on a respawned executor; if the executor breaks again the
surviving tasks run in-process and ``alex.pool.fallback`` counts the
degradation.

Threading model: all mutable pool state (``_executor``, ``_generation``,
``_timer``, counters) is guarded by ``_lock``; blocking work — executor
shutdown, future results, in-process fallback — always happens *outside*
the lock so the idle timer and concurrent submitters can never deadlock
(see the lock/queue discipline notes in ``docs/architecture.md``).
"""

from __future__ import annotations

import atexit
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro import obs
from repro.errors import ConfigError

#: Seconds without a task batch before the workers are shut down.
DEFAULT_IDLE_TIMEOUT = 300.0


def effective_size(requested: int | None) -> int:
    """Worker processes actually worth spawning for a request.

    ``requested`` ≤ 0 (or ``None``) means "size to the machine". The pool
    never spawns more processes than there are schedulable CPUs: on a
    1-core container a request for 4 workers still yields one process
    (partitions queue through it and share its warm caches), which is
    strictly better than 4 processes time-slicing one core with 4 cold
    caches.
    """
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux: no affinity API
        cpus = os.cpu_count() or 1
    cpus = max(1, cpus)
    if requested is None or requested <= 0:
        return cpus
    return max(1, min(requested, cpus))


def _run_in_process(fn: Callable, args: tuple) -> Any:
    """In-process fallback body (module-level so tests can monkeypatch)."""
    return fn(*args)


class WorkerPool:
    """A lazily-spawned, persistent, crash-tolerant process pool."""

    def __init__(
        self,
        max_workers: int | None = None,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        name: str = "pool",
    ):
        if idle_timeout <= 0:
            raise ConfigError(f"idle_timeout must be > 0, got {idle_timeout}")
        self.size = effective_size(max_workers)
        self.idle_timeout = idle_timeout
        self.name = name
        self._lock = threading.Lock()
        self._executor: ProcessPoolExecutor | None = None
        self._timer: threading.Timer | None = None
        self._active_batches = 0
        self._last_used = time.monotonic()
        self._generation = 0
        self._tasks_completed = 0
        self._batches = 0
        self._retries = 0
        self._fallbacks = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """Lifecycle counters (a live executor means workers are alive)."""
        with self._lock:
            return {
                "size": self.size,
                "alive": self._executor is not None,
                "generation": self._generation,
                "batches": self._batches,
                "tasks_completed": self._tasks_completed,
                "retries": self._retries,
                "fallbacks": self._fallbacks,
            }

    def worker_pids(self) -> frozenset[int]:
        """The PIDs of the current worker processes, probed with real tasks.

        Spawns the executor if needed. One probe per worker slot; with a
        warm pool no new process is created — the frozenset is stable
        across consecutive batches, which is what the pool-reuse tests
        assert.
        """
        executor = self._ensure_executor()
        futures = [executor.submit(os.getpid) for _ in range(self.size)]
        try:
            pids = frozenset(future.result() for future in futures)
        finally:
            self._touch()
        return pids

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def run_tasks(self, fn: Callable, tasks: Sequence[tuple], label: str = "tasks") -> list:
        """Run ``fn(*task)`` for every task, in order, on the worker pool.

        Results come back in task order. A ``BrokenProcessPool`` failure
        respawns the executor and retries the failed tasks once; tasks that
        break the respawned executor too fall back to in-process execution
        (counted as ``alex.pool.fallback``). Ordinary task exceptions
        propagate unchanged — they are bugs in the task, not pool crashes.
        """
        if not tasks:
            return []
        with self._lock:
            if self._closed:
                raise ConfigError(f"worker pool {self.name!r} is closed")
            self._active_batches += 1
            self._batches += 1
        obs.set_gauge("pool.tasks.queued", len(tasks), pool=self.name)
        try:
            return self._run_batch(fn, list(tasks), label)
        finally:
            obs.set_gauge("pool.tasks.queued", 0, pool=self.name)
            with self._lock:
                self._active_batches -= 1
            self._touch()

    def _run_batch(self, fn: Callable, tasks: list[tuple], label: str) -> list:
        results: list[Any] = [None] * len(tasks)
        pending = list(range(len(tasks)))
        for _attempt in range(2):
            if not pending:
                break
            executor = self._ensure_executor()
            futures = [(index, executor.submit(fn, *tasks[index])) for index in pending]
            broken: list[int] = []
            for index, future in futures:
                try:
                    results[index] = future.result()
                    with self._lock:
                        self._tasks_completed += 1
                except BrokenProcessPool:
                    broken.append(index)
            if broken:
                obs.inc("pool.batch.broken", labels_pool=self.name)
                with self._lock:
                    self._retries += len(broken)
                self._discard_executor()
            pending = broken
        for index in pending:
            # Second respawn also died: the task itself kills workers.
            # Degrade to in-process execution so the build still finishes.
            obs.inc("alex.pool.fallback", task=label)
            with self._lock:
                self._fallbacks += 1
            results[index] = _run_in_process(fn, tasks[index])
            with self._lock:
                self._tasks_completed += 1
        return results

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _ensure_executor(self) -> ProcessPoolExecutor:
        """The live executor, spawning one (lazily) when none exists."""
        with self._lock:
            if self._closed:
                raise ConfigError(f"worker pool {self.name!r} is closed")
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.size)
                self._generation += 1
                obs.inc("pool.processes.spawned", self.size, pool=self.name)
                obs.set_gauge("pool.workers.alive", self.size, pool=self.name)
            return self._executor

    def _touch(self) -> None:
        """Record activity and (re)arm the idle-shutdown timer."""
        with self._lock:
            self._last_used = time.monotonic()
            if self._executor is None:
                return
            if self._timer is not None:
                self._timer.cancel()
            timer = threading.Timer(self.idle_timeout, self._idle_check)
            timer.daemon = True
            self._timer = timer
            timer.start()

    def _idle_check(self) -> None:
        """Timer body: shut the workers down if the pool has gone idle."""
        with self._lock:
            idle = (
                self._active_batches == 0
                and time.monotonic() - self._last_used >= self.idle_timeout * 0.5
            )
            executor = self._executor if idle else None
            if idle:
                self._executor = None
                self._timer = None
        if executor is not None:
            executor.shutdown(wait=True)
            obs.set_gauge("pool.workers.alive", 0, pool=self.name)

    def _discard_executor(self) -> None:
        """Drop a broken executor; the next batch respawns workers."""
        with self._lock:
            executor = self._executor
            self._executor = None
        if executor is not None:
            executor.shutdown(wait=False)
            obs.set_gauge("pool.workers.alive", 0, pool=self.name)

    def restart(self) -> None:
        """Shut the workers down; the next batch spawns a fresh generation.

        Used by the benchmark to measure a genuinely cold multi-process
        build (fresh processes, empty worker caches).
        """
        self._discard_executor()

    def shutdown(self) -> None:
        """Terminate the workers and refuse further batches."""
        with self._lock:
            self._closed = True
            executor = self._executor
            self._executor = None
            timer = self._timer
            self._timer = None
        if timer is not None:
            timer.cancel()
        if executor is not None:
            executor.shutdown(wait=True)
            obs.set_gauge("pool.workers.alive", 0, pool=self.name)

    def __repr__(self):
        stats = self.stats()
        state = "alive" if stats["alive"] else "idle"
        return f"<WorkerPool {self.name!r} size={self.size} {state} gen={stats['generation']}>"


# --------------------------------------------------------------------- #
# The process-shared pool
# --------------------------------------------------------------------- #

_shared: WorkerPool | None = None
_shared_lock = threading.Lock()


def shared_pool(
    workers: int | None = None, idle_timeout: float | None = None
) -> WorkerPool:
    """The process-wide pool every parallel entry point shares.

    Created on first use and reused by space builds, episode partition runs
    and federated fan-out alike — "workers spawn once per engine lifetime".
    A request for more workers than the current pool holds replaces it with
    a bigger one (the old workers are shut down); smaller requests reuse
    the existing pool, so the pool only ever grows to the machine's CPU
    count.
    """
    global _shared
    requested = effective_size(workers)
    stale: WorkerPool | None = None
    with _shared_lock:
        pool = _shared
        if pool is None or pool.stats()["size"] < requested:
            stale = pool
            timeout = idle_timeout if idle_timeout is not None else DEFAULT_IDLE_TIMEOUT
            pool = WorkerPool(requested, idle_timeout=timeout, name="shared")
            _shared = pool
    if stale is not None:
        stale.shutdown()
    return pool


def peek_shared_pool() -> WorkerPool | None:
    """The shared pool if one has been created, without creating it.

    Health probes use this: asking "is the pool alive?" must never spawn
    worker processes as a side effect.
    """
    with _shared_lock:
        return _shared


def shutdown_shared_pool() -> None:
    """Tear down the shared pool (atexit hook and ``AlexEngine.close``)."""
    global _shared
    with _shared_lock:
        pool = _shared
        _shared = None
    if pool is not None:
        pool.shutdown()


atexit.register(shutdown_shared_pool)
