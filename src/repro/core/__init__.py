"""ALEX core: the reinforcement-learning link explorer (the paper's contribution)."""

from repro.core.config import BATCH_EPISODE_SIZE, DOMAIN_EPISODE_SIZE, AlexConfig
from repro.core.engine import AlexEngine
from repro.core.episode import Episode, EpisodeStats
from repro.core.parallel import PartitionedAlex
from repro.core.parallel_mp import (
    PartitionOutcome,
    build_space_parallel,
    run_partitions_parallel,
)
from repro.core.persistence import (
    dump_engine,
    engine_from_dict,
    engine_load,
    engine_save,
    engine_to_dict,
    load_engine,
    load_engine_file,
    save_engine_file,
)
from repro.core.policy import EpsilonGreedyPolicy
from repro.core.provenance import ExplorationLedger
from repro.core.reporting import PolicyReport, policy_report, q_value_table
from repro.core.state import ExplorationAction, StateAction, available_actions
from repro.core.value import ActionValueTable
from repro.core.workers import WorkerPool, shared_pool, shutdown_shared_pool

__all__ = [
    "ActionValueTable",
    "AlexConfig",
    "AlexEngine",
    "BATCH_EPISODE_SIZE",
    "DOMAIN_EPISODE_SIZE",
    "Episode",
    "EpisodeStats",
    "EpsilonGreedyPolicy",
    "ExplorationAction",
    "ExplorationLedger",
    "PartitionOutcome",
    "PartitionedAlex",
    "PolicyReport",
    "StateAction",
    "WorkerPool",
    "available_actions",
    "build_space_parallel",
    "dump_engine",
    "engine_from_dict",
    "engine_load",
    "engine_save",
    "engine_to_dict",
    "load_engine",
    "load_engine_file",
    "policy_report",
    "q_value_table",
    "run_partitions_parallel",
    "save_engine_file",
    "shared_pool",
    "shutdown_shared_pool",
]
