"""Partitioned ALEX: independent engines over partitioned spaces (Section 6.2).

The larger dataset is round-robin partitioned; each partition gets its own
:class:`~repro.core.engine.AlexEngine` with an independent policy, value
table, blacklist, and candidate set. Feedback on a link is routed to the
engine owning it. Partitions share nothing, so they may execute in parallel;
this implementation runs them in-process (the paper's parallelism affects
wall-clock only, not link quality).

:class:`PartitionedAlex` mirrors the single-engine interface so the feedback
session and experiment runner treat both uniformly.
"""

from __future__ import annotations

import zlib

from typing import Iterable, Sequence

from repro.core.config import AlexConfig
from repro.core.engine import AlexEngine
from repro.core.episode import EpisodeStats
from repro.errors import ConfigError
from repro.features.space import FeatureSpace
from repro.links import Link, LinkSet


class PartitionedAlex:
    """A federation of per-partition ALEX engines."""

    def __init__(
        self,
        spaces: Sequence[FeatureSpace],
        initial_links: LinkSet | Iterable[Link],
        config: AlexConfig,
    ):
        if not spaces:
            raise ConfigError("PartitionedAlex needs at least one space")
        links = list(initial_links)
        self.config = config
        self.engines: list[AlexEngine] = []
        routed: list[list[Link]] = [[] for _ in spaces]
        for link in links:
            routed[self._space_index_for(spaces, link)].append(link)
        for index, (space, partition_links) in enumerate(zip(spaces, routed)):
            self.engines.append(
                AlexEngine(
                    space,
                    LinkSet(partition_links),
                    # Distinct seeds so partitions don't mirror each other's
                    # random choices.
                    config.replace(seed=config.seed + index),
                    name=f"partition-{index}",
                )
            )

    @staticmethod
    def _space_index_for(spaces: Sequence[FeatureSpace], link: Link) -> int:
        for index, space in enumerate(spaces):
            if link in space:
                return index
        # Links outside every filtered space (possible for initial candidates)
        # still need an owner for removal bookkeeping.
        return zlib.crc32(link.left.value.encode()) % len(spaces)

    # ------------------------------------------------------------------ #
    # Engine-compatible interface
    # ------------------------------------------------------------------ #

    def owns(self, link: Link) -> bool:
        return any(engine.owns(link) for engine in self.engines)

    def engine_for(self, link: Link) -> AlexEngine:
        for engine in self.engines:
            if link in engine.candidates:
                return engine
        for engine in self.engines:
            if link in engine.space:
                return engine
        return self.engines[zlib.crc32(link.left.value.encode()) % len(self.engines)]

    def process_feedback(self, link: Link, positive: bool) -> list[Link]:
        return self.engine_for(link).process_feedback(link, positive)

    def end_episode(self) -> EpisodeStats:
        """End the episode on every engine; returns merged stats."""
        merged = EpisodeStats(index=self.episodes_completed + 1)
        for engine in self.engines:
            stats = engine.end_episode()
            merged.feedback_count += stats.feedback_count
            merged.positive_count += stats.positive_count
            merged.negative_count += stats.negative_count
            merged.links_discovered += stats.links_discovered
            merged.links_removed += stats.links_removed
            merged.rollbacks += stats.rollbacks
        return merged

    @property
    def candidates(self) -> LinkSet:
        """Union of all partitions' candidate links (built on demand)."""
        union = LinkSet(name="all-partitions")
        for engine in self.engines:
            for link in engine.candidates:
                union.add(link)
        return union

    @property
    def episodes_completed(self) -> int:
        return max(engine.episodes_completed for engine in self.engines)

    @property
    def converged(self) -> bool:
        return all(engine.converged for engine in self.engines)

    @property
    def stopped(self) -> bool:
        return all(engine.stopped for engine in self.engines)

    @property
    def converged_at(self) -> int | None:
        marks = [engine.converged_at for engine in self.engines]
        if any(mark is None for mark in marks):
            return None
        return max(marks)

    @property
    def relaxed_converged_at(self) -> int | None:
        marks = [engine.relaxed_converged_at for engine in self.engines]
        if any(mark is None for mark in marks):
            return None
        return max(marks)

    def __repr__(self):
        return f"<PartitionedAlex with {len(self.engines)} partitions>"
