"""Episode bookkeeping: feedback grouping and first-visit tracking.

An episode is a fixed-size batch of feedback items (Section 4.3: "the final
time step is when a feedback episode ends"). Within an episode the engine
must know (a) which links have already been visited — for the first-visit
Monte Carlo rule — and (b) which states had actions taken — the states whose
policy entries get improved at the episode boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.links import Link


@dataclass
class EpisodeStats:
    """Counters reported per finished episode."""

    index: int
    feedback_count: int = 0
    positive_count: int = 0
    negative_count: int = 0
    links_discovered: int = 0
    links_removed: int = 0
    rollbacks: int = 0

    @property
    def negative_fraction(self) -> float:
        """Share of feedback that was negative — Figure 6(b)/10(c)'s metric."""
        if self.feedback_count == 0:
            return 0.0
        return self.negative_count / self.feedback_count


class Episode:
    """State of the currently collecting episode."""

    def __init__(self, index: int):
        self.stats = EpisodeStats(index=index)
        self._visited: set[Link] = set()
        self._acted_states: set[Link] = set()

    @property
    def index(self) -> int:
        return self.stats.index

    @property
    def feedback_count(self) -> int:
        return self.stats.feedback_count

    def first_visit(self, link: Link) -> bool:
        """Record a visit; True only the first time this episode."""
        if link in self._visited:
            return False
        self._visited.add(link)
        return True

    def record_action(self, state: Link) -> None:
        self._acted_states.add(state)

    def acted_states(self) -> set[Link]:
        return set(self._acted_states)

    def record_feedback(self, positive: bool) -> None:
        self.stats.feedback_count += 1
        if positive:
            self.stats.positive_count += 1
        else:
            self.stats.negative_count += 1
