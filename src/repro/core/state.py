"""States and actions of the ALEX decision process.

A *state* is a link (the paper uses the terms interchangeably), represented
by its feature set. An *action* picks one feature of the state and an
exploration offset: "find all the links that have similarity value between
sf and sf ± af" (Section 4.2). State-action pairs key the action-value
table and the provenance ledger.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.features.feature_set import FeatureKey, FeatureSet
from repro.links import Link


class StateAction(NamedTuple):
    """A (state, action) pair: the link acted on and the feature explored."""

    state: Link
    action: FeatureKey

    def describe(self) -> str:
        p1, p2 = self.action
        return f"explore ({p1.local_name}, {p2.local_name}) around {self.state.left.local_name}"


class ExplorationAction(NamedTuple):
    """A fully instantiated action: feature, center score, and step.

    Exploring finds links whose ``feature`` score lies in
    ``[center − step, center + step]``.
    """

    feature: FeatureKey
    center: float
    step: float

    @property
    def low(self) -> float:
        return max(0.0, self.center - self.step)

    @property
    def high(self) -> float:
        return min(1.0, self.center + self.step)


def available_actions(feature_set: FeatureSet) -> list[FeatureKey]:
    """A(s): one action per feature of the state's feature set, in
    deterministic order."""
    return feature_set.keys_sorted()
