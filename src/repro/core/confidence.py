"""Link confidence: combining linker scores with feedback evidence.

The published artifact of a link-improvement service is not just a set of
links but a *scored* set: downstream consumers filter by confidence. A
link's confidence combines three signals, each available inside the engine:

* the automatic linker's score, when the link came from the initial set;
* the per-link feedback tally (positives vs. negatives);
* the provenance pedigree — the best average return among the state-action
  pairs that generated the link.

Confidence is a Beta-mean over the feedback tally, seeded by the prior from
the linker score or pedigree: ``(positives + prior_strength * prior) /
(positives + negatives + prior_strength)``. Unjudged initial links keep
(roughly) their linker score; repeatedly approved links approach 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import AlexEngine
from repro.links import Link

#: Weight of the prior relative to one feedback item.
PRIOR_STRENGTH = 2.0

#: Prior for links with no linker score and no pedigree (explored blindly).
DEFAULT_PRIOR = 0.5


@dataclass(frozen=True)
class LinkConfidence:
    """One candidate link with its confidence breakdown."""

    link: Link
    confidence: float
    positives: int
    negatives: int
    prior: float
    source: str  # "linker", "explored", or "unknown"


def link_prior(engine: AlexEngine, link: Link) -> tuple[float, str]:
    """The pre-feedback belief in a link and where it comes from."""
    score = engine.candidates.score(link)
    if score is not None:
        return max(0.0, min(1.0, score)), "linker"
    generators = engine.ledger.generators_of(link)
    if generators:
        returns = [
            engine.values.q(state_action)
            for state_action in generators
            if engine.values.q(state_action) is not None
        ]
        if returns:
            best = max(returns)
            # map average return in [-1, 1] to a prior in [0, 1]
            return (best + 1.0) / 2.0, "explored"
        return DEFAULT_PRIOR, "explored"
    return DEFAULT_PRIOR, "unknown"


def link_confidence(engine: AlexEngine, link: Link) -> LinkConfidence:
    """Confidence of one candidate link."""
    prior, source = link_prior(engine, link)
    positives, negatives = engine._tally.get(link, [0, 0])
    confidence = (positives + PRIOR_STRENGTH * prior) / (
        positives + negatives + PRIOR_STRENGTH
    )
    return LinkConfidence(
        link=link,
        confidence=confidence,
        positives=positives,
        negatives=negatives,
        prior=prior,
        source=source,
    )


def confidence_report(engine: AlexEngine) -> list[LinkConfidence]:
    """All candidate links, most confident first (ties broken by link)."""
    report = [link_confidence(engine, link) for link in engine.candidates]
    report.sort(key=lambda entry: (-entry.confidence, entry.link.left.value, entry.link.right.value))
    return report


def export_confidence_csv(engine: AlexEngine) -> str:
    """The confidence report as CSV text."""
    lines = ["left,right,confidence,positives,negatives,prior,source"]
    for entry in confidence_report(engine):
        lines.append(
            f"{entry.link.left.value},{entry.link.right.value},"
            f"{entry.confidence:.4f},{entry.positives},{entry.negatives},"
            f"{entry.prior:.4f},{entry.source}"
        )
    return "\n".join(lines) + "\n"
