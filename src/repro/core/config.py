"""Configuration for the ALEX engine, with paper defaults (Section 7.1)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class AlexConfig:
    """All tunables of ALEX in one validated, immutable bundle.

    Defaults follow the paper's experimental setup: step size 0.05, feature
    threshold θ = 0.3, at most 100 policy-evaluation/improvement iterations,
    relaxed convergence below 5% change, blacklist and rollback enabled.
    ``episode_size`` is workload-dependent (1000 in batch mode, 10 in the
    specific-domain setting) so it has no hidden default here — callers set
    it explicitly, as the paper does per experiment.
    """

    episode_size: int
    step_size: float = 0.05
    epsilon: float = 0.1
    theta: float = 0.3
    positive_reward: float = 1.0
    negative_reward: float = -1.0
    max_episodes: int = 100
    relaxed_change_threshold: float = 0.05
    convergence_patience: int = 1
    use_blacklist: bool = True
    use_rollback: bool = True
    rollback_min_negatives: int = 5
    rollback_negative_fraction: float = 0.8
    use_distinctiveness: bool = True
    distinctiveness_min_negatives: int = 10
    distinctiveness_negative_fraction: float = 0.85
    seed: int = 0
    #: Worker processes for partitioned execution; 0 sizes to the machine's
    #: CPUs. The pool is shared and persistent (see repro.core.workers).
    pool_workers: int = 0
    #: Seconds a quiet pool keeps its workers alive before shutting down.
    pool_idle_timeout: float = 300.0
    #: Sampling interval (seconds) of the background telemetry
    #: :class:`~repro.obs.Reporter`; 0 (default) disables reporting.
    #: Both ``report_interval`` > 0 and ``report_path`` must be set for the
    #: engine to start a reporter (lazily, on first feedback).
    report_interval: float = 0.0
    #: JSONL sink the reporter appends interval samples to; None disables.
    report_path: str | None = None

    def __post_init__(self):
        if self.episode_size < 1:
            raise ConfigError(f"episode_size must be >= 1, got {self.episode_size}")
        if not (0.0 < self.step_size <= 0.5):
            raise ConfigError(f"step_size must be in (0, 0.5], got {self.step_size}")
        if not (0.0 < self.epsilon < 1.0):
            raise ConfigError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if not (0.0 <= self.theta <= 1.0):
            raise ConfigError(f"theta must be in [0, 1], got {self.theta}")
        if self.positive_reward <= 0.0:
            raise ConfigError("positive_reward must be positive")
        if self.negative_reward >= 0.0:
            raise ConfigError("negative_reward must be negative")
        if self.max_episodes < 1:
            raise ConfigError(f"max_episodes must be >= 1, got {self.max_episodes}")
        if not (0.0 < self.relaxed_change_threshold < 1.0):
            raise ConfigError("relaxed_change_threshold must be in (0, 1)")
        if self.convergence_patience < 1:
            raise ConfigError("convergence_patience must be >= 1")
        if self.rollback_min_negatives < 1:
            raise ConfigError("rollback_min_negatives must be >= 1")
        if not (0.0 < self.rollback_negative_fraction <= 1.0):
            raise ConfigError("rollback_negative_fraction must be in (0, 1]")
        if self.distinctiveness_min_negatives < 1:
            raise ConfigError("distinctiveness_min_negatives must be >= 1")
        if not (0.0 < self.distinctiveness_negative_fraction <= 1.0):
            raise ConfigError("distinctiveness_negative_fraction must be in (0, 1]")
        if self.pool_workers < 0:
            raise ConfigError(f"pool_workers must be >= 0, got {self.pool_workers}")
        if self.pool_idle_timeout <= 0.0:
            raise ConfigError(f"pool_idle_timeout must be > 0, got {self.pool_idle_timeout}")
        if self.report_interval < 0.0:
            raise ConfigError(
                f"report_interval must be >= 0, got {self.report_interval}"
            )

    def replace(self, **changes) -> "AlexConfig":
        """A copy with some fields changed (dataclasses.replace wrapper)."""
        from dataclasses import replace as dc_replace

        return dc_replace(self, **changes)


#: Paper batch-mode default (Section 7.2.1): 1000 feedback items/episode.
BATCH_EPISODE_SIZE = 1000

#: Paper specific-domain default (Section 7.2.2): 10 feedback items/episode.
DOMAIN_EPISODE_SIZE = 10
