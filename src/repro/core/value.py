"""First-visit Monte Carlo action-value estimation (Section 4.4.1).

``Returns(s, a)`` accumulates the rewards observed after taking action *a*
at state *s*; ``Q(s, a)`` is their running average. Per the first-visit
rule, a reward observed on a discovered link is credited to the generating
state-action pairs only on the link's *first* visit within the current
episode; re-visits in later episodes count as new first visits.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.state import StateAction
from repro.features.feature_set import FeatureKey
from repro.links import Link


class ActionValueTable:
    """Tabular Q(s, a) backed by per-pair return lists."""

    def __init__(self):
        self._returns: dict[StateAction, list[float]] = defaultdict(list)
        self._q: dict[StateAction, float] = {}

    def record_return(self, state_action: StateAction, reward: float) -> None:
        """Append a reward to Returns(s, a) and refresh Q(s, a) = AVG."""
        returns = self._returns[state_action]
        returns.append(reward)
        self._q[state_action] = sum(returns) / len(returns)

    def q(self, state_action: StateAction) -> float | None:
        """Q(s, a), or None when the pair has never received a return
        (the paper's "undefined" initialization, Algorithm 1 line 4)."""
        return self._q.get(state_action)

    def returns(self, state_action: StateAction) -> list[float]:
        return list(self._returns.get(state_action, ()))

    def greedy_action(self, state: Link, available: list[FeatureKey]) -> FeatureKey | None:
        """argmax_a Q(s, a) over ``available``; None when no action of this
        state has a defined value yet. Ties break deterministically by
        feature key so runs are reproducible."""
        best: tuple[float, FeatureKey] | None = None
        for action in available:
            value = self._q.get(StateAction(state, action))
            if value is None:
                continue
            candidate = (value, action)
            if best is None or value > best[0] or (
                value == best[0]
                and (action[0].value, action[1].value) < (best[1][0].value, best[1][1].value)
            ):
                best = candidate
        return best[1] if best else None

    def known_pairs(self) -> list[StateAction]:
        return list(self._q)

    def __len__(self) -> int:
        return len(self._q)
