"""The ALEX engine: Algorithm 1 with the Section 6 optimizations.

One engine owns one (partition of the) feature space and one candidate link
set. Feedback items arrive one at a time:

* **positive** — the link is confirmed; the policy picks a feature of the
  link's state and the engine explores the space around that feature's
  score, adding the discovered links to the candidate set (recording their
  provenance for credit assignment and rollback);
* **negative** — the link is removed (and blacklisted), and every
  state-action pair that generated it takes a negative return; pairs whose
  generated links keep attracting negative feedback are rolled back.

Rewards propagate into ``Returns(s, a)`` under the first-visit Monte Carlo
rule. At each episode boundary the policy is improved to be greedy with
respect to the current action values, and convergence is measured as the
change in the candidate link set.
"""

from __future__ import annotations

import random
import time
from typing import Iterable

from repro import obs
from repro.obs import slowlog, trace
from repro.core.config import AlexConfig
from repro.core.distinctiveness import FeatureDistinctiveness
from repro.core.episode import Episode, EpisodeStats
from repro.core.policy import EpsilonGreedyPolicy
from repro.core.provenance import ExplorationLedger
from repro.core.state import StateAction, available_actions
from repro.core.value import ActionValueTable
from repro.features.space import FeatureSpace
from repro.links import Link, LinkSet, change_fraction


class AlexEngine:
    """One ALEX learner over one feature space."""

    def __init__(
        self,
        space: FeatureSpace,
        initial_links: LinkSet | Iterable[Link],
        config: AlexConfig,
        name: str = "alex",
    ):
        self.space = space
        self.config = config
        self.name = name
        self.candidates = (
            initial_links.copy() if isinstance(initial_links, LinkSet) else LinkSet(initial_links)
        )
        self.candidates.name = name
        self.policy = EpsilonGreedyPolicy(config.epsilon)
        self.values = ActionValueTable()
        self.ledger = ExplorationLedger()
        self.distinctiveness = FeatureDistinctiveness(
            config.distinctiveness_min_negatives,
            config.distinctiveness_negative_fraction,
        )
        self.blacklist: set[Link] = set()
        self.confirmed: set[Link] = set()
        #: per-link feedback tallies (positives, negatives) — the evidence
        #: balance that makes ALEX resilient to erroneous feedback: a link
        #: is removed only when negative evidence outweighs positive.
        self._tally: dict[Link, list[int]] = {}
        self.rng = random.Random(config.seed)

        self.episode_history: list[EpisodeStats] = []
        self.converged_at: int | None = None
        self.relaxed_converged_at: int | None = None
        self._episode = Episode(index=1)
        self._last_snapshot = self.candidates.snapshot()
        self._unchanged_streak = 0

        #: Background telemetry reporter (see :class:`repro.obs.Reporter`);
        #: created lazily on the first feedback item when the config sets
        #: both ``report_interval`` > 0 and ``report_path``.
        self._reporter = None
        self._reporting = (
            config.report_interval > 0 and config.report_path is not None
        )
        self._closed = False
        self._episode_started = time.perf_counter()

    # ------------------------------------------------------------------ #
    # Status
    # ------------------------------------------------------------------ #

    @property
    def converged(self) -> bool:
        """Strict convergence: a whole episode left the candidates unchanged."""
        return self.converged_at is not None

    @property
    def stopped(self) -> bool:
        """Converged or out of episode budget."""
        return self.converged or len(self.episode_history) >= self.config.max_episodes

    @property
    def episodes_completed(self) -> int:
        return len(self.episode_history)

    def owns(self, link: Link) -> bool:
        """Is this engine responsible for feedback on ``link``?"""
        return link in self.candidates or link in self.space

    # ------------------------------------------------------------------ #
    # Worker pool lifecycle
    # ------------------------------------------------------------------ #

    def pool(self):
        """The persistent worker pool, sized per this engine's config.

        Lazy: no worker process exists until the first partitioned task
        batch runs. Repeated calls (and repeated builds) reuse the same
        pool — workers spawn once per engine lifetime.
        """
        from repro.core.workers import shared_pool

        return shared_pool(self.config.pool_workers, self.config.pool_idle_timeout)

    def reporter(self):
        """The engine-owned background :class:`~repro.obs.Reporter`, or
        None when reporting is not configured (the default).

        Lazy: the first call creates and starts the reporter thread;
        subsequent calls return the same instance. The engine starts it
        automatically on the first feedback item, and :meth:`close` stops
        it.
        """
        if not self._reporting:
            return None
        if self._reporter is None:
            from repro.obs.report import Reporter

            self._reporter = Reporter(
                self.config.report_interval, self.config.report_path
            )
            self._reporter.start()
        return self._reporter

    def close(self) -> None:
        """Release engine resources: stops the background reporter, flushes
        the slowlog, and shuts down the shared worker pool.

        Idempotent — closing twice (or closing an engine whose reporter
        never started) is a no-op the second time. Call when the engine
        (and any partitioned execution it drove) is finished, so test runs
        and services don't leak worker processes or reporter threads;
        ``atexit`` covers the forgetful caller.
        """
        from repro.core.workers import shutdown_shared_pool

        reporter, self._reporter = self._reporter, None
        self._reporting = False
        if reporter is not None:
            reporter.stop()
        slog = slowlog.active()
        if slog is not None:
            slog.flush()
        shutdown_shared_pool()
        self._closed = True

    @property
    def closed(self) -> bool:
        """Has :meth:`close` run?"""
        return self._closed

    # ------------------------------------------------------------------ #
    # Pre-flight data validation
    # ------------------------------------------------------------------ #

    def preflight(self, left=None, right=None, *, strict=False, quarantine=False):
        """Statically validate the candidate link set before spending
        episodes on it (see :mod:`repro.rdf.validate`).

        Runs the link tier against the candidates with this engine's θ and
        blacklist; ``left``/``right`` graphs additionally enable endpoint-
        presence checks. Returns the ordered diagnostics. Never runs unless
        called — constructing or feeding the engine stays validation-free.

        ``quarantine=True`` moves exactly the links behind error-level
        diagnostics out of the candidates and onto the blacklist (counted as
        ``alex.preflight.quarantined``); nothing else is mutated.
        ``strict=True`` raises :class:`~repro.errors.DataValidationError`
        when error-level diagnostics were found.
        """
        from repro.rdf.validate import validate_links

        diagnostics = validate_links(
            self.candidates,
            left=left,
            right=right,
            theta=self.config.theta,
            blacklist=self.blacklist,
        )
        obs.inc("alex.preflight.runs")
        if quarantine:
            quarantined = 0
            for diagnostic in diagnostics:
                link = diagnostic.link
                if diagnostic.is_error and link is not None and link in self.candidates:
                    self.candidates.remove(link)
                    self.blacklist.add(link)
                    quarantined += 1
            if quarantined:
                obs.inc("alex.preflight.quarantined", quarantined)
        if strict and any(diagnostic.is_error for diagnostic in diagnostics):
            from repro.errors import DataValidationError

            raise DataValidationError(
                [d.format() for d in diagnostics if d.is_error], diagnostics=diagnostics
            )
        return diagnostics

    # ------------------------------------------------------------------ #
    # Feedback processing (policy evaluation)
    # ------------------------------------------------------------------ #

    def process_feedback(self, link: Link, positive: bool) -> list[Link]:
        """Apply one feedback item; returns any newly discovered links."""
        if self._reporting and self._reporter is None:
            self.reporter()  # lazy start on first feedback
        obs.inc("alex.feedback.processed", verdict="positive" if positive else "negative")
        self._episode.record_feedback(positive)
        self._credit(link, positive)
        tally = self._tally.setdefault(link, [0, 0])
        tally[0 if positive else 1] += 1
        tracer = trace.active()
        if positive:
            self.confirmed.add(link)
            self.blacklist.discard(link)
            if link not in self.candidates:
                # A correct link the user vouched for re-enters the set.
                self.candidates.add(link)
            for state_action in self.ledger.generators_of(link):
                self.ledger.record_positive(state_action)
            if tracer is not None:
                tracer.event(
                    "alex.link.approve",
                    link=str(link),
                    reward=self.config.positive_reward,
                    positives=tally[0],
                    negatives=tally[1],
                )
            return self._explore_from(link)
        removed = tally[1] > tally[0]
        if tracer is not None:
            tracer.event(
                "alex.link.reject",
                link=str(link),
                reward=self.config.negative_reward,
                removed=removed,
                positives=tally[0],
                negatives=tally[1],
            )
        if removed:
            # Remove only when negative evidence outweighs positive: one
            # erroneous rejection cannot destroy a repeatedly approved link
            # (the error resilience claimed in the paper's abstract).
            self._remove_link(link)
        return []

    def _credit(self, link: Link, positive: bool) -> None:
        """First-visit Monte Carlo: on the first visit of ``link`` this
        episode, its reward flows to every generating state-action pair."""
        if not self._episode.first_visit(link):
            return
        reward = self.config.positive_reward if positive else self.config.negative_reward
        for state_action in self.ledger.generators_of(link):
            self.values.record_return(state_action, reward)
            self.distinctiveness.record(state_action.action, reward, positive)

    def _explore_from(self, state: Link) -> list[Link]:
        """Take an action at an approved link (Section 4.2)."""
        feature_set = self.space.feature_set(state)
        if feature_set is None or not feature_set:
            return []
        with obs.span("explore"):
            actions = available_actions(feature_set)
            if self.config.use_distinctiveness:
                # Cross-state lesson (Section 4.2): never explore around a
                # feature known to be non-distinctive.
                actions = self.distinctiveness.filter_actions(actions)
            action, mode = self._choose_action_with_mode(state, actions)
            self._episode.record_action(state)
            center = feature_set[action]
            state_action = StateAction(state, action)
            tracer = trace.active()
            feature_label = f"{action[0]} {action[1]}"
            if tracer is not None:
                tracer.event(
                    "alex.feature.select",
                    state=str(state),
                    feature=feature_label,
                    mode=mode,
                    q={
                        f"{a[0]} {a[1]}": self.values.q(StateAction(state, a))
                        for a in actions
                    },
                )
            discovered: list[Link] = []
            for candidate in self.space.explore(action, center, self.config.step_size):
                if candidate in self.blacklist or candidate in self.candidates:
                    continue
                self.candidates.add(candidate)
                self.ledger.record(state_action, candidate)
                discovered.append(candidate)
                if tracer is not None:
                    tracer.event(
                        "alex.link.discover",
                        link=str(candidate),
                        state=str(state),
                        feature=feature_label,
                        mode=mode,
                    )
            self._episode.stats.links_discovered += len(discovered)
            if discovered:
                obs.inc("alex.links.discovered", len(discovered))
        return discovered

    def _choose_action(self, state: Link, actions: list) -> "FeatureKey":
        """π(s): see :meth:`_choose_action_with_mode`."""
        return self._choose_action_with_mode(state, actions)[0]

    def _choose_action_with_mode(self, state: Link, actions: list) -> tuple:
        """π(s): the improved policy when available; for states the policy
        has never improved, bootstrap ε-greedily from the cross-state
        per-feature returns rather than purely at random.

        Returns ``(action, mode)`` with mode ∈ {"uniform", "exploit",
        "explore", "bootstrap"} — the audit trail's record of *why* the
        feature was chosen. RNG consumption is identical to the pre-audit
        behaviour, so seeded runs are unchanged."""
        if self.policy.greedy_action(state) is not None or not self.config.use_distinctiveness:
            return self.policy.choose_with_mode(state, actions, self.rng)
        bootstrap = self.distinctiveness.best_known(actions)
        if bootstrap is not None and self.rng.random() < 1.0 - self.config.epsilon:
            return bootstrap, "bootstrap"
        return self.policy.choose_with_mode(state, actions, self.rng)

    def _remove_link(self, link: Link) -> None:
        if self.candidates.remove(link):
            self._episode.stats.links_removed += 1
            obs.inc("alex.links.removed")
        self.confirmed.discard(link)
        if self.config.use_blacklist:
            self.blacklist.add(link)
            tracer = trace.active()
            if tracer is not None:
                tracer.event("alex.blacklist.insert", link=str(link))
        for state_action in sorted(
            self.ledger.generators_of(link),
            key=lambda sa: (sa.state.left.value, sa.state.right.value,
                            sa.action[0].value, sa.action[1].value),
        ):
            negative_count = self.ledger.record_negative(state_action)
            if self.config.use_rollback:
                self._maybe_rollback(state_action, negative_count)

    def _maybe_rollback(self, state_action: StateAction, negative_count: int) -> None:
        """Undo a state-action pair whose generated links attract mostly
        negative feedback (Section 6.3). The trigger looks at the feedback
        *received* on the pair's links — enough negatives, and a negative
        share of that feedback above the configured fraction. Rolled-back
        links are NOT blacklisted unless they individually received
        negative feedback."""
        if negative_count < self.config.rollback_min_negatives:
            return
        if not self.ledger.generated_by(state_action):
            return
        if (
            self.ledger.negative_feedback_fraction(state_action)
            < self.config.rollback_negative_fraction
        ):
            return
        links = self.ledger.forget_pair(state_action)
        removed = 0
        for link in links:
            if link in self.confirmed:
                continue
            if self.candidates.remove(link):
                removed += 1
        self._episode.stats.rollbacks += 1
        self._episode.stats.links_removed += removed
        obs.inc("alex.rollbacks")
        if removed:
            obs.inc("alex.links.removed", removed)
        tracer = trace.active()
        if tracer is not None:
            tracer.event(
                "alex.rollback.apply",
                state=str(state_action.state),
                feature=f"{state_action.action[0]} {state_action.action[1]}",
                links_forgotten=sorted(str(link) for link in links),
                links_removed=removed,
                negatives=negative_count,
            )

    # ------------------------------------------------------------------ #
    # Episode boundary (policy improvement)
    # ------------------------------------------------------------------ #

    @property
    def current_episode_size(self) -> int:
        return self._episode.feedback_count

    def episode_full(self) -> bool:
        return self._episode.feedback_count >= self.config.episode_size

    def end_episode(self) -> EpisodeStats:
        """Improve the policy at every state acted on this episode and
        evaluate convergence; starts the next episode."""
        # deterministic order: set iteration is hash-salted per process
        for state in sorted(
            self._episode.acted_states(), key=lambda l: (l.left.value, l.right.value)
        ):
            feature_set = self.space.feature_set(state)
            if feature_set is None:
                continue
            actions = available_actions(feature_set)
            greedy = self.values.greedy_action(state, actions)
            if greedy is not None:
                self.policy.improve(state, greedy)

        snapshot = self.candidates.snapshot()
        stats = self._episode.stats
        self.episode_history.append(stats)
        index = len(self.episode_history)
        if snapshot == self._last_snapshot:
            self._unchanged_streak += 1
        else:
            self._unchanged_streak = 0
        if (
            self._unchanged_streak >= self.config.convergence_patience
            and self.converged_at is None
        ):
            self.converged_at = index
        if (
            self.relaxed_converged_at is None
            and change_fraction(self._last_snapshot, snapshot)
            < self.config.relaxed_change_threshold
        ):
            self.relaxed_converged_at = index
        self._last_snapshot = snapshot
        self._episode = Episode(index=index + 1)
        obs.inc("alex.episodes")
        obs.set_gauge("alex.candidates.size", len(self.candidates))
        obs.set_gauge("alex.blacklist.size", len(self.blacklist))
        tracer = trace.active()
        if tracer is not None:
            tracer.event(
                "alex.episode.end",
                index=index,
                feedback=stats.feedback_count,
                discovered=stats.links_discovered,
                removed=stats.links_removed,
                rollbacks=stats.rollbacks,
                candidates=len(self.candidates),
                converged=self.converged,
            )
        slog = slowlog.active()
        if slog is not None:
            slog.record(
                "episode",
                f"{self.name}#{index}",
                time.perf_counter() - self._episode_started,
                detail={
                    "feedback": stats.feedback_count,
                    "discovered": stats.links_discovered,
                    "removed": stats.links_removed,
                    "rollbacks": stats.rollbacks,
                    "candidates": len(self.candidates),
                },
            )
        self._episode_started = time.perf_counter()
        return stats

    # ------------------------------------------------------------------ #
    # Health
    # ------------------------------------------------------------------ #

    def health(self, graphs: dict | None = None) -> dict:
        """A machine-readable snapshot of engine and runtime health.

        Aggregates learner progress, worker-pool liveness (probed without
        spawning processes), cache pressure (plan cache + similarity
        caches), trace-ring drops, reporter and slowlog state, and — when
        ``graphs`` (name → :class:`~repro.rdf.graph.Graph`) is passed —
        dictionary growth per graph. ``status`` is ``"degraded"`` when the
        pool has fallen back in-process, the trace ring dropped events, or
        the reporter thread errored; ``"ok"`` otherwise. Read-only: calling
        it changes no engine or pool state.
        """
        from repro.core.workers import peek_shared_pool
        from repro.similarity.prepared import cache_info
        from repro.sparql.prepared import plan_cache_info

        pool = peek_shared_pool()
        pool_health: dict = {"spawned": pool is not None}
        if pool is not None:
            pool_health.update(pool.stats())

        tracer = trace.active()
        trace_health: dict = {"installed": tracer is not None}
        if tracer is not None:
            payload = tracer.payload()
            trace_health["buffered"] = len(payload["records"])
            trace_health["dropped"] = payload["dropped"]

        reporter = self._reporter
        reporter_health = {
            "configured": self._reporting,
            "running": reporter is not None and reporter.running,
            "samples_written": reporter.samples_written if reporter is not None else 0,
            "path": self.config.report_path,
            "last_error": (
                repr(reporter.last_error)
                if reporter is not None and reporter.last_error is not None
                else None
            ),
        }

        slog = slowlog.active()
        slowlog_health: dict = {"enabled": slog is not None}
        if slog is not None:
            slowlog_health.update(
                threshold=slog.threshold,
                capacity=slog.capacity,
                entries=len(slog),
                recorded=slog.recorded,
            )

        dictionaries = {}
        for name, graph in (graphs or {}).items():
            dictionaries[name] = {
                "terms": len(graph.dictionary),
                "triples": len(graph),
                "version": graph.version,
            }

        degraded = (
            pool_health.get("fallbacks", 0) > 0
            or trace_health.get("dropped", 0) > 0
            or reporter_health["last_error"] is not None
        )
        return {
            "status": "degraded" if degraded else "ok",
            "engine": {
                "name": self.name,
                "closed": self._closed,
                "episodes": self.episodes_completed,
                "converged": self.converged,
                "converged_at": self.converged_at,
                "relaxed_converged_at": self.relaxed_converged_at,
                "candidates": len(self.candidates),
                "confirmed": len(self.confirmed),
                "blacklist": len(self.blacklist),
            },
            "pool": pool_health,
            "caches": {
                "plan_cache": plan_cache_info(),
                "similarity": cache_info(),
            },
            "trace": trace_health,
            "reporter": reporter_health,
            "slowlog": slowlog_health,
            "dictionaries": dictionaries,
        }

    # ------------------------------------------------------------------ #
    # Persistence (the stable public surface; see repro.core.persistence)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """Engine state as a JSON-serializable dict."""
        from repro.core import persistence

        return persistence.engine_to_dict(self)

    @classmethod
    def from_dict(cls, space: FeatureSpace, state: dict) -> "AlexEngine":
        """Rebuild an engine from :meth:`to_dict` output and a fresh space."""
        from repro.core import persistence

        return persistence.engine_from_dict(space, state)

    def save(self, path: str) -> None:
        """Write engine state to a JSON file."""
        from repro.core import persistence

        persistence.engine_save(self, path)

    @classmethod
    def load(cls, space: FeatureSpace, path: str) -> "AlexEngine":
        """Read engine state from a JSON file written by :meth:`save`."""
        from repro.core import persistence

        return persistence.engine_load(space, path)

    def __repr__(self):
        return (
            f"<AlexEngine {self.name!r}: {len(self.candidates)} candidates, "
            f"{self.episodes_completed} episodes"
            + (", converged" if self.converged else "")
            + ">"
        )
