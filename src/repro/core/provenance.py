"""The exploration ledger: which state-action generated which links.

Both Monte Carlo credit assignment and the rollback optimization need to
trace a discovered link back to the state-action pair(s) that produced it:
rewards on the link flow back to ``Returns(s, a)``, and a pair that
accumulates too much negative feedback gets all its generated links rolled
back (Section 6.3).
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.state import StateAction
from repro.links import Link


class ExplorationLedger:
    """Bidirectional map between state-action pairs and generated links."""

    def __init__(self):
        self._generators_of: dict[Link, set[StateAction]] = defaultdict(set)
        self._generated_by: dict[StateAction, set[Link]] = defaultdict(set)
        self._negatives: dict[StateAction, int] = defaultdict(int)
        self._positives: dict[StateAction, int] = defaultdict(int)

    def record(self, state_action: StateAction, link: Link) -> None:
        self._generators_of[link].add(state_action)
        self._generated_by[state_action].add(link)

    def generators_of(self, link: Link) -> set[StateAction]:
        """State-action pairs that led to ``link`` (empty for initial
        candidates, which no action produced)."""
        return set(self._generators_of.get(link, ()))

    def generated_by(self, state_action: StateAction) -> set[Link]:
        return set(self._generated_by.get(state_action, ()))

    def record_negative(self, state_action: StateAction) -> int:
        """Bump and return the negative-feedback count of a pair."""
        self._negatives[state_action] += 1
        return self._negatives[state_action]

    def record_positive(self, state_action: StateAction) -> int:
        """Bump and return the positive-feedback count of a pair."""
        self._positives[state_action] += 1
        return self._positives[state_action]

    def negatives(self, state_action: StateAction) -> int:
        return self._negatives.get(state_action, 0)

    def positives(self, state_action: StateAction) -> int:
        return self._positives.get(state_action, 0)

    def negative_feedback_fraction(self, state_action: StateAction) -> float:
        """Share of feedback on this pair's generated links that was
        negative — the rollback trigger signal."""
        negatives = self._negatives.get(state_action, 0)
        positives = self._positives.get(state_action, 0)
        total = negatives + positives
        if total == 0:
            return 0.0
        return negatives / total

    def forget_pair(self, state_action: StateAction) -> set[Link]:
        """Drop a rolled-back pair's ledger entries; returns its links."""
        links = self._generated_by.pop(state_action, set())
        for link in links:
            generators = self._generators_of.get(link)
            if generators is not None:
                generators.discard(state_action)
                if not generators:
                    del self._generators_of[link]
        self._negatives.pop(state_action, None)
        self._positives.pop(state_action, None)
        return links

    def __len__(self) -> int:
        return len(self._generated_by)
