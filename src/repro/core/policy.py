"""The ε-greedy stochastic policy (Sections 4.4 and 5).

Before the first policy improvement a state has no preferred action and the
policy chooses uniformly at random (Algorithm 1 line 5, "arbitrary action").
After improvement, the greedy action carries probability ``1 − ε`` and every
action (including the greedy one) an additional ``ε / |A(s)|`` — so every
action keeps probability ≥ ε/|A(s)| > 0, guaranteeing continual exploration,
which is what makes the Monte Carlo estimates sound (Section 5).
"""

from __future__ import annotations

import random

from repro.errors import PolicyError
from repro.features.feature_set import FeatureKey
from repro.links import Link


class EpsilonGreedyPolicy:
    """Tabular stochastic policy over (link state → feature action)."""

    def __init__(self, epsilon: float):
        if not (0.0 < epsilon < 1.0):
            raise PolicyError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self._greedy: dict[Link, FeatureKey] = {}

    # ------------------------------------------------------------------ #

    def action_probabilities(
        self, state: Link, available: list[FeatureKey]
    ) -> dict[FeatureKey, float]:
        """π(s, ·) over the available actions; sums to 1."""
        if not available:
            return {}
        greedy = self._greedy.get(state)
        count = len(available)
        if greedy is None or greedy not in available:
            uniform = 1.0 / count
            return {action: uniform for action in available}
        base = self.epsilon / count
        probabilities = {action: base for action in available}
        probabilities[greedy] += 1.0 - self.epsilon
        return probabilities

    def choose(
        self, state: Link, available: list[FeatureKey], rng: random.Random
    ) -> FeatureKey:
        """Sample an action according to π(s, ·)."""
        return self.choose_with_mode(state, available, rng)[0]

    def choose_with_mode(
        self, state: Link, available: list[FeatureKey], rng: random.Random
    ) -> tuple[FeatureKey, str]:
        """Sample an action and report *how* it was chosen.

        The mode is ``"uniform"`` (no improved greedy action yet),
        ``"exploit"`` (the 1−ε greedy arm), or ``"explore"`` (the ε arm) —
        the audit trail records it so a trace replay can show why a feature
        was picked. Consumes exactly the same RNG stream as :meth:`choose`.
        """
        if not available:
            raise PolicyError(f"state {state} has no available actions")
        greedy = self._greedy.get(state)
        if greedy is None or greedy not in available:
            return rng.choice(available), "uniform"
        if rng.random() < 1.0 - self.epsilon:
            return greedy, "exploit"
        return rng.choice(available), "explore"

    def improve(self, state: Link, greedy_action: FeatureKey) -> None:
        """Policy improvement at one state: make ``greedy_action`` the
        preferred action (Algorithm 1 lines 24-33)."""
        self._greedy[state] = greedy_action

    def greedy_action(self, state: Link) -> FeatureKey | None:
        return self._greedy.get(state)

    def states(self) -> list[Link]:
        return list(self._greedy)

    def __len__(self) -> int:
        return len(self._greedy)

    def __repr__(self):
        return f"<EpsilonGreedyPolicy ε={self.epsilon}, {len(self._greedy)} improved states>"
