"""Feature distinctiveness memory.

Section 4.2's example: exploring around ``(rdf:type, rdf:type)`` returns a
large number of incorrect links because the feature "has values that do not
distinguish between entities"; ALEX "can learn that this feature is not
distinctive and avoid exploring around it in the future". The per-state
tabular policy alone cannot generalize that lesson across states, so the
engine also aggregates feedback *per feature key*: features whose generated
links attract overwhelmingly negative feedback are marked non-distinctive
and excluded from future exploration, and the per-feature average return
bootstraps the action choice at states the policy has never improved.
"""

from __future__ import annotations

from collections import defaultdict

from repro.features.feature_set import FeatureKey


class FeatureDistinctiveness:
    """Cross-state per-feature feedback aggregates."""

    def __init__(self, min_negatives: int, negative_fraction: float):
        self.min_negatives = min_negatives
        self.negative_fraction = negative_fraction
        self._negatives: dict[FeatureKey, int] = defaultdict(int)
        self._positives: dict[FeatureKey, int] = defaultdict(int)
        self._return_sum: dict[FeatureKey, float] = defaultdict(float)
        self._return_count: dict[FeatureKey, int] = defaultdict(int)

    def record(self, feature: FeatureKey, reward: float, positive: bool) -> None:
        """Attribute one feedback item on a link to the feature that
        generated the link."""
        if positive:
            self._positives[feature] += 1
        else:
            self._negatives[feature] += 1
        self._return_sum[feature] += reward
        self._return_count[feature] += 1

    def average_return(self, feature: FeatureKey) -> float | None:
        count = self._return_count.get(feature, 0)
        if count == 0:
            return None
        return self._return_sum[feature] / count

    def is_distinctive(self, feature: FeatureKey) -> bool:
        """False once the feature's feedback is overwhelmingly negative."""
        negatives = self._negatives.get(feature, 0)
        if negatives < self.min_negatives:
            return True
        total = negatives + self._positives.get(feature, 0)
        return negatives / total < self.negative_fraction

    def filter_actions(self, actions: list[FeatureKey]) -> list[FeatureKey]:
        """Drop non-distinctive features; never returns an empty list when
        the input was non-empty (if everything is poisoned, learning must
        still be able to act)."""
        kept = [action for action in actions if self.is_distinctive(action)]
        return kept if kept else actions

    def best_known(self, actions: list[FeatureKey]) -> FeatureKey | None:
        """The action with the highest known cross-state average return —
        the bootstrap for states the policy has never improved."""
        best: tuple[float, FeatureKey] | None = None
        for action in actions:
            average = self.average_return(action)
            if average is None:
                continue
            if best is None or average > best[0]:
                best = (average, action)
        return best[1] if best else None

    def negatives(self, feature: FeatureKey) -> int:
        return self._negatives.get(feature, 0)

    def positives(self, feature: FeatureKey) -> int:
        return self._positives.get(feature, 0)
