"""Saving and restoring ALEX engine state.

A deployment collects feedback over days or weeks; the learned state — the
candidate links, the policy, the action-value returns, blacklist, rollback
ledger, and distinctiveness memory — must survive restarts. The format is
plain JSON: forward-compatible, diffable, and inspectable.

The feature space itself is *not* serialized (it is deterministic given the
datasets and θ); :func:`engine_from_dict` takes a freshly built space plus
the saved state.

The stable public surface lives on :class:`~repro.core.engine.AlexEngine`:
``engine.to_dict()`` / ``AlexEngine.from_dict(space, state)`` /
``engine.save(path)`` / ``AlexEngine.load(space, path)``, which delegate to
this module's ``engine_*`` functions. The historical four-function surface
(:func:`dump_engine`, :func:`load_engine`, :func:`save_engine_file`,
:func:`load_engine_file`) survives as deprecation shims.
"""

from __future__ import annotations

import json
import warnings

from repro.core.config import AlexConfig
from repro.core.engine import AlexEngine
from repro.core.state import StateAction
from repro.errors import ConfigError
from repro.features.feature_set import FeatureKey
from repro.features.space import FeatureSpace
from repro.links import Link, LinkSet
from repro.rdf.terms import URIRef

FORMAT_VERSION = 1


def _link_to_json(link: Link) -> list[str]:
    return [link.left.value, link.right.value]


def _link_from_json(data: list[str]) -> Link:
    return Link(URIRef(data[0]), URIRef(data[1]))


def _key_to_json(key: FeatureKey) -> list[str]:
    return [key[0].value, key[1].value]


def _key_from_json(data: list[str]) -> FeatureKey:
    return (URIRef(data[0]), URIRef(data[1]))


def _state_action_to_json(state_action: StateAction) -> list:
    return [_link_to_json(state_action.state), _key_to_json(state_action.action)]


def _state_action_from_json(data: list) -> StateAction:
    return StateAction(_link_from_json(data[0]), _key_from_json(data[1]))


def engine_to_dict(engine: AlexEngine) -> dict:
    """Engine state as a JSON-serializable dict."""
    values = engine.values
    ledger = engine.ledger
    distinctiveness = engine.distinctiveness
    return {
        "format_version": FORMAT_VERSION,
        "name": engine.name,
        "config": {
            field: getattr(engine.config, field)
            for field in AlexConfig.__dataclass_fields__
        },
        "candidates": [
            {
                "link": _link_to_json(link),
                "score": engine.candidates.score(link),
            }
            for link in sorted(engine.candidates, key=lambda l: (l.left.value, l.right.value))
        ],
        "blacklist": sorted(
            (_link_to_json(link) for link in engine.blacklist), key=tuple
        ),
        "confirmed": sorted(
            (_link_to_json(link) for link in engine.confirmed), key=tuple
        ),
        "tally": [
            {"link": _link_to_json(link), "positives": tally[0], "negatives": tally[1]}
            for link, tally in sorted(
                engine._tally.items(), key=lambda kv: (kv[0].left.value, kv[0].right.value)
            )
        ],
        "returns": [
            {
                "state_action": _state_action_to_json(state_action),
                "rewards": values.returns(state_action),
            }
            for state_action in values.known_pairs()
        ],
        "policy": [
            {
                "state": _link_to_json(state),
                "greedy": _key_to_json(engine.policy.greedy_action(state)),
            }
            for state in engine.policy.states()
        ],
        "ledger": [
            {
                "state_action": _state_action_to_json(state_action),
                "links": [_link_to_json(link) for link in ledger.generated_by(state_action)],
                "negatives": ledger.negatives(state_action),
                "positives": ledger.positives(state_action),
            }
            for state_action in ledger._generated_by
        ],
        "distinctiveness": [
            {
                "feature": _key_to_json(feature),
                "negatives": distinctiveness._negatives.get(feature, 0),
                "positives": distinctiveness._positives.get(feature, 0),
                "return_sum": distinctiveness._return_sum.get(feature, 0.0),
                "return_count": distinctiveness._return_count.get(feature, 0),
            }
            for feature in set(distinctiveness._return_count)
            | set(distinctiveness._negatives)
            | set(distinctiveness._positives)
        ],
        "episodes_completed": engine.episodes_completed,
        "converged_at": engine.converged_at,
        "relaxed_converged_at": engine.relaxed_converged_at,
    }


def engine_from_dict(space: FeatureSpace, state: dict) -> AlexEngine:
    """Rebuild an engine from :func:`engine_to_dict` output and a space."""
    version = state.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigError(f"unsupported engine state format version: {version!r}")
    config = AlexConfig(**state["config"])
    candidates = LinkSet()
    for entry in state["candidates"]:
        candidates.add(_link_from_json(entry["link"]), entry.get("score"))
    engine = AlexEngine(space, candidates, config, name=state.get("name", "alex"))
    engine.blacklist = {_link_from_json(item) for item in state["blacklist"]}
    engine.confirmed = {_link_from_json(item) for item in state["confirmed"]}
    engine._tally = {
        _link_from_json(entry["link"]): [entry["positives"], entry["negatives"]]
        for entry in state.get("tally", ())
    }
    for entry in state["returns"]:
        state_action = _state_action_from_json(entry["state_action"])
        for reward in entry["rewards"]:
            engine.values.record_return(state_action, reward)
    for entry in state["policy"]:
        engine.policy.improve(_link_from_json(entry["state"]), _key_from_json(entry["greedy"]))
    for entry in state["ledger"]:
        state_action = _state_action_from_json(entry["state_action"])
        for link_data in entry["links"]:
            engine.ledger.record(state_action, _link_from_json(link_data))
        engine.ledger._negatives[state_action] = entry["negatives"]
        engine.ledger._positives[state_action] = entry["positives"]
    for entry in state.get("distinctiveness", ()):
        feature = _key_from_json(entry["feature"])
        engine.distinctiveness._negatives[feature] = entry["negatives"]
        engine.distinctiveness._positives[feature] = entry["positives"]
        engine.distinctiveness._return_sum[feature] = entry["return_sum"]
        engine.distinctiveness._return_count[feature] = entry["return_count"]
    # Episode counters: restart at the saved boundary.
    from repro.core.episode import Episode, EpisodeStats

    engine.episode_history = [
        EpisodeStats(index=i + 1) for i in range(state.get("episodes_completed", 0))
    ]
    engine.converged_at = state.get("converged_at")
    engine.relaxed_converged_at = state.get("relaxed_converged_at")
    engine._episode = Episode(index=len(engine.episode_history) + 1)
    engine._last_snapshot = engine.candidates.snapshot()
    return engine


def engine_save(engine: AlexEngine, path: str) -> None:
    """Write engine state to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(engine_to_dict(engine), handle, indent=1, sort_keys=True)


def engine_load(space: FeatureSpace, path: str) -> AlexEngine:
    """Read engine state from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        return engine_from_dict(space, json.load(handle))


# --------------------------------------------------------------------- #
# Deprecated four-function surface (pre-1.1); use the AlexEngine methods.
# --------------------------------------------------------------------- #


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def dump_engine(engine: AlexEngine) -> dict:
    """Deprecated alias of :meth:`AlexEngine.to_dict`."""
    _deprecated("dump_engine()", "AlexEngine.to_dict()")
    return engine_to_dict(engine)


def load_engine(space: FeatureSpace, state: dict) -> AlexEngine:
    """Deprecated alias of :meth:`AlexEngine.from_dict`."""
    _deprecated("load_engine()", "AlexEngine.from_dict(space, state)")
    return engine_from_dict(space, state)


def save_engine_file(engine: AlexEngine, path: str) -> None:
    """Deprecated alias of :meth:`AlexEngine.save`."""
    _deprecated("save_engine_file()", "AlexEngine.save(path)")
    engine_save(engine, path)


def load_engine_file(space: FeatureSpace, path: str) -> AlexEngine:
    """Deprecated alias of :meth:`AlexEngine.load`."""
    _deprecated("load_engine_file()", "AlexEngine.load(space, path)")
    return engine_load(space, path)
