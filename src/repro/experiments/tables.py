"""Table reproductions: the Table 1 dataset inventory."""

from __future__ import annotations

from repro.datasets.catalog import table1_stats
from repro.evaluation.report import format_table
from repro.experiments.figures import FigureReport


def table_1() -> FigureReport:
    """Dataset inventory (paper Table 1, scaled). The reproducible shape is
    the relative ordering: the multi-domain datasets dominate, the NBA
    extracts are smallest."""
    rows = [
        (stats.dataset, stats.field, stats.triples, stats.entities)
        for stats in table1_stats()
    ]
    body = format_table(("data set", "field", "triples", "entities"), rows)
    return FigureReport("Table 1", "Data sets used in the experiments", body)
