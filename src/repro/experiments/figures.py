"""One function per paper figure; each returns a printable report.

The benchmark harness (``benchmarks/``) calls these and prints their
``render()`` output — the same rows/series the paper's figures plot. Each
function's docstring states what shape the paper reports so the printed
output can be compared at a glance (EXPERIMENTS.md records the comparison).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.engine import AlexEngine
from repro.core.parallel import PartitionedAlex
from repro.evaluation.metrics import evaluate_links
from repro.evaluation.report import format_table, quality_curve_table, series_table
from repro.evaluation.tracker import QualityTracker
from repro.experiments.runner import (
    ExperimentResult,
    LinkerSpec,
    ScenarioSpec,
    get_initial_links,
    get_pair,
    get_spaces,
    run_scenario,
)
from repro.experiments.scenarios import scenario
from repro.features.partition import build_partitioned_spaces
from repro.features.space import FeatureSpace
from repro.feedback.oracle import GroundTruthOracle
from repro.feedback.session import FeedbackSession
from repro.links import LinkSet


@dataclass
class FigureReport:
    """A titled, printable experiment outcome."""

    figure_id: str
    title: str
    body: str
    results: dict[str, ExperimentResult] = field(default_factory=dict)

    def render(self) -> str:
        header = f"=== {self.figure_id}: {self.title} ==="
        return f"{header}\n{self.body}"


def _quality_figure(figure_id: str, title: str, scenario_key: str) -> FigureReport:
    from repro.evaluation.charts import quality_sparklines

    result = run_scenario(scenario(scenario_key))
    summary = (
        f"initial: {result.initial_quality}\n"
        f"final:   {result.final_quality}\n"
        f"new correct links discovered: {result.new_links_found} "
        f"(ground truth: {result.ground_truth_size})\n"
        f"episodes: {result.episodes_run}, strict convergence at "
        f"{result.converged_at}, relaxed (<5%) at {result.relaxed_converged_at}"
    )
    shape = quality_sparklines(
        result.tracker.precision_series(),
        result.tracker.recall_series(),
        result.tracker.f_measure_series(),
    )
    body = quality_curve_table(result.tracker) + "\n" + shape + "\n" + summary
    return FigureReport(figure_id, title, body, {scenario_key: result})


# --------------------------------------------------------------------- #
# Figures 2-4 and 8: quality curves
# --------------------------------------------------------------------- #


def figure_2a() -> FigureReport:
    """DBpedia-NYTimes batch. Paper: recall jumps ~0.2 → ~0.9 after one
    episode; precision dips then recovers; converges by ~14 episodes."""
    return _quality_figure("Figure 2(a)", "DBpedia - NYTimes (batch)", "fig2a")


def figure_2b() -> FigureReport:
    """DBpedia-Drugbank batch. Paper: precision starts <0.3 with recall
    >0.95; F reaches 0.99 by ~10 episodes."""
    return _quality_figure("Figure 2(b)", "DBpedia - Drugbank (batch)", "fig2b")


def figure_2c() -> FigureReport:
    """DBpedia-Lexvo batch. Paper: both measures start low; recall fixed
    within ~2 episodes, precision within ~5."""
    return _quality_figure("Figure 2(c)", "DBpedia - Lexvo (batch)", "fig2c")


def figure_3a() -> FigureReport:
    """OpenCyc-NYTimes batch (as Figure 2(a) with OpenCyc)."""
    return _quality_figure("Figure 3(a)", "OpenCyc - NYTimes (batch)", "fig3a")


def figure_3b() -> FigureReport:
    """OpenCyc-Drugbank batch (as Figure 2(b) with OpenCyc)."""
    return _quality_figure("Figure 3(b)", "OpenCyc - Drugbank (batch)", "fig3b")


def figure_3c() -> FigureReport:
    """OpenCyc-Lexvo batch (as Figure 2(c) with OpenCyc)."""
    return _quality_figure("Figure 3(c)", "OpenCyc - Lexvo (batch)", "fig3c")


def figure_4a() -> FigureReport:
    """DBpedia-SW Dogfood, episode size 10. Paper: converges in ~2 episodes."""
    return _quality_figure("Figure 4(a)", "DBpedia - Semantic Web Dogfood (domain)", "fig4a")


def figure_4b() -> FigureReport:
    """OpenCyc-SW Dogfood, episode size 10."""
    return _quality_figure("Figure 4(b)", "OpenCyc - Semantic Web Dogfood (domain)", "fig4b")


def figure_4c() -> FigureReport:
    """DBpedia(NBA)-NYTimes, episode size 10. Paper: 43 new links found."""
    return _quality_figure("Figure 4(c)", "DBpedia (NBA) - NYTimes (domain)", "fig4c")


def figure_4d() -> FigureReport:
    """OpenCyc(NBA)-NYTimes, episode size 10. Paper: 19 new links found."""
    return _quality_figure("Figure 4(d)", "OpenCyc (NBA) - NYTimes (domain)", "fig4d")


def figure_8() -> FigureReport:
    """DBpedia-OpenCyc stress test. Paper: F > 0.9 after ~20 episodes; the
    majority of correct links are discovered by ALEX, not the linker."""
    return _quality_figure("Figure 8", "DBpedia - OpenCyc (multi-domain stress)", "fig8")


# --------------------------------------------------------------------- #
# Figure 5: search-space filtering
# --------------------------------------------------------------------- #


def figure_5(n_partitions: int = 4) -> FigureReport:
    """Total possible links vs θ-filtered space vs ground truth for the
    first partition of DBpedia-NYTimes. Paper: filtering removes ~95% of
    links, and ground truth is ~0.2% of the filtered space."""
    pair = get_pair("dbpedia_nytimes")
    spaces = build_partitioned_spaces(pair.left, pair.right, n_partitions)
    first = spaces[0]
    truth_in_partition = sum(1 for link in pair.ground_truth if link in first)
    reduction = 100.0 * (1.0 - first.size / max(1, first.total_pairs_considered))
    truth_share = 100.0 * truth_in_partition / max(1, first.size)
    body = format_table(
        ("quantity", "links"),
        [
            ("total possible links (partition 1 x NYTimes)", first.total_pairs_considered),
            ("after θ-filter + blocking", first.size),
            ("ground truth reachable in partition", truth_in_partition),
        ],
    )
    body += (
        f"\nfiltering reduces the space by {reduction:.1f}% "
        f"(paper: ~95%)\nground truth is {truth_share:.2f}% of the filtered "
        f"space (paper: ~0.2%)"
    )
    report = FigureReport("Figure 5", "Search-space filtering", body)
    report.results = {  # type: ignore[assignment]
        "stats": {
            "total": first.total_pairs_considered,
            "filtered": first.size,
            "truth": truth_in_partition,
        }
    }
    return report


# --------------------------------------------------------------------- #
# Figure 6: blacklist on/off
# --------------------------------------------------------------------- #


def figure_6() -> FigureReport:
    """Blacklist ablation on DBpedia-NYTimes. Paper: slight F gain, and a
    clearly lower fraction of negative feedback per episode."""
    base = scenario("fig2a")
    with_blacklist = run_scenario(base.with_changes(key="fig6-on"))
    without_blacklist = run_scenario(base.with_changes(key="fig6-off", use_blacklist=False))
    episodes = max(
        len(with_blacklist.tracker.records), len(without_blacklist.tracker.records)
    )

    def padded(series: list[float], length: int) -> list[float]:
        return series + [series[-1]] * (length - len(series)) if series else []

    f_table = series_table(
        "episode",
        list(range(episodes)),
        {
            "F (with blacklist)": padded(with_blacklist.tracker.f_measure_series(), episodes),
            "F (without blacklist)": padded(without_blacklist.tracker.f_measure_series(), episodes),
        },
        title="(a) F-measure",
    )
    neg_with = with_blacklist.tracker.negative_feedback_series()
    neg_without = without_blacklist.tracker.negative_feedback_series()
    neg_episodes = max(len(neg_with), len(neg_without))
    neg_table = series_table(
        "episode",
        list(range(1, neg_episodes + 1)),
        {
            "% negative (with blacklist)": padded(neg_with, neg_episodes),
            "% negative (without blacklist)": padded(neg_without, neg_episodes),
        },
        title="(b) negative feedback per episode",
    )
    body = f_table + "\n\n" + neg_table
    return FigureReport(
        "Figure 6", "Effect of the blacklist", body,
        {"with": with_blacklist, "without": without_blacklist},
    )


# --------------------------------------------------------------------- #
# Figure 7: rollback on/off
# --------------------------------------------------------------------- #


def figure_7(n_partitions: int = 4) -> FigureReport:
    """Rollback ablation. Paper: without rollback precision collapses after
    early episodes and barely recovers within the 100-episode budget; with
    rollback the same workload converges quickly. Partition-level view:
    some partitions recover without rollback, others never do."""
    base = scenario("fig2a")
    without_rollback = run_scenario(
        base.with_changes(key="fig7-off", use_rollback=False, use_distinctiveness=False,
                          max_episodes=40)
    )
    with_rollback = run_scenario(base.with_changes(key="fig7-on"))

    body = quality_curve_table(
        without_rollback.tracker, title="(a) quality without rollback"
    )
    body += (
        f"\nwithout rollback: converged at {without_rollback.converged_at}, "
        f"final {without_rollback.final_quality}"
    )
    body += (
        f"\nwith rollback (Figure 2(a) default): converged at "
        f"{with_rollback.converged_at}, final {with_rollback.final_quality}\n"
    )

    # Partition-level contrast (paper's 7(b)/(c)).
    pair = get_pair(base.pair_key)
    spaces = get_spaces(base.pair_key, base.theta, n_partitions)
    initial = get_initial_links(base.pair_key, base.linker)
    config = base.with_changes(use_rollback=False, use_distinctiveness=False).config()
    partitioned = PartitionedAlex(spaces, initial, config)
    oracle = GroundTruthOracle(pair.ground_truth)
    session = FeedbackSession(partitioned, oracle, seed=base.feedback_seed)
    session.run(episode_size=base.episode_size, max_episodes=25)
    rows = []
    for engine in partitioned.engines:
        truth_here = LinkSet(link for link in pair.ground_truth if link in engine.space)
        quality = evaluate_links(engine.candidates, truth_here)
        rows.append(
            (
                engine.name,
                engine.converged_at if engine.converged_at is not None else "never",
                f"{quality.precision:.3f}",
                f"{quality.recall:.3f}",
                f"{quality.f_measure:.3f}",
            )
        )
    body += "\n" + format_table(
        ("partition (no rollback)", "converged at", "precision", "recall", "f-measure"),
        rows,
        title="(b)/(c) per-partition convergence without rollback",
    )
    return FigureReport(
        "Figure 7", "Effect of rollback", body,
        {"without": without_rollback, "with": with_rollback},
    )


# --------------------------------------------------------------------- #
# Figure 9: incorrect feedback
# --------------------------------------------------------------------- #


def figure_9() -> FigureReport:
    """10% incorrect feedback vs correct feedback on DBpedia-NYTimes.
    Paper: recall is robust; precision degrades slightly."""
    base = scenario("fig2a")
    correct = run_scenario(base.with_changes(key="fig9-correct"))
    noisy = run_scenario(
        base.with_changes(key="fig9-noisy", feedback_error_rate=0.1, max_episodes=30)
    )
    episodes = max(len(correct.tracker.records), len(noisy.tracker.records))

    def padded(series: list[float]) -> list[float]:
        return series + [series[-1]] * (episodes - len(series)) if series else []

    tables = []
    for label, correct_series, noisy_series in (
        ("(a) precision", correct.tracker.precision_series(), noisy.tracker.precision_series()),
        ("(b) recall", correct.tracker.recall_series(), noisy.tracker.recall_series()),
        ("(c) f-measure", correct.tracker.f_measure_series(), noisy.tracker.f_measure_series()),
    ):
        tables.append(
            series_table(
                "episode",
                list(range(episodes)),
                {
                    "correct feedback": padded(correct_series),
                    "10% incorrect": padded(noisy_series),
                },
                title=label,
            )
        )
    return FigureReport(
        "Figure 9", "Effect of incorrect feedback", "\n\n".join(tables),
        {"correct": correct, "noisy": noisy},
    )


# --------------------------------------------------------------------- #
# Figure 10: step-size sensitivity
# --------------------------------------------------------------------- #


def figure_10() -> FigureReport:
    """Step sizes 0.01 / 0.05 / 0.1. Paper: F barely moves (slightly better
    with larger steps), recall gaps are visible, larger steps cost more
    negative feedback and more time."""
    base = scenario("fig2a")
    results = {
        step: run_scenario(base.with_changes(key=f"fig10-{step}", step_size=step))
        for step in (0.01, 0.05, 0.1)
    }
    episodes = max(len(result.tracker.records) for result in results.values())

    def padded(series: list[float], length: int) -> list[float]:
        return series + [series[-1]] * (length - len(series)) if series else []

    f_table = series_table(
        "episode", list(range(episodes)),
        {f"F (step {step})": padded(r.tracker.f_measure_series(), episodes) for step, r in results.items()},
        title="(a) F-measure",
    )
    recall_table = series_table(
        "episode", list(range(episodes)),
        {f"R (step {step})": padded(r.tracker.recall_series(), episodes) for step, r in results.items()},
        title="(b) recall",
    )
    neg_len = max(len(r.tracker.negative_feedback_series()) for r in results.values())
    neg_table = series_table(
        "episode", list(range(1, neg_len + 1)),
        {
            f"% neg (step {step})": padded(r.tracker.negative_feedback_series(), neg_len)
            for step, r in results.items()
        },
        title="(c) negative feedback",
    )
    timing = format_table(
        ("step size", "episodes", "seconds"),
        [(step, r.episodes_run, f"{r.elapsed_seconds:.2f}") for step, r in results.items()],
        title="execution time",
    )
    body = "\n\n".join((f_table, recall_table, neg_table, timing))
    return FigureReport(
        "Figure 10", "Step-size sensitivity", body,
        {str(step): result for step, result in results.items()},
    )


# --------------------------------------------------------------------- #
# Figure 11: episode-size sensitivity
# --------------------------------------------------------------------- #


def figure_11() -> FigureReport:
    """Episode sizes 100 / 200 / 300 (paper: 500 / 1000 / 1500, scaled 1:5
    with the data). Paper: F-measures are close; larger episodes converge
    in fewer episodes."""
    base = scenario("fig2a")
    results = {
        size: run_scenario(base.with_changes(key=f"fig11-{size}", episode_size=size))
        for size in (100, 200, 300)
    }
    episodes = max(len(result.tracker.records) for result in results.values())

    def padded(series: list[float]) -> list[float]:
        return series + [series[-1]] * (episodes - len(series)) if series else []

    body = series_table(
        "episode", list(range(episodes)),
        {f"F (episode size {size})": padded(r.tracker.f_measure_series()) for size, r in results.items()},
    )
    body += "\n" + format_table(
        ("episode size", "episodes to converge (strict)", "relaxed"),
        [
            (size, r.converged_at if r.converged_at is not None else f">{r.episodes_run}",
             r.relaxed_converged_at)
            for size, r in results.items()
        ],
    )
    return FigureReport(
        "Figure 11", "Episode-size sensitivity", body,
        {str(size): result for size, result in results.items()},
    )


# --------------------------------------------------------------------- #
# Section 7.3: execution time
# --------------------------------------------------------------------- #


def execution_time() -> FigureReport:
    """Per-episode execution time, batch vs specific-domain. Paper: minutes
    per episode in batch mode, ~1.3 s per 10-item episode in domain mode —
    the batch/domain ratio is the reproducible shape."""
    batch = run_scenario(scenario("fig2a").with_changes(key="timing-batch"))
    domain = run_scenario(scenario("fig4c").with_changes(key="timing-domain"))
    rows = [
        ("batch (DBpedia-NYTimes)", batch.episodes_run,
         f"{batch.elapsed_seconds:.2f}", f"{batch.seconds_per_episode*1000:.1f}"),
        ("domain (DBpedia NBA-NYTimes)", domain.episodes_run,
         f"{domain.elapsed_seconds:.2f}", f"{domain.seconds_per_episode*1000:.1f}"),
    ]
    ratio = batch.seconds_per_episode / max(1e-9, domain.seconds_per_episode)
    body = format_table(("workload", "episodes", "total s", "ms/episode"), rows)
    body += f"\nbatch/domain per-episode ratio: {ratio:.1f}x (paper: ~320x at full scale)"
    return FigureReport(
        "Section 7.3", "Execution time", body, {"batch": batch, "domain": domain}
    )
