"""Shared experiment machinery: scenario specs and the run loop.

A :class:`ScenarioSpec` captures everything one paper experiment needs: the
dataset pair, how the initial candidate links are produced (the automatic
linker's knobs), the ALEX configuration, and the feedback setup. The runner
builds the pieces, drives a :class:`~repro.feedback.session.FeedbackSession`
to convergence, and returns the per-episode quality curve.

Pair generation, feature-space construction, and PARIS runs are cached per
process: figures share datasets, and rebuilding a space costs seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro import obs
from repro.core.config import AlexConfig
from repro.core.engine import AlexEngine
from repro.core.parallel import PartitionedAlex
from repro.datasets.catalog import load_pair
from repro.datasets.generator import DatasetPair
from repro.evaluation.metrics import Quality, evaluate_links, new_correct_links
from repro.evaluation.tracker import QualityTracker
from repro.features.partition import build_partitioned_spaces
from repro.features.space import FeatureSpace
from repro.feedback.oracle import GroundTruthOracle, NoisyOracle
from repro.feedback.session import FeedbackSession
from repro.links import LinkSet
from repro.paris.align import ParisAligner


@dataclass(frozen=True)
class LinkerSpec:
    """How the initial candidate links are produced (PARIS + threshold).

    The paper thresholds PARIS scores at 0.95; our simplified PARIS has a
    different score calibration, so each scenario picks the threshold that
    reproduces the paper's *starting quality* for that pair (see DESIGN.md).
    ``mutual_best=False`` keeps every scored pair above the threshold — the
    permissive setting behind low-precision starts. A weaker linker
    (``iterations=1``, low ``evidence_tau``) yields the both-low start of
    Figure 2(c).
    """

    score_threshold: float = 0.9
    mutual_best: bool = True
    iterations: int = 4
    evidence_tau: float = 0.8


@dataclass(frozen=True)
class ScenarioSpec:
    """One experiment: pair + linker + ALEX config + feedback setup."""

    key: str
    pair_key: str
    linker: LinkerSpec
    episode_size: int
    max_episodes: int = 30
    n_partitions: int = 1
    step_size: float = 0.05
    epsilon: float = 0.1
    theta: float = 0.3
    use_blacklist: bool = True
    use_rollback: bool = True
    use_distinctiveness: bool = True
    rollback_min_negatives: int = 5
    rollback_negative_fraction: float = 0.8
    convergence_patience: int = 1
    feedback_error_rate: float = 0.0
    seed: int = 7
    feedback_seed: int = 3

    def config(self) -> AlexConfig:
        return AlexConfig(
            episode_size=self.episode_size,
            step_size=self.step_size,
            epsilon=self.epsilon,
            theta=self.theta,
            max_episodes=self.max_episodes,
            use_blacklist=self.use_blacklist,
            use_rollback=self.use_rollback,
            use_distinctiveness=self.use_distinctiveness,
            rollback_min_negatives=self.rollback_min_negatives,
            rollback_negative_fraction=self.rollback_negative_fraction,
            convergence_patience=self.convergence_patience,
            seed=self.seed,
        )

    def with_changes(self, **changes) -> "ScenarioSpec":
        return replace(self, **changes)


@dataclass
class ExperimentResult:
    """Everything a figure needs to print its series."""

    scenario: ScenarioSpec
    tracker: QualityTracker
    initial_quality: Quality
    final_quality: Quality
    episodes_run: int
    converged_at: int | None
    relaxed_converged_at: int | None
    new_links_found: int
    ground_truth_size: int
    initial_link_count: int
    elapsed_seconds: float
    seconds_per_episode: float


# --------------------------------------------------------------------- #
# Caches (figures share pairs, spaces, and PARIS runs)
# --------------------------------------------------------------------- #

_pair_cache: dict[str, DatasetPair] = {}
_space_cache: dict[tuple, list[FeatureSpace]] = {}
_paris_cache: dict[tuple, LinkSet] = {}


def get_pair(pair_key: str) -> DatasetPair:
    if pair_key not in _pair_cache:
        _pair_cache[pair_key] = load_pair(pair_key)
    return _pair_cache[pair_key]


def get_spaces(pair_key: str, theta: float, n_partitions: int) -> list[FeatureSpace]:
    cache_key = (pair_key, theta, n_partitions)
    if cache_key not in _space_cache:
        pair = get_pair(pair_key)
        if n_partitions == 1:
            spaces = [FeatureSpace.build(pair.left, pair.right, theta)]
        else:
            spaces = build_partitioned_spaces(pair.left, pair.right, n_partitions, theta)
        _space_cache[cache_key] = spaces
    return _space_cache[cache_key]


def get_initial_links(pair_key: str, linker: LinkerSpec) -> LinkSet:
    cache_key = (pair_key, linker)
    if cache_key not in _paris_cache:
        pair = get_pair(pair_key)
        aligner = ParisAligner(
            pair.left,
            pair.right,
            evidence_tau=linker.evidence_tau,
            iterations=linker.iterations,
        )
        scored = aligner.run(mutual_best=linker.mutual_best)
        _paris_cache[cache_key] = scored.filter_by_score(linker.score_threshold)
    return _paris_cache[cache_key].copy()


def clear_caches() -> None:
    """Drop all cached pairs/spaces/linker outputs (tests use this)."""
    _pair_cache.clear()
    _space_cache.clear()
    _paris_cache.clear()


# --------------------------------------------------------------------- #
# The run loop
# --------------------------------------------------------------------- #


def run_scenario(spec: ScenarioSpec) -> ExperimentResult:
    """Build everything for ``spec`` and run ALEX to convergence."""
    pair = get_pair(spec.pair_key)
    spaces = get_spaces(spec.pair_key, spec.theta, spec.n_partitions)
    initial = get_initial_links(spec.pair_key, spec.linker)
    config = spec.config()

    if spec.n_partitions == 1:
        engine: AlexEngine | PartitionedAlex = AlexEngine(spaces[0], initial, config)
    else:
        engine = PartitionedAlex(spaces, initial, config)

    tracker = QualityTracker(pair.ground_truth)
    tracker.record_initial(engine.candidates)
    oracle = GroundTruthOracle(pair.ground_truth)
    if spec.feedback_error_rate > 0.0:
        oracle = NoisyOracle(oracle, spec.feedback_error_rate, seed=spec.feedback_seed)
    session = FeedbackSession(
        engine, oracle, seed=spec.feedback_seed, on_episode_end=tracker.on_episode_end
    )

    started = time.perf_counter()
    with obs.span("scenario"):
        episodes = session.run(episode_size=spec.episode_size, max_episodes=spec.max_episodes)
    elapsed = time.perf_counter() - started
    obs.inc("experiments.scenarios.run", scenario=spec.key)

    final_candidates = engine.candidates
    return ExperimentResult(
        scenario=spec,
        tracker=tracker,
        initial_quality=evaluate_links(initial, pair.ground_truth),
        final_quality=evaluate_links(final_candidates, pair.ground_truth),
        episodes_run=episodes,
        converged_at=engine.converged_at,
        relaxed_converged_at=engine.relaxed_converged_at,
        new_links_found=len(new_correct_links(initial, final_candidates, pair.ground_truth)),
        ground_truth_size=len(pair.ground_truth),
        initial_link_count=len(initial),
        elapsed_seconds=elapsed,
        seconds_per_episode=elapsed / max(1, episodes),
    )
