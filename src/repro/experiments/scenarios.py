"""The scenario catalog: one spec per quality figure of the paper.

Thresholds were calibrated (see DESIGN.md §2 and EXPERIMENTS.md) so the
*initial* candidate quality of each scenario matches the paper's starting
conditions: Figure 2(a) high precision / low recall, Figure 2(b) low
precision / high recall, Figure 2(c) both low, and so on. Episode sizes are
scaled 1:5 with the datasets (paper batch mode: 1000 items; ours: 100-200).
"""

from __future__ import annotations

from repro.experiments.runner import LinkerSpec, ScenarioSpec

#: The strict high-precision linker (paper: PARIS at 0.95).
_STRICT = LinkerSpec(score_threshold=0.88, mutual_best=True, iterations=4)

#: The permissive linker: every scored pair above a low bar (low precision).
_PERMISSIVE = LinkerSpec(score_threshold=0.1, mutual_best=False, iterations=3)

#: A deliberately weak linker: one fixpoint iteration, fuzzy evidence —
#: produces the both-low starting condition of Figure 2(c).
_WEAK = LinkerSpec(score_threshold=0.55, mutual_best=False, iterations=1, evidence_tau=0.6)

SCENARIOS: dict[str, ScenarioSpec] = {
    # -- Figure 2: batch mode with DBpedia ------------------------------ #
    "fig2a": ScenarioSpec(
        key="fig2a", pair_key="dbpedia_nytimes", linker=_STRICT,
        episode_size=200, max_episodes=30,
    ),
    "fig2b": ScenarioSpec(
        key="fig2b", pair_key="dbpedia_drugbank", linker=_PERMISSIVE,
        episode_size=150, max_episodes=30,
    ),
    "fig2c": ScenarioSpec(
        key="fig2c", pair_key="dbpedia_lexvo", linker=_WEAK,
        episode_size=150, max_episodes=30,
    ),
    # -- Figure 3: batch mode with OpenCyc ------------------------------- #
    "fig3a": ScenarioSpec(
        key="fig3a", pair_key="opencyc_nytimes", linker=_STRICT,
        episode_size=150, max_episodes=30,
    ),
    "fig3b": ScenarioSpec(
        key="fig3b", pair_key="opencyc_drugbank", linker=_PERMISSIVE,
        episode_size=100, max_episodes=30,
    ),
    "fig3c": ScenarioSpec(
        key="fig3c", pair_key="opencyc_lexvo", linker=_WEAK,
        episode_size=100, max_episodes=30,
    ),
    # -- Figure 4: specific domains (episode size 10) --------------------- #
    # Rollback triggers are scaled down with the episode size: at 10
    # feedback items per episode, waiting for 5 negatives on one
    # state-action means junk lingers for many episodes.
    "fig4a": ScenarioSpec(
        key="fig4a", pair_key="dbpedia_swdogfood",
        linker=LinkerSpec(score_threshold=0.7),
        episode_size=10, max_episodes=60, rollback_min_negatives=4,
        convergence_patience=2,
    ),
    "fig4b": ScenarioSpec(
        key="fig4b", pair_key="opencyc_swdogfood",
        linker=LinkerSpec(score_threshold=0.7),
        episode_size=10, max_episodes=60, rollback_min_negatives=3,
        convergence_patience=3,
    ),
    "fig4c": ScenarioSpec(
        key="fig4c", pair_key="dbpedia_nba_nytimes", linker=LinkerSpec(score_threshold=0.8),
        episode_size=10, max_episodes=60, rollback_min_negatives=3,
        convergence_patience=3,
    ),
    "fig4d": ScenarioSpec(
        key="fig4d", pair_key="opencyc_nba_nytimes", linker=LinkerSpec(score_threshold=0.8),
        episode_size=10, max_episodes=60, rollback_min_negatives=3,
        convergence_patience=3,
    ),
    # -- Figure 8 / Appendix B: the two multi-domain datasets -------------- #
    "fig8": ScenarioSpec(
        key="fig8", pair_key="dbpedia_opencyc", linker=_STRICT,
        episode_size=400, max_episodes=60,
    ),
}


def scenario(key: str) -> ScenarioSpec:
    try:
        return SCENARIOS[key]
    except KeyError:
        known = ", ".join(SCENARIOS)
        raise KeyError(f"unknown scenario {key!r}; known: {known}") from None
