"""repro — a reproduction of "ALEX: Automatic Link Exploration in Linked Data".

This module is the **stable public API facade**: everything a typical
application needs imports directly from ``repro``::

    from repro import AlexConfig, AlexEngine, FeatureSpace, load_pair, obs

Names exported here follow the deprecation policy documented in
``docs/architecture.md`` — they stay importable across minor versions, and
replaced names keep working for at least one minor release while emitting
:class:`DeprecationWarning`. Subpackages remain importable for specialised
needs:

* :mod:`repro.rdf` — RDF terms, graphs, N-Triples/Turtle IO
* :mod:`repro.sparql` — SPARQL subset over local graphs
* :mod:`repro.federation` — federated queries with sameAs link provenance
* :mod:`repro.similarity` / :mod:`repro.features` — similarity functions,
  feature sets, and the θ-filtered link space
* :mod:`repro.paris` — the automatic linker producing initial candidates
* :mod:`repro.core` — the ALEX reinforcement-learning engine
* :mod:`repro.feedback` — simulated users (oracles, sessions)
* :mod:`repro.datasets` — synthetic Table 1 dataset pairs
* :mod:`repro.evaluation` — precision/recall/F tracking
* :mod:`repro.experiments` — one function per paper table/figure
* :mod:`repro.obs` — counters, histograms, timers, spans (``repro stats``)
  and structured event tracing (:mod:`repro.obs.trace`, ``repro trace``)
"""

from repro import obs
from repro.core import (
    AlexConfig,
    AlexEngine,
    PartitionedAlex,
    WorkerPool,
    build_space_parallel,
    run_partitions_parallel,
    shared_pool,
    shutdown_shared_pool,
)
from repro.datasets import load_pair
from repro.errors import DataValidationError, QueryAnalysisError, ReproError
from repro.evaluation import QualityTracker, evaluate_links, quality_curve_table
from repro.features import FeatureSpace, build_partitioned_spaces
from repro.federation import Endpoint, FederatedEngine, FederatedExecutor
from repro.feedback import (
    FeedbackSession,
    GroundTruthOracle,
    NoisyOracle,
    QueryFeedbackSession,
)
from repro.links import Link, LinkSet
from repro.paris import paris_links
from repro.rdf import (
    DataDiagnostic,
    Graph,
    Literal,
    TermDictionary,
    Triple,
    URIRef,
    validate_dataset,
    validate_graph,
    validate_links,
)
from repro.obs import trace
from repro.sparql import (
    Diagnostic,
    PreparedQuery,
    QueryPlan,
    analyze_query,
    explain,
    parse_query,
    prepare,
)

__version__ = "1.10.0"

__all__ = [
    "AlexConfig",
    "AlexEngine",
    "DataDiagnostic",
    "DataValidationError",
    "Diagnostic",
    "Endpoint",
    "FeatureSpace",
    "FederatedEngine",
    "FederatedExecutor",
    "FeedbackSession",
    "Graph",
    "GroundTruthOracle",
    "Link",
    "LinkSet",
    "Literal",
    "NoisyOracle",
    "PartitionedAlex",
    "PreparedQuery",
    "QualityTracker",
    "QueryAnalysisError",
    "QueryFeedbackSession",
    "QueryPlan",
    "ReproError",
    "TermDictionary",
    "Triple",
    "URIRef",
    "WorkerPool",
    "__version__",
    "analyze_query",
    "build_partitioned_spaces",
    "build_space_parallel",
    "evaluate_links",
    "explain",
    "load_pair",
    "obs",
    "paris_links",
    "parse_query",
    "prepare",
    "quality_curve_table",
    "run_partitions_parallel",
    "shared_pool",
    "shutdown_shared_pool",
    "trace",
    "validate_dataset",
    "validate_graph",
    "validate_links",
]
