"""repro — a reproduction of "ALEX: Automatic Link Exploration in Linked Data".

Public API tour:

* :mod:`repro.rdf` — RDF terms, graphs, N-Triples/Turtle IO
* :mod:`repro.sparql` — SPARQL subset over local graphs
* :mod:`repro.federation` — federated queries with sameAs link provenance
* :mod:`repro.similarity` / :mod:`repro.features` — similarity functions,
  feature sets, and the θ-filtered link space
* :mod:`repro.paris` — the automatic linker producing initial candidates
* :mod:`repro.core` — the ALEX reinforcement-learning engine
* :mod:`repro.feedback` — simulated users (oracles, sessions)
* :mod:`repro.datasets` — synthetic Table 1 dataset pairs
* :mod:`repro.evaluation` — precision/recall/F tracking
* :mod:`repro.experiments` — one function per paper table/figure
"""

from repro.core import AlexConfig, AlexEngine, PartitionedAlex
from repro.errors import ReproError
from repro.features import FeatureSpace, build_partitioned_spaces
from repro.federation import Endpoint, FederatedEngine
from repro.feedback import FeedbackSession, GroundTruthOracle, NoisyOracle
from repro.links import Link, LinkSet
from repro.paris import paris_links
from repro.rdf import Graph, Literal, Triple, URIRef

__version__ = "1.0.0"

__all__ = [
    "AlexConfig",
    "AlexEngine",
    "Endpoint",
    "FeatureSpace",
    "FederatedEngine",
    "FeedbackSession",
    "Graph",
    "GroundTruthOracle",
    "Link",
    "LinkSet",
    "Literal",
    "NoisyOracle",
    "PartitionedAlex",
    "ReproError",
    "Triple",
    "URIRef",
    "__version__",
    "build_partitioned_spaces",
    "paris_links",
]
