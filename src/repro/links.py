"""Links between entities of two datasets, and sets thereof.

A :class:`Link` is a (left, right) pair of entity URIs asserted to denote the
same individual (``owl:sameAs``). :class:`LinkSet` is the mutable collection
ALEX operates on: the *candidate links*. It supports lookup from either side
(needed by federation for sameAs rewriting), carries optional scores (from
the automatic linker), and tracks additions/removals between snapshots so the
engine can measure convergence ("set of candidate links did not change").
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

from repro.rdf.graph import Graph
from repro.rdf.namespaces import OWL_SAMEAS
from repro.rdf.terms import URIRef
from repro.rdf.triples import Triple


class Link(NamedTuple):
    """An ``owl:sameAs`` assertion between one entity from each dataset."""

    left: URIRef
    right: URIRef

    def reversed(self) -> "Link":
        """The same assertion with sides swapped."""
        return Link(self.right, self.left)

    def n3(self) -> str:
        """The link as an N-Triples owl:sameAs statement."""
        return f"{self.left.n3()} {OWL_SAMEAS.n3()} {self.right.n3()} ."

    def __str__(self):
        return f"{self.left} sameAs {self.right}"


class LinkSet:
    """A set of links with per-side indexes and optional scores.

    Orientation matters: ``left`` entities come from the first dataset and
    ``right`` from the second. ``by_left``/``by_right`` return the linked
    counterparts of an entity, which is what the federated query rewriter
    consults.
    """

    def __init__(self, links: Iterable[Link] = (), name: str = ""):
        self.name = name
        self._links: set[Link] = set()
        self._by_left: dict[URIRef, set[URIRef]] = {}
        self._by_right: dict[URIRef, set[URIRef]] = {}
        self._scores: dict[Link, float] = {}
        for link in links:
            self.add(link)

    # -- mutation --------------------------------------------------------- #

    def add(self, link: Link, score: float | None = None) -> bool:
        """Add a link (optionally scored). Returns True when new."""
        is_new = link not in self._links
        if is_new:
            self._links.add(link)
            self._by_left.setdefault(link.left, set()).add(link.right)
            self._by_right.setdefault(link.right, set()).add(link.left)
        if score is not None:
            self._scores[link] = score
        return is_new

    def remove(self, link: Link) -> bool:
        """Remove a link. Returns True when it was present."""
        if link not in self._links:
            return False
        self._links.discard(link)
        self._scores.pop(link, None)
        rights = self._by_left.get(link.left)
        if rights is not None:
            rights.discard(link.right)
            if not rights:
                del self._by_left[link.left]
        lefts = self._by_right.get(link.right)
        if lefts is not None:
            lefts.discard(link.left)
            if not lefts:
                del self._by_right[link.right]
        return True

    def update(self, links: Iterable[Link]) -> int:
        """Add many links; returns how many were new."""
        return sum(1 for link in links if self.add(link))

    # -- lookup ------------------------------------------------------------ #

    def score(self, link: Link, default: float | None = None) -> float | None:
        """The linker score of ``link``, or ``default`` when unscored."""
        return self._scores.get(link, default)

    def by_left(self, entity: URIRef) -> frozenset[URIRef]:
        """Right-side counterparts linked to a left-side entity."""
        return frozenset(self._by_left.get(entity, ()))

    def by_right(self, entity: URIRef) -> frozenset[URIRef]:
        """Left-side counterparts linked to a right-side entity."""
        return frozenset(self._by_right.get(entity, ()))

    def counterparts(self, entity: URIRef) -> frozenset[URIRef]:
        """Linked entities on either side of ``entity``."""
        return self.by_left(entity) | self.by_right(entity)

    def links_of(self, entity: URIRef) -> Iterator[Link]:
        """All links that mention ``entity`` on either side."""
        for right in self._by_left.get(entity, ()):
            yield Link(entity, right)
        for left in self._by_right.get(entity, ()):
            yield Link(left, entity)

    # -- whole-set operations ----------------------------------------------- #

    def filter_by_score(self, threshold: float) -> "LinkSet":
        """New LinkSet containing only links with score ≥ ``threshold``.

        Links without a score are dropped (unknown quality).
        """
        out = LinkSet(name=self.name)
        for link in self._links:
            score = self._scores.get(link)
            if score is not None and score >= threshold:
                out.add(link, score)
        return out

    def validate(
        self,
        left: Graph | None = None,
        right: Graph | None = None,
        theta: float | None = None,
        blacklist: Iterable[Link] | None = None,
    ):
        """Link-tier static analysis of this set (cycles, asymmetric
        duplicates, one-to-many conflicts; endpoint/score/blacklist checks
        when the corresponding argument is given). Returns ordered
        :class:`~repro.rdf.validate.DataDiagnostic` records — see
        :func:`repro.rdf.validate.validate_links`."""
        from repro.rdf.validate import validate_links

        return validate_links(self, left=left, right=right, theta=theta, blacklist=blacklist)

    def snapshot(self) -> frozenset[Link]:
        """An immutable copy of the current links (convergence checks)."""
        return frozenset(self._links)

    def copy(self) -> "LinkSet":
        """A deep, independent copy (indexes and scores included)."""
        out = LinkSet(name=self.name)
        out._links = set(self._links)
        out._by_left = {k: set(v) for k, v in self._by_left.items()}
        out._by_right = {k: set(v) for k, v in self._by_right.items()}
        out._scores = dict(self._scores)
        return out

    def to_graph(self) -> Graph:
        """Render as an RDF graph of owl:sameAs triples."""
        graph = Graph(name=self.name or "links")
        for link in self._links:
            graph.add(Triple(link.left, OWL_SAMEAS, link.right))
        return graph

    @classmethod
    def from_graph(cls, graph: Graph, name: str = "") -> "LinkSet":
        """Collect all owl:sameAs triples of ``graph`` into a LinkSet."""
        out = cls(name=name or graph.name)
        for triple in graph.triples(predicate=OWL_SAMEAS):
            if isinstance(triple.subject, URIRef) and isinstance(triple.object, URIRef):
                out.add(Link(triple.subject, triple.object))
        return out

    # -- set protocol --------------------------------------------------------- #

    def __contains__(self, link: Link) -> bool:
        return link in self._links

    def __len__(self) -> int:
        return len(self._links)

    def __iter__(self) -> Iterator[Link]:
        return iter(self._links)

    def __bool__(self) -> bool:
        return bool(self._links)

    def __eq__(self, other):
        if not isinstance(other, LinkSet):
            return NotImplemented
        return self._links == other._links

    def __repr__(self):
        label = f" {self.name!r}" if self.name else ""
        return f"<LinkSet{label} with {len(self._links)} links>"


def change_fraction(before: frozenset[Link], after: frozenset[Link]) -> float:
    """Fraction of links changed between two snapshots.

    Defined as |symmetric difference| / max(1, |before|): the measure behind
    the paper's relaxed "<5% of links changed" convergence rule.
    """
    changed = len(before ^ after)
    return changed / max(1, len(before))
