"""Schema profiles for synthetic dataset pairs.

A :class:`DomainProfile` describes the attributes of one entity *kind*
(person, drug, language, …) and — crucially for ALEX — how each side of a
dataset pair names the corresponding predicate. Predicate-name divergence is
what forces the feature space to contain *pairs* of predicates rather than
identical ones, mirroring the semantic heterogeneity of real LOD datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class ValueKind(Enum):
    """How values of an attribute are generated and perturbed."""

    PERSON_NAME = "person_name"   # 'First Last' coined names
    PHRASE = "phrase"             # multi-word titles (orgs, venues, places)
    WORD = "word"                 # single coined word (drug names, languages)
    YEAR = "year"                 # calendar year
    CODE = "code"                 # identifying alphanumeric code
    CATEGORY = "category"         # small closed vocabulary (positions, types)


@dataclass(frozen=True)
class AttributeSpec:
    """One canonical attribute and its per-side predicate names."""

    key: str                      # canonical id within the profile
    kind: ValueKind
    left_name: str                # predicate local name in the left dataset
    right_name: str               # predicate local name in the right dataset
    presence_left: float = 0.95   # probability the left side materializes it
    presence_right: float = 0.95
    categories: tuple[str, ...] = ()   # for CATEGORY kinds
    identifying: bool = False     # codes that uniquely identify the entity


@dataclass(frozen=True)
class DomainProfile:
    """The attribute schema of one entity kind."""

    name: str
    attributes: tuple[AttributeSpec, ...]
    type_left: str = "Thing"      # rdf:type local name per side
    type_right: str = "Thing"

    def attribute(self, key: str) -> AttributeSpec:
        for spec in self.attributes:
            if spec.key == key:
                return spec
        raise KeyError(key)


# --------------------------------------------------------------------- #
# Profiles used by the Table 1 catalog
# --------------------------------------------------------------------- #

PERSON_PROFILE = DomainProfile(
    name="person",
    type_left="Person",
    type_right="PersonConcept",
    attributes=(
        AttributeSpec("name", ValueKind.PERSON_NAME, "label", "name", 1.0, 1.0),
        AttributeSpec("birth", ValueKind.YEAR, "birthYear", "yearOfBirth", 0.9, 0.85),
        AttributeSpec("city", ValueKind.PHRASE, "birthPlace", "placeOfBirth", 0.8, 0.7),
        AttributeSpec(
            "occupation", ValueKind.CATEGORY, "occupation", "profession", 0.85, 0.8,
            categories=("athlete", "politician", "artist", "scientist", "executive", "author"),
        ),
    ),
)

ORGANIZATION_PROFILE = DomainProfile(
    name="organization",
    type_left="Organisation",
    type_right="OrganizationConcept",
    attributes=(
        AttributeSpec("name", ValueKind.PHRASE, "label", "orgName", 1.0, 1.0),
        AttributeSpec("founded", ValueKind.YEAR, "foundingYear", "established", 0.8, 0.75),
        AttributeSpec("city", ValueKind.PHRASE, "headquarter", "location", 0.8, 0.8),
        AttributeSpec(
            "sector", ValueKind.CATEGORY, "industry", "sector", 0.8, 0.75,
            categories=("media", "technology", "education", "finance", "health", "energy"),
        ),
    ),
)

PLACE_PROFILE = DomainProfile(
    name="place",
    type_left="Place",
    type_right="GeoConcept",
    attributes=(
        AttributeSpec("name", ValueKind.PHRASE, "label", "placeName", 1.0, 1.0),
        AttributeSpec("country", ValueKind.WORD, "country", "inCountry", 0.9, 0.85),
        AttributeSpec("population", ValueKind.YEAR, "population", "inhabitants", 0.6, 0.5),
    ),
)

DRUG_PROFILE = DomainProfile(
    name="drug",
    type_left="Drug",
    type_right="ChemicalCompound",
    attributes=(
        AttributeSpec("name", ValueKind.WORD, "label", "genericName", 1.0, 1.0),
        AttributeSpec("code", ValueKind.CODE, "drugbankId", "registryNumber", 0.9, 0.9, identifying=True),
        AttributeSpec("approved", ValueKind.YEAR, "approvalYear", "yearApproved", 0.7, 0.7),
        AttributeSpec(
            "group", ValueKind.CATEGORY, "drugGroup", "category", 0.85, 0.85,
            categories=("approved", "experimental", "withdrawn", "illicit", "nutraceutical"),
        ),
    ),
)

LANGUAGE_PROFILE = DomainProfile(
    name="language",
    type_left="Language",
    type_right="HumanLanguage",
    attributes=(
        AttributeSpec("name", ValueKind.WORD, "label", "languageName", 1.0, 1.0),
        AttributeSpec("iso", ValueKind.CODE, "iso639", "langCode", 0.55, 0.5, identifying=True),
        AttributeSpec(
            "family", ValueKind.CATEGORY, "languageFamily", "family", 0.8, 0.75,
            categories=("indo-european", "sino-tibetan", "afro-asiatic", "austronesian",
                        "niger-congo", "dravidian", "uralic", "turkic"),
        ),
        AttributeSpec("speakers", ValueKind.YEAR, "speakers", "speakerCount", 0.5, 0.45),
    ),
)

PUBLICATION_PROFILE = DomainProfile(
    name="publication",
    type_left="Institution",
    type_right="AcademicBody",
    attributes=(
        AttributeSpec("name", ValueKind.PHRASE, "label", "institutionName", 1.0, 1.0),
        AttributeSpec("city", ValueKind.PHRASE, "city", "basedIn", 0.85, 0.8),
        AttributeSpec("founded", ValueKind.YEAR, "foundingYear", "established", 0.7, 0.65),
    ),
)

NBA_PROFILE = DomainProfile(
    name="nba_player",
    type_left="BasketballPlayer",
    type_right="AthleteConcept",
    attributes=(
        AttributeSpec("name", ValueKind.PERSON_NAME, "label", "playerName", 1.0, 1.0),
        AttributeSpec("birth", ValueKind.YEAR, "birthYear", "yearOfBirth", 0.95, 0.9),
        AttributeSpec("team", ValueKind.PHRASE, "team", "playsFor", 0.9, 0.85),
        AttributeSpec(
            "position", ValueKind.CATEGORY, "position", "courtPosition", 0.9, 0.85,
            categories=("guard", "forward", "center", "point-guard", "shooting-guard"),
        ),
    ),
)

#: Profile mix for the multi-domain datasets (DBpedia, OpenCyc).
MULTI_DOMAIN_PROFILES = (PERSON_PROFILE, ORGANIZATION_PROFILE, PLACE_PROFILE)
