"""Dataset-pair bundles: a directory layout for saving and reloading pairs.

A bundle directory holds everything an experiment needs::

    <dir>/left.nt           the left dataset
    <dir>/right.nt          the right dataset
    <dir>/ground_truth.nt   owl:sameAs links
    <dir>/pair.json         names and generation metadata

Bundles decouple generation from experimentation: generate once (seeded),
archive, and share; ``load_bundle`` reconstitutes the exact
:class:`~repro.datasets.generator.DatasetPair`.
"""

from __future__ import annotations

import json
import os

from repro.datasets.generator import DatasetPair, PairSpec
from repro.datasets.schema import PERSON_PROFILE
from repro.errors import DatasetError
from repro.links import LinkSet
from repro.rdf import ntriples
from repro.rdf.namespaces import Namespace

_LEFT_FILE = "left.nt"
_RIGHT_FILE = "right.nt"
_TRUTH_FILE = "ground_truth.nt"
_META_FILE = "pair.json"


def save_bundle(pair: DatasetPair, directory: str) -> None:
    """Write ``pair`` into ``directory`` (created if needed)."""
    os.makedirs(directory, exist_ok=True)
    ntriples.dump_file(pair.left, os.path.join(directory, _LEFT_FILE))
    ntriples.dump_file(pair.right, os.path.join(directory, _RIGHT_FILE))
    ntriples.dump_file(pair.ground_truth.to_graph(), os.path.join(directory, _TRUTH_FILE))
    metadata = {
        "format": 1,
        "name": pair.spec.name,
        "left_name": pair.spec.left_name,
        "right_name": pair.spec.right_name,
        "n_shared": pair.spec.n_shared,
        "n_left_only": pair.spec.n_left_only,
        "n_right_only": pair.spec.n_right_only,
        "noise_left": pair.spec.noise_left,
        "noise_right": pair.spec.noise_right,
        "seed": pair.spec.seed,
        "left_ontology": pair.left_ontology.base if pair.left_ontology else None,
        "right_ontology": pair.right_ontology.base if pair.right_ontology else None,
    }
    with open(os.path.join(directory, _META_FILE), "w", encoding="utf-8") as handle:
        json.dump(metadata, handle, indent=1, sort_keys=True)


def load_bundle(directory: str) -> DatasetPair:
    """Read a bundle written by :func:`save_bundle`."""
    meta_path = os.path.join(directory, _META_FILE)
    if not os.path.exists(meta_path):
        raise DatasetError(f"not a dataset bundle (missing {_META_FILE}): {directory!r}")
    with open(meta_path, encoding="utf-8") as handle:
        metadata = json.load(handle)
    if metadata.get("format") != 1:
        raise DatasetError(f"unsupported bundle format: {metadata.get('format')!r}")

    left = ntriples.load_file(os.path.join(directory, _LEFT_FILE), name=metadata["left_name"])
    right = ntriples.load_file(
        os.path.join(directory, _RIGHT_FILE), name=metadata["right_name"]
    )
    truth_graph = ntriples.load_file(os.path.join(directory, _TRUTH_FILE))
    ground_truth = LinkSet.from_graph(truth_graph, name=f"{metadata['name']}-ground-truth")
    if not ground_truth:
        raise DatasetError(f"bundle ground truth is empty: {directory!r}")

    spec = PairSpec(
        name=metadata["name"],
        left_name=metadata["left_name"],
        right_name=metadata["right_name"],
        profiles=(PERSON_PROFILE,),  # informational: the data is already materialized
        n_shared=metadata["n_shared"],
        n_left_only=metadata["n_left_only"],
        n_right_only=metadata["n_right_only"],
        noise_left=metadata["noise_left"],
        noise_right=metadata["noise_right"],
        seed=metadata["seed"],
    )
    return DatasetPair(
        spec=spec,
        left=left,
        right=right,
        ground_truth=ground_truth,
        left_ontology=Namespace(metadata["left_ontology"]) if metadata.get("left_ontology") else None,
        right_ontology=Namespace(metadata["right_ontology"]) if metadata.get("right_ontology") else None,
    )
