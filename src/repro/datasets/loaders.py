"""Loading externally supplied dataset pairs from N-Triples files.

Users with access to real LOD dumps (the paper's DBpedia/NYTimes/… files)
can run the same pipeline on them: two N-Triples files plus a ground-truth
file of ``owl:sameAs`` statements.
"""

from __future__ import annotations

from repro.datasets.generator import DatasetPair, PairSpec
from repro.datasets.schema import PERSON_PROFILE
from repro.errors import DatasetError
from repro.links import LinkSet
from repro.rdf import ntriples
from repro.rdf.graph import Graph


def load_pair_from_files(
    left_path: str,
    right_path: str,
    ground_truth_path: str,
    name: str = "external",
) -> DatasetPair:
    """Build a :class:`DatasetPair` from three N-Triples files.

    The ground-truth file must contain ``owl:sameAs`` triples whose subjects
    are entities of the left dataset and whose objects are entities of the
    right dataset.
    """
    left = ntriples.load_file(left_path, name=f"{name}-left")
    right = ntriples.load_file(right_path, name=f"{name}-right")
    truth_graph = ntriples.load_file(ground_truth_path, name=f"{name}-truth")
    ground_truth = LinkSet.from_graph(truth_graph, name=f"{name}-ground-truth")
    if not ground_truth:
        raise DatasetError(
            f"no owl:sameAs links found in ground truth file {ground_truth_path!r}"
        )
    _check_orientation(left, right, ground_truth)
    spec = PairSpec(
        name=name,
        left_name=left.name,
        right_name=right.name,
        profiles=(PERSON_PROFILE,),  # informational only for external data
        n_shared=len(ground_truth),
        n_left_only=0,
        n_right_only=0,
    )
    return DatasetPair(spec=spec, left=left, right=right, ground_truth=ground_truth)


def _check_orientation(left: Graph, right: Graph, ground_truth: LinkSet) -> None:
    """Fail fast when the sameAs file points the wrong way."""
    sample = next(iter(ground_truth), None)
    if sample is None:
        return
    left_subjects = set(left.entities())
    right_subjects = set(right.entities())
    if sample.left not in left_subjects and sample.left in right_subjects:
        raise DatasetError(
            "ground-truth links appear reversed: subjects belong to the right "
            "dataset; swap the files or invert the links"
        )
