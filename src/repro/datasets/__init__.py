"""Synthetic dataset pairs (Table 1 catalog) and external loaders."""

from repro.datasets.bundle import load_bundle, save_bundle
from repro.datasets.catalog import (
    DatasetStats,
    catalog_keys,
    load_pair,
    pair_spec,
    table1_stats,
)
from repro.datasets.generator import DatasetPair, PairSpec, generate_pair
from repro.datasets.loaders import load_pair_from_files
from repro.datasets.schema import (
    AttributeSpec,
    DomainProfile,
    DRUG_PROFILE,
    LANGUAGE_PROFILE,
    MULTI_DOMAIN_PROFILES,
    NBA_PROFILE,
    ORGANIZATION_PROFILE,
    PERSON_PROFILE,
    PLACE_PROFILE,
    PUBLICATION_PROFILE,
    ValueKind,
)

__all__ = [
    "AttributeSpec",
    "DatasetPair",
    "DatasetStats",
    "DomainProfile",
    "DRUG_PROFILE",
    "LANGUAGE_PROFILE",
    "MULTI_DOMAIN_PROFILES",
    "NBA_PROFILE",
    "ORGANIZATION_PROFILE",
    "PERSON_PROFILE",
    "PLACE_PROFILE",
    "PUBLICATION_PROFILE",
    "PairSpec",
    "ValueKind",
    "catalog_keys",
    "load_bundle",
    "save_bundle",
    "generate_pair",
    "load_pair",
    "load_pair_from_files",
    "pair_spec",
    "table1_stats",
]
