"""Seeded vocabulary and noise generators for synthetic RDF datasets.

Names are coined from syllables so every run gets a large, collision-light
vocabulary without shipping word lists, while still producing the token
overlap structure (shared first names, shared name stems) that makes entity
matching realistically ambiguous. Noise functions perturb values the way two
independently curated knowledge bases disagree: typos, abbreviations,
dropped or reordered tokens, format drift.
"""

from __future__ import annotations

import random
import string

_ONSETS = [
    "b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k",
    "kr", "l", "m", "n", "p", "pr", "r", "s", "sh", "st", "t", "tr", "v", "w", "z",
]
_VOWELS = ["a", "e", "i", "o", "u", "ai", "ea", "ou"]
_CODAS = ["", "n", "r", "s", "l", "m", "t", "k", "nd", "rn", "st"]


def coin_word(rng: random.Random, syllables: int = 2) -> str:
    """A pronounceable coined word with the given syllable count."""
    parts = []
    for _ in range(syllables):
        parts.append(rng.choice(_ONSETS) + rng.choice(_VOWELS) + rng.choice(_CODAS))
    return "".join(parts)


def coin_name(rng: random.Random) -> str:
    """A capitalized coined proper name, 2-3 syllables."""
    return coin_word(rng, rng.choice((2, 2, 3))).capitalize()


def coin_person_name(rng: random.Random) -> str:
    """A 'First Last' person name."""
    return f"{coin_name(rng)} {coin_name(rng)}"


def coin_code(rng: random.Random, length: int = 7) -> str:
    """An identifier-ish alphanumeric code (e.g. a drug registry number)."""
    alphabet = string.ascii_uppercase + string.digits
    return "".join(rng.choice(alphabet) for _ in range(length))


def coin_phrase(rng: random.Random, words: int = 3) -> str:
    """A multi-word title-case phrase (organization/venue names)."""
    return " ".join(coin_name(rng) for _ in range(words))


# --------------------------------------------------------------------- #
# Noise
# --------------------------------------------------------------------- #


def typo(rng: random.Random, text: str, edits: int = 1) -> str:
    """Apply ``edits`` random character-level edits (swap/drop/replace)."""
    chars = list(text)
    for _ in range(edits):
        if len(chars) < 2:
            break
        position = rng.randrange(len(chars) - 1)
        operation = rng.random()
        if operation < 0.34:
            chars[position], chars[position + 1] = chars[position + 1], chars[position]
        elif operation < 0.67:
            del chars[position]
        else:
            chars[position] = rng.choice(string.ascii_lowercase)
    return "".join(chars)


def abbreviate_token(rng: random.Random, text: str) -> str:
    """Abbreviate one token to its initial ('Kevin Durant' → 'K. Durant')."""
    tokens = text.split()
    if len(tokens) < 2:
        return text
    position = rng.randrange(len(tokens))
    tokens[position] = tokens[position][0].upper() + "."
    return " ".join(tokens)


def drop_token(rng: random.Random, text: str) -> str:
    """Drop one token of a multi-token value."""
    tokens = text.split()
    if len(tokens) < 2:
        return text
    del tokens[rng.randrange(len(tokens))]
    return " ".join(tokens)


def reorder_tokens(rng: random.Random, text: str) -> str:
    """Swap two tokens ('James LeBron' style inversions)."""
    tokens = text.split()
    if len(tokens) < 2:
        return text
    i = rng.randrange(len(tokens) - 1)
    tokens[i], tokens[i + 1] = tokens[i + 1], tokens[i]
    return " ".join(tokens)


def perturb_name(rng: random.Random, text: str, strength: float) -> str:
    """Apply name-style noise scaled by ``strength`` in [0, 1].

    At low strength the result is a near-duplicate (one typo); higher
    strengths mix in abbreviation, token dropping, and reordering — the
    kinds of differences seen between, e.g., DBpedia and NYTimes labels
    for the same person.
    """
    result = text
    if rng.random() < strength:
        result = typo(rng, result, edits=1 + (rng.random() < strength))
    if rng.random() < strength * 0.6:
        result = abbreviate_token(rng, result)
    if rng.random() < strength * 0.4:
        result = reorder_tokens(rng, result)
    if rng.random() < strength * 0.3:
        result = drop_token(rng, result)
    return result if result.strip() else text


def perturb_year(rng: random.Random, year: int, strength: float) -> int:
    """Off-by-a-little year noise (transcription slips)."""
    if rng.random() < strength * 0.5:
        return year + rng.choice((-2, -1, 1, 2))
    return year


def heavy_mutation(rng: random.Random, text: str) -> str:
    """A strong mutation used to coin *distractor* names that share tokens
    with a real name but denote someone else ('LeBron Jameson')."""
    tokens = text.split()
    if tokens and rng.random() < 0.7:
        position = rng.randrange(len(tokens))
        if rng.random() < 0.5:
            tokens[position] = tokens[position] + coin_word(rng, 1)
        else:
            tokens[position] = coin_name(rng)
        return " ".join(tokens)
    return typo(rng, text, edits=3)
