"""Synthetic paired-dataset generator with known ground truth.

This is the stand-in for the paper's LOD dumps (see DESIGN.md §
"Substitutions"). From one seeded *world* of canonical entities it derives
two RDF datasets that describe overlapping subsets of that world through
different schemas, different namespaces, and independently noisy values —
plus *distractor* entities unique to each side, half of which are
near-duplicates of real entities (the confusable mass that makes linking
hard and gives ALEX incorrect links to learn from).

Properties deliberately reproduced:

* correct pairs have high-but-not-exact feature scores (noise spreads the
  name-similarity of true pairs over ~[0.75, 1.0], so threshold linkers
  miss some and range exploration finds them);
* shared *pool* values (cities, teams) make some features non-identifying,
  so the choice of exploration feature matters — the learning problem;
* ``rdf:type`` is constant per kind, creating the paper's example of a
  worthless exploration feature;
* identifying codes give PARIS high-precision evidence on the pairs where
  both sides kept the code.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field

from repro.datasets.schema import AttributeSpec, DomainProfile, ValueKind
from repro.datasets.vocab import (
    coin_code,
    coin_name,
    coin_person_name,
    coin_phrase,
    coin_word,
    heavy_mutation,
    perturb_name,
    perturb_year,
    typo,
)
from repro.errors import DatasetError
from repro.links import Link, LinkSet
from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF_TYPE, Namespace
from repro.rdf.terms import Literal, URIRef, XSD_INTEGER
from repro.rdf.triples import Triple


@dataclass(frozen=True)
class PairSpec:
    """Recipe for one dataset pair."""

    name: str
    left_name: str
    right_name: str
    profiles: tuple[DomainProfile, ...]
    n_shared: int
    n_left_only: int
    n_right_only: int
    noise_left: float = 0.1
    noise_right: float = 0.3
    distractor_fraction: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.n_shared < 1:
            raise DatasetError(f"n_shared must be >= 1, got {self.n_shared}")
        if not self.profiles:
            raise DatasetError("at least one profile is required")
        for noise in (self.noise_left, self.noise_right):
            if not (0.0 <= noise <= 1.0):
                raise DatasetError(f"noise must be in [0, 1], got {noise}")


@dataclass
class DatasetPair:
    """A generated pair: two graphs plus the ground-truth links."""

    spec: PairSpec
    left: Graph
    right: Graph
    ground_truth: LinkSet
    left_ontology: Namespace = field(default=None)  # type: ignore[assignment]
    right_ontology: Namespace = field(default=None)  # type: ignore[assignment]

    @property
    def name(self) -> str:
        return self.spec.name


@dataclass
class _WorldEntity:
    """One canonical individual with its attribute values."""

    index: int
    profile: DomainProfile
    values: dict[str, object]


_SLUG_RE = re.compile(r"[^A-Za-z0-9]+")


def _slug(text: str, index: int) -> str:
    cleaned = _SLUG_RE.sub("_", text).strip("_") or "entity"
    return f"{cleaned}_{index}"


class _PairGenerator:
    def __init__(self, spec: PairSpec):
        self.spec = spec
        self.rng = random.Random(spec.seed)
        #: shared value pools so phrase attributes repeat across entities
        #: (non-identifying features). Pools scale with the world so a pool
        #: value is shared by a handful of entities — enough to make the
        #: feature non-identifying, not so many that the θ-filtered space
        #: drowns in coincidental pairs.
        pool_size = max(10, spec.n_shared // 3)
        self._phrase_pools: dict[str, list[str]] = {}
        self._pool_size = pool_size
        self._word_pool = [coin_word(self.rng, 2) for _ in range(pool_size)]

    # -- canonical world -------------------------------------------------- #

    def _phrase_pool(self, key: str) -> list[str]:
        pool = self._phrase_pools.get(key)
        if pool is None:
            pool = [coin_phrase(self.rng, self.rng.choice((2, 2, 3))) for _ in range(self._pool_size)]
            self._phrase_pools[key] = pool
        return pool

    def _canonical_value(self, spec: AttributeSpec):
        kind = spec.kind
        if kind is ValueKind.PERSON_NAME:
            return coin_person_name(self.rng)
        if kind is ValueKind.PHRASE:
            if spec.key == "name":
                return coin_phrase(self.rng, self.rng.choice((2, 3)))
            return self.rng.choice(self._phrase_pool(spec.key))
        if kind is ValueKind.WORD:
            if spec.key == "name":
                return coin_word(self.rng, self.rng.choice((2, 3))).capitalize()
            return self.rng.choice(self._word_pool)
        if kind is ValueKind.YEAR:
            return self.rng.randrange(1900, 2015)
        if kind is ValueKind.CODE:
            return coin_code(self.rng)
        if kind is ValueKind.CATEGORY:
            return self.rng.choice(spec.categories)
        raise DatasetError(f"unknown value kind: {kind}")

    def _make_world(self, count: int, start_index: int = 0) -> list[_WorldEntity]:
        world = []
        profiles = self.spec.profiles
        for offset in range(count):
            profile = profiles[offset % len(profiles)]
            values = {spec.key: self._canonical_value(spec) for spec in profile.attributes}
            world.append(_WorldEntity(start_index + offset, profile, values))
        return world

    def _make_distractors(self, count: int, base_world: list[_WorldEntity], start_index: int) -> list[_WorldEntity]:
        """Side-only entities: a mix of mutated near-duplicates and fresh
        randoms, per ``distractor_fraction``."""
        out = []
        for offset in range(count):
            index = start_index + offset
            if base_world and self.rng.random() < self.spec.distractor_fraction:
                template = self.rng.choice(base_world)
                values = dict(template.values)
                for spec in template.profile.attributes:
                    value = values[spec.key]
                    if isinstance(value, str) and spec.kind in (
                        ValueKind.PERSON_NAME, ValueKind.PHRASE, ValueKind.WORD
                    ):
                        values[spec.key] = heavy_mutation(self.rng, value)
                    elif spec.kind is ValueKind.YEAR:
                        values[spec.key] = value + self.rng.randrange(-15, 16)  # type: ignore[operator]
                    elif spec.kind is ValueKind.CODE:
                        values[spec.key] = coin_code(self.rng)
                out.append(_WorldEntity(index, template.profile, values))
            else:
                profile = self.rng.choice(self.spec.profiles)
                values = {spec.key: self._canonical_value(spec) for spec in profile.attributes}
                out.append(_WorldEntity(index, profile, values))
        return out

    # -- rendering one side ------------------------------------------------- #

    def _noisy_value(self, spec: AttributeSpec, value, noise: float):
        if isinstance(value, int) and spec.kind is ValueKind.YEAR:
            return perturb_year(self.rng, value, noise)
        if spec.kind is ValueKind.CODE:
            if self.rng.random() < noise * 0.2:
                return typo(self.rng, str(value), edits=1)
            return value
        if spec.kind is ValueKind.CATEGORY:
            if self.rng.random() < noise * 0.3:
                return self.rng.choice(spec.categories)
            return value
        if isinstance(value, str):
            return perturb_name(self.rng, value, noise)
        return value

    def _render(
        self,
        world: list[_WorldEntity],
        side: str,
        dataset_name: str,
        noise: float,
    ) -> tuple[Graph, dict[int, URIRef]]:
        resource_ns = Namespace(f"http://{dataset_name}.example.org/resource/")
        ontology_ns = Namespace(f"http://{dataset_name}.example.org/ontology/")
        graph = Graph(name=dataset_name)
        uris: dict[int, URIRef] = {}
        for entity in world:
            display = str(entity.values.get("name", f"entity {entity.index}"))
            uri = resource_ns.term(_slug(display, entity.index))
            uris[entity.index] = uri
            type_name = (
                entity.profile.type_left if side == "left" else entity.profile.type_right
            )
            graph.add(Triple(uri, RDF_TYPE, ontology_ns.term(type_name)))
            for spec in entity.profile.attributes:
                presence = spec.presence_left if side == "left" else spec.presence_right
                if self.rng.random() > presence:
                    continue
                predicate_name = spec.left_name if side == "left" else spec.right_name
                value = self._noisy_value(spec, entity.values[spec.key], noise)
                if isinstance(value, int):
                    literal = Literal(str(value), datatype=XSD_INTEGER)
                else:
                    literal = Literal(str(value))
                graph.add(Triple(uri, ontology_ns.term(predicate_name), literal))
        return graph, uris

    # -- assembly ---------------------------------------------------------- #

    def generate(self) -> DatasetPair:
        spec = self.spec
        shared = self._make_world(spec.n_shared)
        left_only = self._make_distractors(spec.n_left_only, shared, start_index=spec.n_shared)
        right_only = self._make_distractors(
            spec.n_right_only, shared, start_index=spec.n_shared + spec.n_left_only
        )
        left_graph, left_uris = self._render(
            shared + left_only, "left", spec.left_name, spec.noise_left
        )
        right_graph, right_uris = self._render(
            shared + right_only, "right", spec.right_name, spec.noise_right
        )
        ground_truth = LinkSet(name=f"{spec.name}-ground-truth")
        for entity in shared:
            ground_truth.add(Link(left_uris[entity.index], right_uris[entity.index]))
        pair = DatasetPair(
            spec=spec,
            left=left_graph,
            right=right_graph,
            ground_truth=ground_truth,
            left_ontology=Namespace(f"http://{spec.left_name}.example.org/ontology/"),
            right_ontology=Namespace(f"http://{spec.right_name}.example.org/ontology/"),
        )
        return pair


def generate_pair(spec: PairSpec) -> DatasetPair:
    """Generate a dataset pair from a spec; fully determined by the seed."""
    return _PairGenerator(spec).generate()
