"""The dataset-pair catalog: Table 1's pairs at laptop scale.

Every experiment in the paper links one of the two multi-domain datasets
(DBpedia, OpenCyc) to a domain dataset (NYTimes, Drugbank, Lexvo, Semantic
Web Dogfood, NBA extracts), plus the DBpedia-OpenCyc stress pair. Each
catalog entry generates a synthetic pair whose *difficulty profile* mirrors
the paper's observation for that pair:

* DBpedia-NYTimes — heterogeneous and noisy: the automatic linker finds
  links with good precision but poor recall (Figure 2a's start);
* DBpedia-Drugbank — clean identifying codes: near-perfect recall is easy,
  and the low-precision start of Figure 2(b) is produced by thresholding
  PARIS permissively (see ``repro.experiments``);
* DBpedia-Lexvo — very noisy: both measures start low;
* the OpenCyc variants are smaller versions of the same profiles;
* the specific-domain pairs (Dogfood, NBA) have small ground truths like
  the paper's 461/110/93/35-link experiments.

Sizes are scaled down ~30-100× from Table 1 so every figure regenerates in
seconds; the ground-truth link counts keep the paper's relative ordering
(NYTimes pairs largest, NBA pairs smallest, DBpedia-OpenCyc the maximum).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.generator import DatasetPair, PairSpec, generate_pair
from repro.datasets.schema import (
    DRUG_PROFILE,
    LANGUAGE_PROFILE,
    MULTI_DOMAIN_PROFILES,
    NBA_PROFILE,
    PUBLICATION_PROFILE,
)
from repro.errors import DatasetError

_CATALOG: dict[str, PairSpec] = {
    "dbpedia_nytimes": PairSpec(
        name="dbpedia_nytimes",
        left_name="dbpedia",
        right_name="nytimes",
        profiles=MULTI_DOMAIN_PROFILES,
        n_shared=200,
        n_left_only=240,
        n_right_only=120,
        noise_left=0.12,
        noise_right=0.42,
        seed=11,
    ),
    "dbpedia_drugbank": PairSpec(
        name="dbpedia_drugbank",
        left_name="dbpedia",
        right_name="drugbank",
        profiles=(DRUG_PROFILE,),
        n_shared=120,
        n_left_only=170,
        n_right_only=80,
        noise_left=0.05,
        noise_right=0.15,
        seed=23,
    ),
    "dbpedia_lexvo": PairSpec(
        name="dbpedia_lexvo",
        left_name="dbpedia",
        right_name="lexvo",
        profiles=(LANGUAGE_PROFILE,),
        n_shared=130,
        n_left_only=190,
        n_right_only=90,
        noise_left=0.25,
        noise_right=0.5,
        seed=37,
    ),
    "opencyc_nytimes": PairSpec(
        name="opencyc_nytimes",
        left_name="opencyc",
        right_name="nytimes",
        profiles=MULTI_DOMAIN_PROFILES,
        n_shared=140,
        n_left_only=110,
        n_right_only=100,
        noise_left=0.15,
        noise_right=0.4,
        seed=41,
    ),
    "opencyc_drugbank": PairSpec(
        name="opencyc_drugbank",
        left_name="opencyc",
        right_name="drugbank",
        profiles=(DRUG_PROFILE,),
        n_shared=60,
        n_left_only=80,
        n_right_only=50,
        noise_left=0.05,
        noise_right=0.15,
        seed=43,
    ),
    "opencyc_lexvo": PairSpec(
        name="opencyc_lexvo",
        left_name="opencyc",
        right_name="lexvo",
        profiles=(LANGUAGE_PROFILE,),
        n_shared=50,
        n_left_only=70,
        n_right_only=50,
        noise_left=0.25,
        noise_right=0.45,
        seed=47,
    ),
    "dbpedia_swdogfood": PairSpec(
        name="dbpedia_swdogfood",
        left_name="dbpedia",
        right_name="swdogfood",
        profiles=(PUBLICATION_PROFILE,),
        n_shared=60,
        n_left_only=140,
        n_right_only=60,
        noise_left=0.1,
        noise_right=0.3,
        seed=53,
    ),
    "opencyc_swdogfood": PairSpec(
        name="opencyc_swdogfood",
        left_name="opencyc",
        right_name="swdogfood",
        profiles=(PUBLICATION_PROFILE,),
        n_shared=30,
        n_left_only=60,
        n_right_only=40,
        noise_left=0.1,
        noise_right=0.3,
        seed=59,
    ),
    "dbpedia_nba_nytimes": PairSpec(
        name="dbpedia_nba_nytimes",
        left_name="dbpedia-nba",
        right_name="nytimes",
        profiles=(NBA_PROFILE,),
        n_shared=45,
        n_left_only=80,
        n_right_only=40,
        noise_left=0.1,
        noise_right=0.3,
        seed=61,
    ),
    "opencyc_nba_nytimes": PairSpec(
        name="opencyc_nba_nytimes",
        left_name="opencyc-nba",
        right_name="nytimes",
        profiles=(NBA_PROFILE,),
        n_shared=20,
        n_left_only=35,
        n_right_only=25,
        noise_left=0.1,
        noise_right=0.3,
        seed=67,
    ),
    "dbpedia_opencyc": PairSpec(
        name="dbpedia_opencyc",
        left_name="dbpedia",
        right_name="opencyc",
        profiles=MULTI_DOMAIN_PROFILES,
        n_shared=300,
        n_left_only=260,
        n_right_only=200,
        noise_left=0.18,
        noise_right=0.35,
        seed=71,
    ),
}


def catalog_keys() -> list[str]:
    """All pair names, in a stable order."""
    return list(_CATALOG)


def pair_spec(key: str) -> PairSpec:
    try:
        return _CATALOG[key]
    except KeyError:
        known = ", ".join(_CATALOG)
        raise DatasetError(f"unknown dataset pair {key!r}; known: {known}") from None


def load_pair(key: str, seed: int | None = None) -> DatasetPair:
    """Generate a catalog pair (optionally overriding the seed)."""
    spec = pair_spec(key)
    if seed is not None:
        spec = PairSpec(**{**spec.__dict__, "seed": seed})
    return generate_pair(spec)


@dataclass(frozen=True)
class DatasetStats:
    """One row of the Table 1 reproduction."""

    dataset: str
    field: str
    triples: int
    entities: int


def table1_stats() -> list[DatasetStats]:
    """Per-dataset statistics mirroring Table 1's inventory.

    Datasets appearing in several pairs are reported from their largest
    generated instance, matching how Table 1 lists each dataset once.
    """
    field_of = {
        "dbpedia": "Multi-domain",
        "opencyc": "Multi-domain",
        "nytimes": "Media",
        "drugbank": "Life Sciences",
        "lexvo": "Linguistics",
        "swdogfood": "Publications",
        "dbpedia-nba": "Basketball Players",
        "opencyc-nba": "Basketball Players",
    }
    best: dict[str, DatasetStats] = {}
    for key in catalog_keys():
        pair = load_pair(key)
        for graph, dataset_name in ((pair.left, pair.spec.left_name), (pair.right, pair.spec.right_name)):
            entity_count = sum(1 for _ in graph.entities())
            stats = DatasetStats(
                dataset=dataset_name,
                field=field_of.get(dataset_name, "Unknown"),
                triples=len(graph),
                entities=entity_count,
            )
            current = best.get(dataset_name)
            if current is None or stats.triples > current.triples:
                best[dataset_name] = stats
    return sorted(best.values(), key=lambda s: -s.triples)
