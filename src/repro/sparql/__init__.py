"""A practical SPARQL subset: parser, static analyzer, and evaluator."""

from repro.sparql.aggregates import Aggregate
from repro.sparql.analysis import CODES, Diagnostic, analyze_query, check_query
from repro.sparql.ast import (
    AskQuery,
    BGP,
    ConstructQuery,
    Filter,
    GroupGraphPattern,
    OptionalPattern,
    SelectQuery,
    TriplePattern,
    UnionPattern,
    Var,
)
from repro.sparql.eval import (
    EvalObserver,
    QueryResult,
    evaluate_ask,
    evaluate_construct,
    evaluate_select,
    query,
)
from repro.sparql.explain import PLAN_SCHEMA, PlanNode, QueryPlan, explain
from repro.sparql.parser import parse_query
from repro.sparql.prepared import PreparedQuery, clear_plan_cache, prepare

__all__ = [
    "Aggregate",
    "AskQuery",
    "BGP",
    "CODES",
    "ConstructQuery",
    "Diagnostic",
    "EvalObserver",
    "Filter",
    "GroupGraphPattern",
    "OptionalPattern",
    "PLAN_SCHEMA",
    "PlanNode",
    "PreparedQuery",
    "QueryPlan",
    "QueryResult",
    "SelectQuery",
    "TriplePattern",
    "UnionPattern",
    "Var",
    "analyze_query",
    "check_query",
    "clear_plan_cache",
    "evaluate_ask",
    "evaluate_construct",
    "evaluate_select",
    "explain",
    "parse_query",
    "prepare",
    "query",
]
