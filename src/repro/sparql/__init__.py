"""A practical SPARQL subset: parser, static analyzer, and evaluator."""

from repro.sparql.aggregates import Aggregate
from repro.sparql.analysis import CODES, Diagnostic, analyze_query, check_query
from repro.sparql.ast import (
    AskQuery,
    BGP,
    ConstructQuery,
    Filter,
    GroupGraphPattern,
    OptionalPattern,
    SelectQuery,
    TriplePattern,
    UnionPattern,
    Var,
)
from repro.sparql.eval import (
    QueryResult,
    evaluate_ask,
    evaluate_construct,
    evaluate_select,
    query,
)
from repro.sparql.parser import parse_query

__all__ = [
    "Aggregate",
    "AskQuery",
    "BGP",
    "CODES",
    "ConstructQuery",
    "Diagnostic",
    "Filter",
    "GroupGraphPattern",
    "OptionalPattern",
    "QueryResult",
    "SelectQuery",
    "TriplePattern",
    "UnionPattern",
    "Var",
    "analyze_query",
    "check_query",
    "evaluate_ask",
    "evaluate_construct",
    "evaluate_select",
    "parse_query",
    "query",
]
