"""Join-order optimization for basic graph patterns.

The evaluator joins BGP patterns left to right; a poorly ordered query
(e.g. an unselective pattern first) explodes the intermediate solution set.
This optimizer greedily reorders patterns by estimated cardinality against
the actual graph statistics, always preferring patterns connected to the
already-joined prefix (avoiding cartesian products), exactly the classic
heuristic of SPARQL engines.

Cardinality estimates:

* fully bound pattern → 1
* bound (s, p) → #objects of (s, p)
* bound (p, o) → #subjects of (p, o)
* bound p only → #triples with p
* bound s only → #triples of s
* otherwise → graph size

Estimates use the store's indexes directly, so costing is cheap.
"""

from __future__ import annotations

from repro.rdf.graph import Graph
from repro.sparql.ast import BGP, TriplePattern, Var
from repro.sparql.paths import PathExpr


def estimate_cardinality(graph: Graph, pattern: TriplePattern, bound_vars: set[Var]) -> float:
    """Estimated number of matches of ``pattern`` given ``bound_vars``.

    Variables already bound by earlier patterns count as bound positions
    with unknown values; they are charged a selectivity discount rather
    than an exact count.
    """
    def state(position) -> str:
        if isinstance(position, Var):
            return "bound-var" if position in bound_vars else "free"
        if isinstance(position, PathExpr):
            return "path"
        return "const"

    s, p, o = state(pattern.subject), state(pattern.predicate), state(pattern.object)

    if p == "path":
        # paths can traverse the whole graph; assume expensive
        base = float(len(graph))
    elif p == "const":
        base = float(graph.count(predicate=pattern.predicate))
    else:
        base = float(len(graph))

    if s == "const" and p == "const" and o == "const":
        return 1.0
    if s == "const" and p == "const":
        return float(graph.count(pattern.subject, pattern.predicate))
    if p == "const" and o == "const":
        return float(graph.count(predicate=pattern.predicate, object=pattern.object))
    if s == "const":
        return float(graph.count(subject=pattern.subject))

    # bound variables narrow the result roughly like constants, but we
    # cannot count them exactly before execution; discount heuristically.
    discount = 1.0
    for position_state in (s, o):
        if position_state == "bound-var":
            discount *= 0.1
    return max(1.0, base * discount)


def reorder_bgp(graph: Graph, bgp: BGP, bound: set[Var] | None = None) -> BGP:
    """Greedy selectivity-first, connectivity-preserving pattern order.

    ``bound`` seeds the set of variables already bound *before* this BGP
    runs — variables from the enclosing group when the BGP sits inside an
    OPTIONAL or a nested group. Seeding matters: a pattern sharing a bound
    variable is a selective probe, not a scan, and treating it as unbound
    can order a cross product first.
    """
    remaining = list(bgp.patterns)
    if len(remaining) <= 1:
        return BGP(list(remaining))
    ordered: list[TriplePattern] = []
    bound = set(bound) if bound else set()
    while remaining:
        connected = [p for p in remaining if p.variables() & bound] if bound else remaining
        pool = connected if connected else remaining
        best = min(
            pool,
            key=lambda p: (estimate_cardinality(graph, p, bound), str(p)),
        )
        remaining.remove(best)
        ordered.append(best)
        bound |= best.variables()
    return BGP(ordered)
