"""Aggregation for the SPARQL subset: GROUP BY + COUNT/SUM/AVG/MIN/MAX/SAMPLE.

The evaluator groups solutions by the GROUP BY keys and computes each
projected aggregate per group. Used by the examples to report link/answer
statistics, and by anyone adopting the library as a small SPARQL engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryEvaluationError
from repro.rdf.terms import Literal, Term, XSD_DOUBLE, XSD_INTEGER
from repro.sparql.ast import Var

#: A solution mapping (kept structural here to avoid a circular import with
#: repro.sparql.eval, which imports the parser, which imports this module).
Solution = dict[Var, Term]

AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX", "SAMPLE"})


@dataclass(frozen=True)
class Aggregate:
    """One projected aggregate: ``(COUNT(DISTINCT ?x) AS ?n)``.

    ``var`` is None for ``COUNT(*)``.
    """

    function: str  # upper-cased member of AGGREGATE_NAMES
    var: Var | None
    alias: Var
    distinct: bool = False

    def __post_init__(self):
        if self.function not in AGGREGATE_NAMES:
            raise QueryEvaluationError(f"unknown aggregate {self.function}")
        if self.var is None and self.function != "COUNT":
            raise QueryEvaluationError(f"{self.function} requires a variable argument")


def _numeric_value(term: Term) -> float:
    if isinstance(term, Literal):
        value = term.to_python()
        if isinstance(value, bool):
            raise QueryEvaluationError("cannot aggregate booleans numerically")
        if isinstance(value, (int, float)):
            return float(value)
    raise QueryEvaluationError(f"non-numeric value in numeric aggregate: {term!r}")


def _group_values(solutions: list[Solution], var: Var, distinct: bool) -> list[Term]:
    values = [sol[var] for sol in solutions if var in sol]
    if distinct:
        seen: set[Term] = set()
        unique = []
        for value in values:
            if value not in seen:
                seen.add(value)
                unique.append(value)
        return unique
    return values


def evaluate_aggregate(aggregate: Aggregate, solutions: list[Solution]) -> Term | None:
    """Compute one aggregate over a group of solutions.

    Returns None (an unbound result) for empty-input MIN/MAX/AVG/SUM/SAMPLE,
    matching SPARQL's error-as-unbound behaviour; COUNT of nothing is 0.
    """
    if aggregate.function == "COUNT":
        if aggregate.var is None:
            count = len(solutions)
        else:
            count = len(_group_values(solutions, aggregate.var, aggregate.distinct))
        return Literal(str(count), datatype=XSD_INTEGER)

    values = _group_values(solutions, aggregate.var, aggregate.distinct)
    if not values:
        return None
    if aggregate.function == "SAMPLE":
        return values[0]
    if aggregate.function in ("MIN", "MAX"):
        keyed = sorted(values, key=_order_key)
        return keyed[0] if aggregate.function == "MIN" else keyed[-1]
    numbers = [_numeric_value(value) for value in values]
    if aggregate.function == "SUM":
        return _number_literal(sum(numbers))
    if aggregate.function == "AVG":
        return _number_literal(sum(numbers) / len(numbers))
    raise QueryEvaluationError(f"unhandled aggregate {aggregate.function}")


def _number_literal(value: float) -> Literal:
    if float(value).is_integer():
        return Literal(str(int(value)), datatype=XSD_INTEGER)
    return Literal(repr(value), datatype=XSD_DOUBLE)


def _order_key(term: Term):
    if isinstance(term, Literal):
        python = term.to_python()
        if isinstance(python, (int, float)) and not isinstance(python, bool):
            return (0, float(python), "")
        return (1, 0.0, str(python))
    return (2, 0.0, str(term))


def group_solutions(
    solutions: list[Solution], group_by: list[Var]
) -> list[tuple[Solution, list[Solution]]]:
    """Partition solutions by their GROUP BY key bindings.

    Returns (key bindings, member solutions) pairs in first-seen order.
    With an empty ``group_by`` the whole input forms one group (the implicit
    group of an aggregate-only SELECT).
    """
    if not group_by:
        return [({}, solutions)]
    groups: dict[tuple, tuple[Solution, list[Solution]]] = {}
    order: list[tuple] = []
    for solution in solutions:
        key = tuple(
            solution.get(var).n3() if solution.get(var) is not None else None
            for var in group_by
        )
        if key not in groups:
            bindings = {var: solution[var] for var in group_by if var in solution}
            groups[key] = (bindings, [])
            order.append(key)
        groups[key][1].append(solution)
    return [groups[key] for key in order]
