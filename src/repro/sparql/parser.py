"""Recursive-descent parser for the SPARQL subset.

Grammar (informally)::

    Query        := Prologue (SelectQuery | AskQuery)
    Prologue     := ("PREFIX" PNAME ":" IRIREF)*
    SelectQuery  := "SELECT" "DISTINCT"? (Var+ | "*") "WHERE"? Group Modifiers
    AskQuery     := "ASK" Group
    Group        := "{" (TriplesBlock | Filter | Optional | Union | Group)* "}"
    Filter       := "FILTER" "(" Expression ")"
    Optional     := "OPTIONAL" Group
    Union        := Group ("UNION" Group)+
    Modifiers    := ("ORDER" "BY" OrderCond+)? ("LIMIT" INT)? ("OFFSET" INT)?

Expressions support ``|| && ! = != < <= > >=`` and the built-ins REGEX, STR,
LANG, DATATYPE, BOUND, CONTAINS, STRSTARTS.
"""

from __future__ import annotations

import re

from repro.errors import QuerySyntaxError
from repro.rdf.namespaces import RDF, NamespaceManager
from repro.rdf.terms import Literal, URIRef, XSD_BOOLEAN, XSD_DOUBLE, XSD_INTEGER
from repro.sparql.aggregates import AGGREGATE_NAMES, Aggregate
from repro.sparql.paths import (
    AlternativePath,
    InversePath,
    PathExpr,
    PredicatePath,
    RepeatPath,
    SequencePath,
)
from repro.sparql.ast import (
    AskQuery,
    set_position,
    BGP,
    Bind,
    BooleanOp,
    Comparison,
    ConstructQuery,
    ExistsExpr,
    Expr,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    Not,
    OptionalPattern,
    OrderCondition,
    SelectQuery,
    TermExpr,
    TriplePattern,
    UnionPattern,
    ValuesClause,
    Var,
    VarExpr,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<iri><[^<>"{}|^`\\\s]*>)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<var>\?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<double>[+-]?(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?)
  | (?P<integer>[+-]?\d+)
  | (?P<op><=|>=|!=|\|\||&&|[=<>!])
  | (?P<dtsep>\^\^)
  | (?P<pathop>[/^|+])
  | (?P<punct>[{}().,;*?])
  | (?P<langtag>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*)
  | (?P<name>[A-Za-z_][\w.-]*:?[\w.-]*)
  | (?P<ws>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "ASK", "CONSTRUCT", "WHERE", "DISTINCT", "PREFIX", "FILTER",
    "OPTIONAL", "UNION", "ORDER", "GROUP", "BY", "AS", "ASC", "DESC",
    "LIMIT", "OFFSET", "A", "TRUE", "FALSE", "EXISTS", "NOT", "BIND",
    "VALUES", "UNDEF",
}

_FUNCTIONS = {
    "REGEX", "STR", "LANG", "DATATYPE", "BOUND", "CONTAINS", "STRSTARTS",
    "STRENDS", "STRLEN", "UCASE", "LCASE", "LANGMATCHES", "ABS",
    "ISURI", "ISIRI", "ISLITERAL", "ISBLANK", "ISNUMERIC",
}


class _Token:
    __slots__ = ("kind", "text", "line", "column")

    def __init__(self, kind: str, text: str, line: int, column: int = 1):
        self.kind = kind
        self.text = text
        self.line = line
        self.column = column


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    line = 1
    line_start = 0  # offset of the first character of the current line
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        value = match.group(0)
        column = match.start() - line_start + 1
        if kind not in ("ws", "comment", "bad"):
            tokens.append(_Token(kind, value, line, column))
        if kind == "bad":
            raise QuerySyntaxError(
                f"unexpected character {value!r}", line=line, column=column
            )
        if "\n" in value:  # whitespace and multi-line strings advance the line
            line += value.count("\n")
            line_start = match.start() + value.rindex("\n") + 1
    return tokens


def _unescape(text: str) -> str:
    return (
        text.replace('\\"', '"')
        .replace("\\n", "\n")
        .replace("\\t", "\t")
        .replace("\\r", "\r")
        .replace("\\\\", "\\")
    )


class Parser:
    """Parses one SELECT or ASK query."""

    def __init__(self, text: str, manager: NamespaceManager | None = None):
        self.tokens = _tokenize(text)
        self.pos = 0
        self.manager = manager or NamespaceManager()

    # -- token machinery ------------------------------------------------ #

    def _peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _error(self, message: str, token: _Token | None = None) -> QuerySyntaxError:
        """A syntax error located at ``token`` (or the current token).

        At end of input there is no current token; the last token's position
        still points near the problem, which beats reporting no location.
        """
        token = token if token is not None else self._peek()
        if token is None and self.tokens:
            token = self.tokens[-1]
        if token is None:
            return QuerySyntaxError(message)
        return QuerySyntaxError(message, line=token.line, column=token.column)

    def _position(self) -> tuple[int | None, int | None]:
        token = self._peek()
        return (token.line, token.column) if token is not None else (None, None)

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of query")
        self.pos += 1
        return token

    def _at_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "name" and token.text.upper() in words

    def _eat_keyword(self, word: str) -> None:
        token = self._next()
        if token.kind != "name" or token.text.upper() != word:
            raise self._error(f"expected {word}, found {token.text!r}", token)

    def _at_punct(self, char: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "punct" and token.text == char

    def _eat_punct(self, char: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.text != char:
            raise self._error(f"expected {char!r}, found {token.text!r}", token)

    # -- entry points ---------------------------------------------------- #

    def parse(self) -> SelectQuery | AskQuery | ConstructQuery:
        self._parse_prologue()
        if self._at_keyword("SELECT"):
            query = self._parse_select()
        elif self._at_keyword("ASK"):
            query = self._parse_ask()
        elif self._at_keyword("CONSTRUCT"):
            query = self._parse_construct()
        else:
            token = self._peek()
            found = token.text if token else "<eof>"
            raise self._error(f"expected SELECT, ASK, or CONSTRUCT, found {found!r}", token)
        if self._peek() is not None:
            raise self._error(
                f"trailing tokens after query: {self._peek().text!r}", self._peek()
            )
        return query

    def _parse_prologue(self) -> None:
        while self._at_keyword("PREFIX"):
            self._next()
            name = self._next()
            if name.kind != "name" or not name.text.endswith(":"):
                raise QuerySyntaxError("expected 'prefix:' after PREFIX", line=name.line, column=name.column)
            iri = self._next()
            if iri.kind != "iri":
                raise QuerySyntaxError("expected <iri> in PREFIX", line=iri.line, column=iri.column)
            self.manager.bind(name.text[:-1], iri.text[1:-1])

    def _parse_select(self) -> SelectQuery:
        self._eat_keyword("SELECT")
        distinct = False
        if self._at_keyword("DISTINCT"):
            self._next()
            distinct = True
        variables: list[Var] = []
        aggregates: list[Aggregate] = []
        projection_order: list[Var] = []
        if self._at_punct("*"):
            self._next()
        else:
            while True:
                token = self._peek()
                if token is not None and token.kind == "var":
                    var = Var(self._next().text[1:])
                    set_position(var, token.line, token.column)
                    variables.append(var)
                    projection_order.append(var)
                elif token is not None and token.kind == "punct" and token.text == "(":
                    aggregate = self._parse_aggregate_projection()
                    aggregates.append(aggregate)
                    projection_order.append(aggregate.alias)
                else:
                    break
            if not variables and not aggregates:
                raise QuerySyntaxError("SELECT requires '*' or at least one projection")
        if self._at_keyword("WHERE"):
            self._next()
        where = self._parse_group()
        group_by: list[Var] = []
        if self._at_keyword("GROUP"):
            self._next()
            self._eat_keyword("BY")
            while self._peek() is not None and self._peek().kind == "var":
                group_by.append(Var(self._next().text[1:]))
            if not group_by:
                raise QuerySyntaxError("GROUP BY requires at least one variable")
        order_by: list[OrderCondition] = []
        limit: int | None = None
        offset = 0
        if self._at_keyword("ORDER"):
            self._next()
            self._eat_keyword("BY")
            order_by = self._parse_order_conditions()
        if self._at_keyword("LIMIT"):
            self._next()
            limit = self._parse_int()
        if self._at_keyword("OFFSET"):
            self._next()
            offset = self._parse_int()
        if aggregates and variables and not group_by:
            raise QuerySyntaxError(
                "mixing plain variables with aggregates requires GROUP BY"
            )
        return SelectQuery(
            variables=variables,
            where=where,
            distinct=distinct,
            order_by=order_by,
            limit=limit,
            offset=offset,
            aggregates=aggregates,
            group_by=group_by,
            projection_order=projection_order,
        )

    def _parse_aggregate_projection(self) -> Aggregate:
        """``( FUNC ( DISTINCT? ?var | * ) AS ?alias )``."""
        self._eat_punct("(")
        name_token = self._next()
        if name_token.kind != "name" or name_token.text.upper() not in AGGREGATE_NAMES:
            raise QuerySyntaxError(
                f"expected aggregate function, found {name_token.text!r}",
                line=name_token.line,
                column=name_token.column,
            )
        function = name_token.text.upper()
        self._eat_punct("(")
        distinct = False
        if self._at_keyword("DISTINCT"):
            self._next()
            distinct = True
        var: Var | None = None
        if self._at_punct("*"):
            self._next()
        else:
            var_token = self._next()
            if var_token.kind != "var":
                raise QuerySyntaxError(
                    f"expected variable or '*' in {function}", line=var_token.line
                )
            var = Var(var_token.text[1:])
        self._eat_punct(")")
        self._eat_keyword("AS")
        alias_token = self._next()
        if alias_token.kind != "var":
            raise QuerySyntaxError("expected alias variable after AS", line=alias_token.line, column=alias_token.column)
        self._eat_punct(")")
        aggregate = Aggregate(
            function=function, var=var, alias=Var(alias_token.text[1:]), distinct=distinct
        )
        set_position(aggregate, name_token.line, name_token.column)
        return aggregate

    def _parse_ask(self) -> AskQuery:
        self._eat_keyword("ASK")
        if self._at_keyword("WHERE"):
            self._next()
        return AskQuery(where=self._parse_group())

    def _parse_construct(self) -> ConstructQuery:
        self._eat_keyword("CONSTRUCT")
        template_group = self._parse_group()
        template: list[TriplePattern] = []
        for child in template_group.children:
            if not isinstance(child, BGP):
                raise QuerySyntaxError("CONSTRUCT template must contain only triples")
            template.extend(child.patterns)
        if not template:
            raise QuerySyntaxError("CONSTRUCT template must not be empty")
        self._eat_keyword("WHERE")
        return ConstructQuery(template=template, where=self._parse_group())

    def _parse_int(self) -> int:
        token = self._next()
        if token.kind != "integer":
            raise QuerySyntaxError(f"expected integer, found {token.text!r}", line=token.line, column=token.column)
        return int(token.text)

    def _parse_order_conditions(self) -> list[OrderCondition]:
        conditions: list[OrderCondition] = []
        while True:
            if self._at_keyword("ASC", "DESC"):
                descending = self._next().text.upper() == "DESC"
                self._eat_punct("(")
                expr = self._parse_expression()
                self._eat_punct(")")
                conditions.append(OrderCondition(expr, descending))
            elif self._peek() is not None and self._peek().kind == "var":
                conditions.append(OrderCondition(VarExpr(Var(self._next().text[1:]))))
            else:
                break
        if not conditions:
            raise QuerySyntaxError("ORDER BY requires at least one condition")
        return conditions

    # -- graph patterns --------------------------------------------------- #

    def _parse_group(self) -> GroupGraphPattern:
        line, column = self._position()
        self._eat_punct("{")
        group = GroupGraphPattern()
        set_position(group, line, column)
        current_bgp: BGP | None = None

        def flush() -> None:
            nonlocal current_bgp
            if current_bgp is not None and current_bgp.patterns:
                group.children.append(current_bgp)
            current_bgp = None

        while not self._at_punct("}"):
            if self._peek() is None:
                raise self._error("unterminated group pattern (missing '}')")
            line, column = self._position()
            if self._at_keyword("FILTER"):
                flush()
                self._next()
                self._eat_punct("(")
                expr = self._parse_expression()
                self._eat_punct(")")
                node = Filter(expr)
                set_position(node, line, column)
                group.children.append(node)
            elif self._at_keyword("BIND"):
                flush()
                self._next()
                self._eat_punct("(")
                expr = self._parse_expression()
                self._eat_keyword("AS")
                var_token = self._next()
                if var_token.kind != "var":
                    raise QuerySyntaxError(
                        "expected variable after AS in BIND", line=var_token.line
                    )
                self._eat_punct(")")
                node = Bind(expr, Var(var_token.text[1:]))
                set_position(node, line, column)
                group.children.append(node)
            elif self._at_keyword("VALUES"):
                flush()
                node = self._parse_values()
                set_position(node, line, column)
                group.children.append(node)
            elif self._at_keyword("OPTIONAL"):
                flush()
                self._next()
                node = OptionalPattern(self._parse_group())
                set_position(node, line, column)
                group.children.append(node)
            elif self._at_punct("{"):
                flush()
                first = self._parse_group()
                alternatives = [first]
                while self._at_keyword("UNION"):
                    self._next()
                    alternatives.append(self._parse_group())
                if len(alternatives) > 1:
                    node = UnionPattern(alternatives)
                    set_position(node, line, column)
                    group.children.append(node)
                else:
                    group.children.append(first)
            else:
                if current_bgp is None:
                    current_bgp = BGP()
                self._parse_triples_into(current_bgp)
        flush()
        self._eat_punct("}")
        return group

    def _at_pathop(self, char: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "pathop" and token.text == char

    def _parse_predicate_or_path(self):
        """A predicate position: a variable, or a property-path expression
        (a single-IRI path collapses back to a plain URIRef)."""
        token = self._peek()
        if token is not None and token.kind == "var":
            self._next()
            return Var(token.text[1:])
        path = self._parse_path_alternative()
        if isinstance(path, PredicatePath):
            return path.predicate
        return path

    def _parse_path_alternative(self) -> PathExpr:
        options = [self._parse_path_sequence()]
        while self._at_pathop("|"):
            self._next()
            options.append(self._parse_path_sequence())
        if len(options) == 1:
            return options[0]
        return AlternativePath(tuple(options))

    def _parse_path_sequence(self) -> PathExpr:
        steps = [self._parse_path_elt()]
        while self._at_pathop("/"):
            self._next()
            steps.append(self._parse_path_elt())
        if len(steps) == 1:
            return steps[0]
        return SequencePath(tuple(steps))

    def _parse_path_elt(self) -> PathExpr:
        inverse = False
        if self._at_pathop("^"):
            self._next()
            inverse = True
        path = self._parse_path_primary()
        if self._at_pathop("+"):
            self._next()
            path = RepeatPath(path, min_hops=1)
        elif self._at_punct("*"):
            self._next()
            path = RepeatPath(path, min_hops=0)
        elif self._at_punct("?"):
            self._next()
            path = RepeatPath(path, min_hops=0, max_one=True)
        if inverse:
            path = InversePath(path)
        return path

    def _parse_path_primary(self) -> PathExpr:
        token = self._peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of query in property path")
        if token.kind == "punct" and token.text == "(":
            self._next()
            inner = self._parse_path_alternative()
            self._eat_punct(")")
            return inner
        if token.kind == "iri":
            self._next()
            return PredicatePath(URIRef(_unescape(token.text[1:-1])))
        if token.kind == "name":
            if token.text.upper() == "A":
                self._next()
                return PredicatePath(RDF.type)
            if ":" in token.text:
                self._next()
                try:
                    return PredicatePath(self.manager.expand(token.text))
                except Exception as exc:
                    raise QuerySyntaxError(str(exc), line=token.line, column=token.column) from exc
        raise QuerySyntaxError(
            f"invalid property path element {token.text!r}", line=token.line
        )

    def _parse_values(self) -> ValuesClause:
        """``VALUES ?v { t1 t2 }`` or ``VALUES (?a ?b) { (t1 t2) ... }``."""
        self._eat_keyword("VALUES")
        variables: list[Var] = []
        token = self._peek()
        multi = token is not None and token.kind == "punct" and token.text == "("
        if multi:
            self._next()
            while self._peek() is not None and self._peek().kind == "var":
                variables.append(Var(self._next().text[1:]))
            self._eat_punct(")")
        else:
            var_token = self._next()
            if var_token.kind != "var":
                raise QuerySyntaxError("expected variable after VALUES", line=var_token.line, column=var_token.column)
            variables.append(Var(var_token.text[1:]))
        if not variables:
            raise QuerySyntaxError("VALUES requires at least one variable")
        self._eat_punct("{")
        rows: list[tuple] = []
        while not self._at_punct("}"):
            if self._peek() is None:
                raise QuerySyntaxError("unterminated VALUES block")
            if multi:
                self._eat_punct("(")
                row = []
                for _ in variables:
                    row.append(self._parse_values_term())
                self._eat_punct(")")
                rows.append(tuple(row))
            else:
                rows.append((self._parse_values_term(),))
        self._eat_punct("}")
        return ValuesClause(variables, rows)

    def _parse_values_term(self):
        """A concrete term or UNDEF inside a VALUES block."""
        if self._at_keyword("UNDEF"):
            self._next()
            return None
        return self._parse_pattern_term(position="object")

    def _parse_triples_into(self, bgp: BGP) -> None:
        line, column = self._position()
        subject = self._parse_pattern_term(position="subject")
        while True:
            predicate = self._parse_predicate_or_path()
            while True:
                obj = self._parse_pattern_term(position="object")
                pattern = TriplePattern(subject, predicate, obj)
                set_position(pattern, line, column)
                bgp.patterns.append(pattern)
                if self._at_punct(","):
                    self._next()
                    continue
                break
            if self._at_punct(";"):
                self._next()
                if self._at_punct(".") or self._at_punct("}"):
                    break
                continue
            break
        if self._at_punct("."):
            self._next()

    def _parse_pattern_term(self, position: str):
        token = self._next()
        if token.kind == "var":
            return Var(token.text[1:])
        if token.kind == "iri":
            return URIRef(_unescape(token.text[1:-1]))
        if token.kind == "name":
            upper = token.text.upper()
            if upper == "A" and position == "predicate":
                return RDF.type
            if upper in ("TRUE", "FALSE") and position == "object":
                return Literal(token.text.lower(), datatype=XSD_BOOLEAN)
            if ":" in token.text:
                try:
                    return self.manager.expand(token.text)
                except Exception as exc:
                    raise QuerySyntaxError(str(exc), line=token.line, column=token.column) from exc
            raise QuerySyntaxError(f"unexpected name {token.text!r}", line=token.line, column=token.column)
        if position == "predicate":
            raise QuerySyntaxError(f"invalid predicate {token.text!r}", line=token.line, column=token.column)
        if token.kind == "string":
            lexical = _unescape(token.text[1:-1])
            nxt = self._peek()
            if nxt is not None and nxt.kind == "langtag":
                self._next()
                return Literal(lexical, language=nxt.text[1:])
            if nxt is not None and nxt.kind == "dtsep":
                self._next()
                dt = self._next()
                if dt.kind == "iri":
                    return Literal(lexical, datatype=dt.text[1:-1])
                if dt.kind == "name" and ":" in dt.text:
                    return Literal(lexical, datatype=self.manager.expand(dt.text).value)
                raise QuerySyntaxError("expected datatype after ^^", line=dt.line, column=dt.column)
            return Literal(lexical)
        if token.kind == "integer":
            return Literal(token.text, datatype=XSD_INTEGER)
        if token.kind == "double":
            return Literal(token.text, datatype=XSD_DOUBLE)
        raise QuerySyntaxError(f"unexpected token {token.text!r} as {position}", line=token.line, column=token.column)

    # -- expressions ------------------------------------------------------ #

    def _parse_expression(self) -> Expr:
        line, column = self._position()
        expr = self._parse_or()
        set_position(expr, line, column)
        return expr

    def _parse_or(self) -> Expr:
        line, column = self._position()
        left = self._parse_and()
        set_position(left, line, column)
        while self._peek() is not None and self._peek().kind == "op" and self._peek().text == "||":
            self._next()
            left = BooleanOp("||", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        line, column = self._position()
        left = self._parse_relational()
        set_position(left, line, column)
        while self._peek() is not None and self._peek().kind == "op" and self._peek().text == "&&":
            self._next()
            left = BooleanOp("&&", left, self._parse_relational())
        return left

    def _parse_relational(self) -> Expr:
        line, column = self._position()
        left = self._parse_unary()
        set_position(left, line, column)
        token = self._peek()
        if token is not None and token.kind == "op" and token.text in ("=", "!=", "<", "<=", ">", ">="):
            self._next()
            right = self._parse_unary()
            comparison = Comparison(token.text, left, right)
            set_position(comparison, line, column)
            return comparison
        return left

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token is not None and token.kind == "op" and token.text == "!":
            self._next()
            return Not(self._parse_unary())
        if self._at_keyword("EXISTS"):
            self._next()
            return ExistsExpr(self._parse_group(), negated=False)
        if self._at_keyword("NOT"):
            self._next()
            self._eat_keyword("EXISTS")
            return ExistsExpr(self._parse_group(), negated=True)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._next()
        if token.kind == "punct" and token.text == "(":
            expr = self._parse_expression()
            self._eat_punct(")")
            return expr
        if token.kind == "var":
            return VarExpr(Var(token.text[1:]))
        if token.kind == "iri":
            return TermExpr(URIRef(_unescape(token.text[1:-1])))
        if token.kind == "string":
            lexical = _unescape(token.text[1:-1])
            nxt = self._peek()
            if nxt is not None and nxt.kind == "langtag":
                self._next()
                return TermExpr(Literal(lexical, language=nxt.text[1:]))
            if nxt is not None and nxt.kind == "dtsep":
                self._next()
                dt = self._next()
                if dt.kind == "iri":
                    return TermExpr(Literal(lexical, datatype=dt.text[1:-1]))
                if dt.kind == "name" and ":" in dt.text:
                    return TermExpr(Literal(lexical, datatype=self.manager.expand(dt.text).value))
                raise QuerySyntaxError("expected datatype after ^^", line=dt.line, column=dt.column)
            return TermExpr(Literal(lexical))
        if token.kind == "integer":
            return TermExpr(Literal(token.text, datatype=XSD_INTEGER))
        if token.kind == "double":
            return TermExpr(Literal(token.text, datatype=XSD_DOUBLE))
        if token.kind == "name":
            upper = token.text.upper()
            if upper in ("TRUE", "FALSE"):
                return TermExpr(Literal(upper.lower(), datatype=XSD_BOOLEAN))
            if upper in _FUNCTIONS:
                self._eat_punct("(")
                args: list[Expr] = []
                if not self._at_punct(")"):
                    args.append(self._parse_expression())
                    while self._at_punct(","):
                        self._next()
                        args.append(self._parse_expression())
                self._eat_punct(")")
                return FunctionCall(upper, tuple(args))
            if ":" in token.text:
                return TermExpr(self.manager.expand(token.text))
        raise QuerySyntaxError(f"unexpected token in expression: {token.text!r}", line=token.line, column=token.column)


def parse_query(text: str, manager: NamespaceManager | None = None) -> SelectQuery | AskQuery:
    """Parse SPARQL text into an AST (SELECT or ASK)."""
    return Parser(text, manager).parse()
