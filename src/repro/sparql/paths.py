"""SPARQL 1.1 property paths (subset) and their evaluation.

Supported path syntax: ``iri``, ``^path`` (inverse), ``path/path``
(sequence), ``path|path`` (alternative), ``path*``, ``path+``, ``path?``,
and grouping ``(path)``. Negated property sets are not supported.

Evaluation yields (subject, object) node pairs. The closure operators use
breadth-first expansion with a visited set, so cyclic graphs terminate.
Zero-length paths (from ``*``/``?``) relate each graph node to itself; with
both endpoints unbound the node universe is every subject or non-literal
object in the graph (literals cannot be path subjects).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, Term, URIRef


class PathExpr:
    """Base class for property-path expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class PredicatePath(PathExpr):
    """A single predicate step."""

    predicate: URIRef

    def __str__(self):
        return self.predicate.n3()


@dataclass(frozen=True)
class InversePath(PathExpr):
    """``^path`` — traverse backwards."""

    path: PathExpr

    def __str__(self):
        return f"^{self.path}"


@dataclass(frozen=True)
class SequencePath(PathExpr):
    """``a/b`` — b applied to the targets of a."""

    steps: tuple[PathExpr, ...]

    def __str__(self):
        return "/".join(str(step) for step in self.steps)


@dataclass(frozen=True)
class AlternativePath(PathExpr):
    """``a|b`` — union of both paths' pairs."""

    options: tuple[PathExpr, ...]

    def __str__(self):
        return "|".join(str(option) for option in self.options)


@dataclass(frozen=True)
class RepeatPath(PathExpr):
    """``path*`` (min_hops=0), ``path+`` (1), or ``path?`` (0, at most 1)."""

    path: PathExpr
    min_hops: int  # 0 or 1
    max_one: bool = False  # True only for '?'

    def __str__(self):
        symbol = "?" if self.max_one else ("*" if self.min_hops == 0 else "+")
        return f"{self.path}{symbol}"


# --------------------------------------------------------------------- #
# Evaluation
# --------------------------------------------------------------------- #


def _graph_nodes(graph: Graph) -> Iterator[Term]:
    """Every term that can start a path: subjects plus non-literal objects."""
    seen: set[Term] = set()
    for triple in graph.triples():
        if triple.subject not in seen:
            seen.add(triple.subject)
            yield triple.subject
        if not isinstance(triple.object, Literal) and triple.object not in seen:
            seen.add(triple.object)
            yield triple.object


def _step(graph: Graph, path: PathExpr, node: Term) -> Iterator[Term]:
    """All targets reachable from ``node`` via one application of ``path``."""
    if isinstance(node, Literal) and not isinstance(path, InversePath):
        return
    if isinstance(path, PredicatePath):
        yield from graph.objects(node, path.predicate)
    elif isinstance(path, InversePath):
        for source, _ in _eval_path_to(graph, path.path, node):
            yield source
    elif isinstance(path, SequencePath):
        frontier = [node]
        for part in path.steps:
            next_frontier: list[Term] = []
            seen: set[Term] = set()
            for current in frontier:
                for target in _step(graph, part, current):
                    if target not in seen:
                        seen.add(target)
                        next_frontier.append(target)
            frontier = next_frontier
            if not frontier:
                return
        yield from frontier
    elif isinstance(path, AlternativePath):
        seen = set()
        for option in path.options:
            for target in _step(graph, option, node):
                if target not in seen:
                    seen.add(target)
                    yield target
    elif isinstance(path, RepeatPath):
        yield from _closure_from(graph, path, node)
    else:
        raise TypeError(f"unknown path node {type(path).__name__}")


def _closure_from(graph: Graph, path: RepeatPath, node: Term) -> Iterator[Term]:
    """Targets of ``path{*,+,?}`` starting at ``node``."""
    if path.min_hops == 0:
        yield node
    if path.max_one:  # '?': at most one application
        for target in _step(graph, path.path, node):
            if target != node or path.min_hops > 0:
                yield target
        return
    visited: set[Term] = set()
    queue: deque[Term] = deque(_step(graph, path.path, node))
    while queue:
        current = queue.popleft()
        if current in visited:
            continue
        visited.add(current)
        # the zero-hop self was already yielded above for '*'; a start node
        # reached again over a cycle still counts for '+'
        if not (path.min_hops == 0 and current == node):
            yield current
        for target in _step(graph, path.path, current):
            if target not in visited:
                queue.append(target)


def _eval_path_to(graph: Graph, path: PathExpr, target: Term) -> Iterator[tuple[Term, Term]]:
    """All (source, target) pairs of ``path`` ending at ``target``."""
    if isinstance(path, PredicatePath):
        for subject in graph.subjects(predicate=path.predicate, object=target):
            yield subject, target
        return
    # generic fallback: enumerate sources
    for source in _graph_nodes(graph):
        for reached in _step(graph, path, source):
            if reached == target:
                yield source, target
                break


def eval_path(
    graph: Graph,
    path: PathExpr,
    subject: Term | None,
    object: Term | None,
) -> Iterator[tuple[Term, Term]]:
    """All (subject, object) pairs related by ``path``, honouring bound ends."""
    if subject is not None:
        for target in _step(graph, path, subject):
            if object is None or target == object:
                yield subject, target
        return
    if object is not None:
        seen: set[Term] = set()
        for source, _ in _eval_path_to(graph, path, object):
            if source not in seen:
                seen.add(source)
                yield source, object
        return
    for source in _graph_nodes(graph):
        for target in _step(graph, path, source):
            yield source, target
