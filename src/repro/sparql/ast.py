"""Abstract syntax for the SPARQL subset.

The parser produces these nodes; the evaluator walks them. Expression nodes
(`Expr` subclasses) form the FILTER / ORDER BY expression language.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.rdf.terms import Literal, Term, URIRef


def set_position(node: object, line: int | None, column: int | None) -> None:
    """Attach a source position to an AST node (parser-internal).

    Positions ride along as non-field attributes so they never affect the
    equality/hash semantics of frozen nodes (two ``Var("x")`` at different
    positions must still compare equal and share a dict slot).
    """
    if line is not None:
        object.__setattr__(node, "_pos", (line, column))


def get_position(node: object) -> tuple[int | None, int | None]:
    """``(line, column)`` where ``node`` was parsed, or ``(None, None)``."""
    return getattr(node, "_pos", (None, None))


@dataclass(frozen=True)
class Var:
    """A SPARQL variable, e.g. ``?name`` (stored without the ``?``)."""

    name: str

    def __str__(self):
        return f"?{self.name}"


#: A pattern position: either a concrete term or a variable.
PatternTerm = Union[Term, Var]


@dataclass(frozen=True)
class TriplePattern:
    """One triple pattern in a basic graph pattern."""

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def variables(self) -> set[Var]:
        return {t for t in (self.subject, self.predicate, self.object) if isinstance(t, Var)}

    def __str__(self):
        def render(t) -> str:
            # variables and property-path expressions render via str();
            # concrete terms via N-Triples syntax
            return t.n3() if isinstance(t, Term) else str(t)

        return f"{render(self.subject)} {render(self.predicate)} {render(self.object)} ."


# --------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------- #


class Expr:
    """Base class for FILTER expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class TermExpr(Expr):
    """A constant RDF term in an expression."""

    term: Term


@dataclass(frozen=True)
class VarExpr(Expr):
    """A variable reference in an expression."""

    var: Var


@dataclass(frozen=True)
class Comparison(Expr):
    """``left OP right`` where OP ∈ {=, !=, <, <=, >, >=}."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class BooleanOp(Expr):
    """``left && right`` or ``left || right``."""

    op: str  # "&&" or "||"
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr


@dataclass(frozen=True)
class FunctionCall(Expr):
    """Built-in call: REGEX, STR, LANG, DATATYPE, BOUND, CONTAINS, STRSTARTS."""

    name: str  # upper-cased
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class ExistsExpr(Expr):
    """``EXISTS { … }`` / ``NOT EXISTS { … }`` in a FILTER.

    True when the group pattern, evaluated with the current solution's
    bindings, has at least one match (negated for NOT EXISTS).
    """

    pattern: "GroupGraphPattern"
    negated: bool = False

    def __hash__(self):  # GroupGraphPattern is unhashable; identity is fine
        return id(self)


# --------------------------------------------------------------------- #
# Graph patterns
# --------------------------------------------------------------------- #


class GraphPattern:
    """Base class for WHERE-clause pattern nodes."""

    __slots__ = ()


@dataclass
class BGP(GraphPattern):
    """A basic graph pattern: a conjunctive list of triple patterns."""

    patterns: list[TriplePattern] = field(default_factory=list)

    def variables(self) -> set[Var]:
        out: set[Var] = set()
        for pattern in self.patterns:
            out |= pattern.variables()
        return out


@dataclass
class Filter(GraphPattern):
    expression: Expr


@dataclass
class Bind(GraphPattern):
    """``BIND(expr AS ?var)`` — extends each solution with a computed value."""

    expression: Expr
    var: Var


@dataclass
class ValuesClause(GraphPattern):
    """``VALUES (?a ?b) { (t1 t2) ... }`` — inline solution data.

    ``rows`` holds one tuple per row; None marks UNDEF positions.
    """

    variables: list[Var]
    rows: list[tuple]


@dataclass
class OptionalPattern(GraphPattern):
    pattern: "GroupGraphPattern"


@dataclass
class UnionPattern(GraphPattern):
    alternatives: list["GroupGraphPattern"]


@dataclass
class GroupGraphPattern(GraphPattern):
    """A ``{ … }`` group: ordered child patterns evaluated left to right,
    with FILTERs applied over the whole group's solutions."""

    children: list[GraphPattern] = field(default_factory=list)

    def variables(self) -> set[Var]:
        out: set[Var] = set()
        for child in self.children:
            if isinstance(child, BGP):
                out |= child.variables()
            elif isinstance(child, GroupGraphPattern):
                out |= child.variables()
            elif isinstance(child, OptionalPattern):
                out |= child.pattern.variables()
            elif isinstance(child, UnionPattern):
                for alt in child.alternatives:
                    out |= alt.variables()
        return out


@dataclass(frozen=True)
class OrderCondition:
    expression: Expr
    descending: bool = False


@dataclass
class SelectQuery:
    """A parsed SELECT query.

    ``aggregates`` holds projected aggregates (``(COUNT(?x) AS ?n)``) and
    ``group_by`` the grouping keys; ``projection_order`` preserves the order
    variables and aggregate aliases appeared in the SELECT list.
    """

    variables: list[Var]  # empty means SELECT * (when no aggregates either)
    where: GroupGraphPattern
    distinct: bool = False
    order_by: list[OrderCondition] = field(default_factory=list)
    limit: int | None = None
    offset: int = 0
    aggregates: list = field(default_factory=list)  # list[Aggregate]
    group_by: list[Var] = field(default_factory=list)
    projection_order: list[Var] = field(default_factory=list)

    @property
    def is_star(self) -> bool:
        return not self.variables and not self.aggregates

    @property
    def is_aggregated(self) -> bool:
        return bool(self.aggregates) or bool(self.group_by)

    def projected(self) -> list[Var]:
        """The variables to project: explicit list or all WHERE variables."""
        if self.projection_order:
            return self.projection_order
        if self.variables:
            return self.variables
        return sorted(self.where.variables(), key=lambda v: v.name)


@dataclass
class AskQuery:
    """A parsed ASK query."""

    where: GroupGraphPattern


@dataclass
class ConstructQuery:
    """A parsed CONSTRUCT query: a triple template instantiated per solution."""

    template: list[TriplePattern]
    where: GroupGraphPattern
