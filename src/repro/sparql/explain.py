"""SPARQL EXPLAIN / EXPLAIN ANALYZE: plan trees with per-operator profiles.

``explain(graph, query)`` renders the *optimized* algebra plan — solution
modifiers on top, group patterns below, each BGP in the join order the
optimizer (:mod:`repro.sparql.optimizer`) would actually execute, with that
optimizer's cardinality estimate attached to every triple pattern. The plan
never executes the query.

``explain(graph, query, analyze=True)`` additionally *runs* the query under
an :class:`~repro.sparql.eval.EvalObserver` that meters every operator —
rows in, rows out, wall seconds, join strategy — and, when a tracer is
installed (:mod:`repro.obs.trace`), attaches one ``sparql.operator.eval``
trace event per operator inside a ``sparql.query.explain`` span, so query
profiles land in the same audit trail as engine decisions.

Timing semantics: since v1.6 the evaluator materializes each pattern
stage (adaptively as a hash join or an index nested-loop batch), so a
pattern's ``time`` is *exclusive* — the wall time of that stage alone —
and its ``strategy`` annotation reports the join algorithm the executor
actually chose (``hash-join`` / ``index-nested-loop`` / ``path-scan``),
which on large inputs can differ from the static plan's guess.

Surfaced as ``repro explain`` (text/JSON, ``--analyze``, ``--trace-out``)
and as ``sparql.query(..., profile=True)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs import trace
from repro.rdf.graph import Graph
from repro.sparql.ast import (
    AskQuery,
    BGP,
    Bind,
    BooleanOp,
    Comparison,
    ConstructQuery,
    ExistsExpr,
    Expr,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    Not,
    OptionalPattern,
    SelectQuery,
    TermExpr,
    TriplePattern,
    UnionPattern,
    ValuesClause,
    Var,
    VarExpr,
)
from repro.sparql.eval import (
    EvalObserver,
    _execute_ask,
    _execute_construct,
    _execute_select,
)
from repro.sparql.optimizer import estimate_cardinality, reorder_bgp
from repro.sparql.parser import parse_query
from repro.sparql.paths import PathExpr

#: Versioned schema tag on :meth:`QueryPlan.to_dict` payloads.
PLAN_SCHEMA = "repro-plan/1"


def render_expr(expr: Expr) -> str:
    """Compact, SPARQL-ish rendering of a FILTER/ORDER expression."""
    if isinstance(expr, TermExpr):
        return expr.term.n3()
    if isinstance(expr, VarExpr):
        return str(expr.var)
    if isinstance(expr, Not):
        return f"!({render_expr(expr.operand)})"
    if isinstance(expr, (Comparison, BooleanOp)):
        return f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
    if isinstance(expr, FunctionCall):
        return f"{expr.name}({', '.join(render_expr(a) for a in expr.args)})"
    if isinstance(expr, ExistsExpr):
        return ("NOT EXISTS" if expr.negated else "EXISTS") + " {...}"
    return type(expr).__name__


@dataclass
class PlanNode:
    """One operator in the plan tree (and, after ANALYZE, its profile)."""

    op: str
    detail: str = ""
    estimate: float | None = None
    strategy: str | None = None
    children: list["PlanNode"] = field(default_factory=list)
    # -- filled in by EXPLAIN ANALYZE ---------------------------------- #
    executed: bool = False
    rows_in: int = 0
    rows_out: int = 0
    seconds: float = 0.0

    def label(self) -> str:
        parts = [self.op]
        if self.detail:
            parts.append(self.detail)
        annotations = []
        if self.strategy:
            annotations.append(f"strategy={self.strategy}")
        if self.estimate is not None:
            annotations.append(f"est={self.estimate:g}")
        if self.executed:
            annotations.append(
                f"rows={self.rows_in}->{self.rows_out} time={self.seconds * 1000:.3f}ms"
            )
        text = " ".join(parts)
        if annotations:
            text += "  [" + " ".join(annotations) + "]"
        return text

    def to_dict(self) -> dict:
        node: dict = {"op": self.op}
        if self.detail:
            node["detail"] = self.detail
        if self.estimate is not None:
            node["estimate"] = self.estimate
        if self.strategy:
            node["strategy"] = self.strategy
        if self.executed:
            node["rows_in"] = self.rows_in
            node["rows_out"] = self.rows_out
            node["seconds"] = round(self.seconds, 9)
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node

    def walk(self) -> Iterator["PlanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


class QueryPlan:
    """The product of :func:`explain`: a plan tree plus run metadata."""

    def __init__(self, root: PlanNode, analyzed: bool = False):
        self.root = root
        self.analyzed = analyzed
        self.result = None  # the query result when analyzed
        self.seconds: float | None = None  # total execution time when analyzed
        self.trace_id: str | None = None

    def render(self) -> str:
        """The plan as an indented text tree (the body of ``repro explain``)."""
        lines = []
        header = "EXPLAIN ANALYZE" if self.analyzed else "EXPLAIN"
        lines.append(header)

        def emit(node: PlanNode, prefix: str, is_last: bool, is_root: bool) -> None:
            if is_root:
                lines.append(node.label())
                child_prefix = ""
            else:
                connector = "`- " if is_last else "|- "
                lines.append(prefix + connector + node.label())
                child_prefix = prefix + ("   " if is_last else "|  ")
            for index, child in enumerate(node.children):
                emit(child, child_prefix, index == len(node.children) - 1, False)

        emit(self.root, "", True, True)
        if self.analyzed and self.seconds is not None:
            lines.append(f"total: {self.seconds * 1000:.3f} ms")
            if self.trace_id is not None:
                lines.append(f"trace: {self.trace_id}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        payload: dict = {
            "schema": PLAN_SCHEMA,
            "analyzed": self.analyzed,
            "root": self.root.to_dict(),
        }
        if self.seconds is not None:
            payload["seconds"] = round(self.seconds, 9)
        if self.trace_id is not None:
            payload["trace"] = self.trace_id
        return payload

    def operators(self) -> list[PlanNode]:
        return list(self.root.walk())

    def __repr__(self):
        kind = "analyzed" if self.analyzed else "static"
        return f"<QueryPlan {kind}: {len(self.operators())} operators>"


# --------------------------------------------------------------------- #
# Plan construction (shared by EXPLAIN and EXPLAIN ANALYZE)
# --------------------------------------------------------------------- #


class _PlanBuilder:
    """Builds the plan tree, registering operator nodes for the meter.

    BGPs are reordered here with the *same* deterministic greedy procedure
    the evaluator applies (:func:`reorder_bgp` is a pure function of the
    pattern set and graph statistics, so building and evaluating agree on
    the join order and on pattern object identity).
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        #: id(ast object) -> PlanNode, for the meter's stage lookups.
        self.nodes: dict[int, PlanNode] = {}
        #: top-level modifier op -> PlanNode ("project", "distinct", ...).
        self.modifiers: dict[str, PlanNode] = {}

    def build(self, query) -> PlanNode:
        if isinstance(query, SelectQuery):
            return self._build_select(query)
        if isinstance(query, AskQuery):
            node = PlanNode("ask", children=[self._group(query.where, set())])
            self.modifiers["ask"] = node
            return node
        if isinstance(query, ConstructQuery):
            node = PlanNode(
                "construct",
                detail=f"{len(query.template)} template triple(s)",
                children=[self._group(query.where, set())],
            )
            self.modifiers["construct"] = node
            return node
        raise TypeError(f"cannot explain {type(query).__name__}")

    def _build_select(self, query: SelectQuery) -> PlanNode:
        node = self._group(query.where, set())
        if query.is_aggregated:
            keys = " ".join(str(v) for v in query.group_by) or "(all)"
            aggregates = ", ".join(
                f"{a.function}({'DISTINCT ' if a.distinct else ''}"
                f"{a.var if a.var is not None else '*'}) AS {a.alias}"
                for a in query.aggregates
            )
            node = PlanNode(
                "aggregate", detail=f"group by {keys}: {aggregates}", children=[node]
            )
            self.modifiers["aggregate"] = node
        else:
            names = " ".join(str(v) for v in query.projected()) or "*"
            node = PlanNode("project", detail=names, children=[node])
            self.modifiers["project"] = node
        if query.distinct:
            node = PlanNode("distinct", children=[node])
            self.modifiers["distinct"] = node
        if query.order_by:
            detail = ", ".join(
                ("DESC " if condition.descending else "") + render_expr(condition.expression)
                for condition in query.order_by
            )
            node = PlanNode("order", detail=detail, children=[node])
            self.modifiers["order"] = node
        if query.offset or query.limit is not None:
            parts = []
            if query.limit is not None:
                parts.append(f"limit {query.limit}")
            if query.offset:
                parts.append(f"offset {query.offset}")
            node = PlanNode("slice", detail=" ".join(parts), children=[node])
            self.modifiers["slice"] = node
        return node

    def _group(self, group: GroupGraphPattern, bound: set[Var]) -> PlanNode:
        node = PlanNode("group")
        for child in group.children:
            if isinstance(child, BGP):
                node.children.append(self._bgp(child, bound))
            elif isinstance(child, Filter):
                filter_node = PlanNode("filter", detail=render_expr(child.expression))
                self.nodes[id(child.expression)] = filter_node
                node.children.append(filter_node)
            elif isinstance(child, GroupGraphPattern):
                node.children.append(self._group(child, bound))
            elif isinstance(child, OptionalPattern):
                optional = PlanNode(
                    "optional", children=[self._group(child.pattern, set(bound))]
                )
                bound |= child.pattern.variables()
                node.children.append(optional)
            elif isinstance(child, UnionPattern):
                union = PlanNode(
                    "union",
                    children=[
                        self._group(alternative, set(bound))
                        for alternative in child.alternatives
                    ],
                )
                for alternative in child.alternatives:
                    bound |= alternative.variables()
                node.children.append(union)
            elif isinstance(child, Bind):
                node.children.append(
                    PlanNode("bind", detail=f"{render_expr(child.expression)} AS {child.var}")
                )
                bound.add(child.var)
            elif isinstance(child, ValuesClause):
                names = " ".join(str(v) for v in child.variables)
                node.children.append(
                    PlanNode("values", detail=f"({names}) x {len(child.rows)} row(s)")
                )
                bound |= set(child.variables)
            else:
                node.children.append(PlanNode(type(child).__name__.lower()))
        return node

    def _bgp(self, bgp: BGP, bound: set[Var]) -> PlanNode:
        # seed the join-order search with the variables the enclosing group
        # has already bound, matching what the evaluator does at run time
        ordered = reorder_bgp(self.graph, bgp, bound) if len(bgp.patterns) > 1 else bgp
        reordered = ordered.patterns != bgp.patterns
        node = PlanNode(
            "bgp",
            detail=f"{len(ordered.patterns)} pattern(s)"
            + (" (reordered)" if reordered else ""),
        )
        for pattern in ordered.patterns:
            strategy = (
                "path-scan" if isinstance(pattern.predicate, PathExpr)
                else "index-nested-loop"
            )
            pattern_node = PlanNode(
                "pattern",
                detail=str(pattern),
                estimate=estimate_cardinality(self.graph, pattern, bound),
                strategy=strategy,
            )
            self.nodes[id(pattern)] = pattern_node
            node.children.append(pattern_node)
            bound |= pattern.variables()
        return node


# --------------------------------------------------------------------- #
# The meter: an EvalObserver accumulating into plan nodes
# --------------------------------------------------------------------- #


class _Meter(EvalObserver):
    """Routes evaluator profile callbacks onto the prepared plan nodes.

    UNION alternatives share their pattern objects across branches and a
    group may execute more than once, so stats *accumulate* across calls —
    the node reports the operator's total work, as EXPLAIN ANALYZE loops
    do. A pattern node's ``strategy`` is overwritten with the strategy the
    executor actually picked.
    """

    def __init__(self, builder: _PlanBuilder):
        self._builder = builder

    def _node(self, key: int, op: str, detail: str) -> PlanNode:
        node = self._builder.nodes.get(key)
        if node is None:
            # an operator the builder did not anticipate (defensive): attach
            # a floating node so its numbers are not lost
            node = PlanNode(op, detail=detail)
            self._builder.nodes[key] = node
            self._builder.modifiers.setdefault("group", PlanNode("group")).children.append(
                node
            )
        return node

    def pattern_profile(
        self,
        pattern: TriplePattern,
        strategy: str,
        rows_in: int,
        rows_out: int,
        seconds: float,
    ) -> None:
        node = self._node(id(pattern), "pattern", str(pattern))
        node.executed = True
        node.strategy = strategy
        node.rows_in += rows_in
        node.rows_out += rows_out
        node.seconds += seconds

    def filter_profile(
        self, expression: Expr, rows_in: int, rows_out: int, seconds: float
    ) -> None:
        node = self._node(id(expression), "filter", render_expr(expression))
        node.executed = True
        node.rows_in += rows_in
        node.rows_out += rows_out
        node.seconds += seconds

    def modifier(self, op: str, rows_in: int, rows_out: int, seconds: float) -> None:
        node = self._builder.modifiers.get(op)
        if node is None:
            return
        node.executed = True
        node.rows_in += rows_in
        node.rows_out += rows_out
        node.seconds += seconds


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #


def explain(graph: Graph, query, analyze: bool = False) -> QueryPlan:
    """Build the optimized plan for ``query`` (text or parsed) over ``graph``.

    ``analyze=True`` executes the query, filling per-operator ``rows_in`` /
    ``rows_out`` / ``seconds`` / ``strategy`` and emitting one
    ``sparql.operator.eval`` trace event per executed operator (plus the
    enclosing ``sparql.query.explain`` span) when a tracer is active. The
    executed result is exposed as ``plan.result``.
    """
    parsed = parse_query(query) if isinstance(query, str) else query
    builder = _PlanBuilder(graph)
    root = builder.build(parsed)
    plan = QueryPlan(root, analyzed=analyze)
    if not analyze:
        return plan

    meter = _Meter(builder)
    with trace.span(
        "sparql.query.explain", kind=type(parsed).__name__, analyze=True
    ) as span:
        started = time.perf_counter()
        if isinstance(parsed, SelectQuery):
            plan.result = _execute_select(graph, parsed, observer=meter)
        elif isinstance(parsed, ConstructQuery):
            plan.result = _execute_construct(graph, parsed, observer=meter)
        else:
            plan.result = _execute_ask(graph, parsed, observer=meter)
        plan.seconds = time.perf_counter() - started
        plan.trace_id = span.trace_id
        tracer = trace.active()
        if tracer is not None:
            for node in root.walk():
                if not node.executed and node.op not in ("ask", "construct"):
                    continue
                span.event(
                    "sparql.operator.eval",
                    op=node.op,
                    detail=node.detail,
                    rows_in=node.rows_in,
                    rows_out=node.rows_out,
                    seconds=round(node.seconds, 9),
                    strategy=node.strategy,
                    estimate=node.estimate,
                )
    return plan
