"""Prepared queries: parse once, execute many times.

:func:`prepare` is the front door of the SPARQL engine since v1.6. It
parses query text into a :class:`PreparedQuery` — an immutable handle
bundling the parsed plan with a per-query join-order memo — through a
bounded LRU cache keyed by the exact query text, so hot production
queries skip the parser (and, on an unchanged graph, the join-order
search) entirely. Cache traffic is observable as
``sparql.plan_cache.hits`` / ``sparql.plan_cache.misses``.

    prepared = prepare("SELECT ?name WHERE { ?p <.../name> ?name }")
    result = prepared.execute(graph)
    result = prepared.execute(other_graph, bindings={"p": alice})
    print(prepared.explain(graph).render())

The cache stores parse products only — never graph data — so one
prepared query is valid against any graph. Entries are invalidated
purely by capacity (least-recently-used first); query text is the whole
key, so two textually different spellings of the same query cache
independently.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from repro import obs
from repro.errors import QueryEvaluationError
from repro.obs import accounting, slowlog
from repro.rdf.graph import Graph
from repro.sparql.ast import AskQuery, ConstructQuery, SelectQuery
from repro.sparql.eval import (
    QueryResult,
    Solution,
    _BGPOrderMemo,
    _execute_ask,
    _execute_construct,
    _execute_select,
)
from repro.sparql.parser import parse_query

#: Maximum number of parsed plans kept in the process-wide LRU cache.
PLAN_CACHE_SIZE = 128

_cache_lock = threading.Lock()
_plan_cache: OrderedDict[str, "PreparedQuery"] = OrderedDict()


class PreparedQuery:
    """A parsed, reusable SPARQL query bound to no particular graph.

    Obtain instances from :func:`prepare` (direct construction skips the
    plan cache). The :attr:`plan` is the parsed algebra tree —
    :class:`~repro.sparql.ast.SelectQuery`, AskQuery, or ConstructQuery —
    shared by every execution; per-(graph, BGP) join orders are memoized
    on the side and revalidated against the graph's
    :attr:`~repro.rdf.graph.Graph.version`.
    """

    __slots__ = ("text", "plan", "_memo")

    def __init__(self, text: str):
        self.text = text
        self.plan = parse_query(text)
        self._memo = _BGPOrderMemo()

    def execute(
        self, graph: Graph, bindings: Solution | dict[str, object] | None = None
    ) -> QueryResult | bool | Graph:
        """Run against ``graph``: a :class:`QueryResult` for SELECT, a bool
        for ASK, a :class:`~repro.rdf.graph.Graph` for CONSTRUCT.

        ``bindings`` pre-binds variables (keys are :class:`Var` objects or
        bare/``?``-prefixed names) before the WHERE clause evaluates —
        the parameterized-query idiom.
        """
        plan = self.plan
        slog = slowlog.active()
        if not (accounting.enabled() or slog is not None):
            # Accounting off: the original, zero-overhead dispatch.
            if isinstance(plan, SelectQuery):
                return _execute_select(graph, plan, bindings=bindings, memo=self._memo)
            if isinstance(plan, AskQuery):
                return _execute_ask(graph, plan, bindings=bindings, memo=self._memo)
            if isinstance(plan, ConstructQuery):
                return _execute_construct(graph, plan, bindings=bindings, memo=self._memo)
            raise QueryEvaluationError(
                f"cannot execute query of type {type(plan).__name__}"
            )

        if isinstance(plan, SelectQuery):
            kind = "select"
        elif isinstance(plan, AskQuery):
            kind = "ask"
        elif isinstance(plan, ConstructQuery):
            kind = "construct"
        else:
            raise QueryEvaluationError(
                f"cannot execute query of type {type(plan).__name__}"
            )
        stats = accounting.QueryStats(kind)
        stats.plan_cache_hit = accounting.consume_plan_cache_note()
        started = time.perf_counter()
        if kind == "select":
            result = _execute_select(
                graph, plan, bindings=bindings, memo=self._memo, stats=stats
            )
            stats.rows_out = len(result)
        elif kind == "ask":
            result = _execute_ask(
                graph, plan, bindings=bindings, memo=self._memo, stats=stats
            )
            stats.rows_out = int(bool(result))
        else:
            result = _execute_construct(
                graph, plan, bindings=bindings, memo=self._memo, stats=stats
            )
            stats.rows_out = len(result)
        stats.wall_seconds = time.perf_counter() - started
        if isinstance(result, QueryResult):
            result.stats = stats
        if slog is not None:
            slog.record("query", self.text, stats.wall_seconds, detail=stats.to_dict())
        return result

    def explain(self, graph: Graph, analyze: bool = False):
        """The optimized :class:`~repro.sparql.explain.QueryPlan` for this
        query over ``graph`` (``analyze=True`` executes and profiles it)."""
        from repro.sparql.explain import explain

        return explain(graph, self.plan, analyze=analyze)

    def __repr__(self):
        return f"<PreparedQuery {type(self.plan).__name__} {self.text[:40]!r}>"


def prepare(text: str) -> PreparedQuery:
    """Parse ``text`` through the bounded plan cache.

    Repeated calls with identical text return the *same*
    :class:`PreparedQuery` (and bump ``sparql.plan_cache.hits``); misses
    parse, insert, and evict the least-recently-used entry beyond
    :data:`PLAN_CACHE_SIZE`.
    """
    with _cache_lock:
        cached = _plan_cache.get(text)
        if cached is not None:
            _plan_cache.move_to_end(text)
    if cached is not None:
        # Counter updates happen outside the cache lock: obs.inc takes the
        # registry's own lock on instrument creation, and the plan cache
        # must never hold _cache_lock while acquiring a foreign lock.
        obs.inc("sparql.plan_cache.hits")
        if accounting.enabled():
            accounting.note_plan_cache(True)
        return cached
    obs.inc("sparql.plan_cache.misses")
    if accounting.enabled():
        accounting.note_plan_cache(False)
    prepared = PreparedQuery(text)  # parse outside the lock
    with _cache_lock:
        # Re-check under the lock: another thread may have parsed and
        # inserted the same text while we were parsing. Keeping the first
        # insertion (instead of overwriting) preserves the "same text ->
        # same PreparedQuery object" guarantee under concurrency, so the
        # join-order memo is shared rather than split across duplicates.
        raced = _plan_cache.get(text)
        if raced is not None:
            _plan_cache.move_to_end(text)
            return raced
        _plan_cache[text] = prepared
        while len(_plan_cache) > PLAN_CACHE_SIZE:
            _plan_cache.popitem(last=False)
    return prepared


def clear_plan_cache() -> int:
    """Drop every cached plan; returns how many were evicted (tests)."""
    with _cache_lock:
        count = len(_plan_cache)
        _plan_cache.clear()
    return count


def plan_cache_info() -> dict:
    """Occupancy and traffic of the plan cache (for ``engine.health()``)."""
    with _cache_lock:
        entries = len(_plan_cache)
    # Counter reads happen outside _cache_lock (same lock discipline as
    # the hit/miss bumps in prepare()).
    return {
        "entries": entries,
        "capacity": PLAN_CACHE_SIZE,
        "hits": obs.counter("sparql.plan_cache.hits").value,
        "misses": obs.counter("sparql.plan_cache.misses").value,
    }


__all__ = [
    "PLAN_CACHE_SIZE",
    "PreparedQuery",
    "clear_plan_cache",
    "plan_cache_info",
    "prepare",
]
