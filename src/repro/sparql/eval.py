"""Evaluation of the SPARQL subset against a :class:`~repro.rdf.graph.Graph`.

Since v1.6 the evaluator runs **in ID space**: the graph interns every term
to an integer (:mod:`repro.rdf.dictionary`), and BGP execution joins
compact ID tuples — one slot per variable in a shared
:class:`_Layout` — against the graph's int-keyed indexes. Each pattern
stage picks a strategy adaptively:

* ``index-nested-loop`` — few input rows: probe the indexes once per row
  with that row's bindings substituted (the classic bound join);
* ``hash-join`` — many input rows: enumerate the pattern's matches once
  with only its constants bound, bucket them by the shared (join)
  variables, then probe each input row against the hash table.

Terms are decoded back to :class:`~repro.rdf.terms.Term` objects only at
the boundaries that need them: FILTER/BIND expression evaluation, ORDER
BY keys, aggregation, and the final projection. Query-produced terms that
the graph has never seen (BIND results, VALUES constants) intern into a
per-query overlay with *negative* IDs, so equality still works and the
graph's dictionary is never mutated by a read.

The stable entry points are :func:`repro.sparql.prepare` /
:class:`~repro.sparql.prepared.PreparedQuery` and the thin
:func:`query` wrapper. ``evaluate_select`` / ``evaluate_ask`` /
``evaluate_construct`` remain as deprecated shims. Solutions crossing the
public API are still dicts mapping :class:`Var` to terms.
"""

from __future__ import annotations

import operator
import re
import time
import warnings
import weakref
from typing import Callable, Iterable, Iterator

from repro import obs
from repro.errors import QueryEvaluationError
from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.terms import (
    Literal,
    Term,
    URIRef,
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
)
from repro.sparql.ast import (
    AskQuery,
    BGP,
    Bind,
    BooleanOp,
    Comparison,
    ExistsExpr,
    Expr,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    Not,
    OptionalPattern,
    OrderCondition,
    PatternTerm,
    SelectQuery,
    TermExpr,
    TriplePattern,
    UnionPattern,
    ValuesClause,
    Var,
    VarExpr,
)
from repro.sparql.paths import PathExpr, eval_path

Solution = dict[Var, Term]

#: Input-row threshold above which a pattern stage switches from per-row
#: index probes to a build-once hash join.
HASH_JOIN_MIN_ROWS = 8

#: Guard against degenerate hash builds: the build-side scan (the pattern's
#: matches with only constants bound) may be at most this many triples per
#: input row, otherwise nested-loop probing is cheaper.
HASH_JOIN_SCAN_FACTOR = 64


class EvalObserver:
    """Hook protocol for per-operator instrumentation (EXPLAIN ANALYZE).

    The default evaluator never constructs one; :mod:`repro.sparql.explain`
    implements it to meter rows in/out, wall time, and join strategy per
    operator. Hooks are pure listeners — they never change semantics.

    .. versionchanged:: 1.6
       The streaming ``pattern_stage`` / ``filter_stage`` wrappers of the
       nested-loop evaluator were replaced by the post-hoc
       :meth:`pattern_profile` / :meth:`filter_profile` callbacks, matching
       the materialized ID-space pipeline.
    """

    def pattern_profile(
        self,
        pattern: TriplePattern,
        strategy: str,
        rows_in: int,
        rows_out: int,
        seconds: float,
    ) -> None:
        raise NotImplementedError

    def filter_profile(
        self, expression: Expr, rows_in: int, rows_out: int, seconds: float
    ) -> None:
        raise NotImplementedError

    def modifier(self, op: str, rows_in: int, rows_out: int, seconds: float) -> None:
        raise NotImplementedError


class _StatsObserver(EvalObserver):
    """Routes evaluator profile callbacks into a
    :class:`~repro.obs.accounting.QueryStats` ledger.

    Constructed only when per-query accounting (or the slowlog) is active;
    the default execution path never allocates one, keeping the off state
    byte-identical to pre-accounting behaviour.
    """

    __slots__ = ("stats",)

    def __init__(self, stats):
        self.stats = stats

    def pattern_profile(self, pattern, strategy, rows_in, rows_out, seconds):
        self.stats.note_strategy(strategy, rows_in, rows_out, seconds)
        self.stats.note_phase("match", seconds)

    def filter_profile(self, expression, rows_in, rows_out, seconds):
        self.stats.note_phase("filter", seconds)

    def modifier(self, op, rows_in, rows_out, seconds):
        self.stats.note_phase(op, seconds)


#: Sentinel raised internally when a FILTER expression has an error —
#: per SPARQL semantics an erroring FILTER eliminates the solution.
class _ExpressionError(Exception):
    pass


# --------------------------------------------------------------------- #
# ID-space machinery: codec, slot layout, row helpers
# --------------------------------------------------------------------- #


class _Codec:
    """Per-query term<->ID codec over the graph's dictionary.

    Graph terms keep their non-negative dictionary IDs. Terms produced by
    the query itself (BIND results, VALUES constants, caller bindings) that
    the graph has never interned get *negative* overlay IDs, so equal terms
    always share one ID, probing the graph with them naturally matches
    nothing, and the graph's dictionary is never grown by a read.
    """

    __slots__ = ("base", "_local_ids", "_local_terms")

    def __init__(self, base: TermDictionary):
        self.base = base
        self._local_ids: dict[Term, int] = {}
        self._local_terms: list[Term] = []

    def encode(self, term: Term) -> int:
        term_id = self.base.lookup(term)
        if term_id is not None:
            return term_id
        term_id = self._local_ids.get(term)
        if term_id is None:
            self._local_terms.append(term)
            term_id = -len(self._local_terms)
            self._local_ids[term] = term_id
        return term_id

    def decode(self, term_id: int) -> Term:
        if term_id >= 0:
            return self.base.decode(term_id)
        return self._local_terms[-term_id - 1]


class _CountingCodec(_Codec):
    """A codec that tallies decodes into a QueryStats ledger.

    Substituted for :class:`_Codec` only when accounting is collecting, so
    the default hot path keeps the base class's zero-overhead decode.
    """

    __slots__ = ("stats",)

    def __init__(self, base: TermDictionary, stats):
        super().__init__(base)
        self.stats = stats

    def decode(self, term_id: int) -> Term:
        self.stats.decodes += 1
        return _Codec.decode(self, term_id)


class _Layout:
    """Shared variable-slot layout: maps row keys to tuple positions.

    Keys are :class:`Var` objects plus internal sentinels (e.g. OPTIONAL
    origin markers). Rows are plain tuples, allowed to be *shorter* than
    the layout — missing tail slots read as unbound, so extending a row
    never copies unrelated columns eagerly.
    """

    __slots__ = ("keys", "index")

    def __init__(self) -> None:
        self.keys: list = []
        self.index: dict = {}

    def slot(self, key) -> int:
        position = self.index.get(key)
        if position is None:
            position = len(self.keys)
            self.index[key] = position
            self.keys.append(key)
        return position


def _row_get(row: tuple, slot: int):
    return row[slot] if slot < len(row) else None


def _row_set(row: tuple, slot: int, value) -> tuple:
    width = len(row)
    if slot < width:
        return row[:slot] + (value,) + row[slot + 1:]
    return row + (None,) * (slot - width) + (value,)


def _encode_solution(codec: _Codec, layout: _Layout, solution: Solution) -> tuple:
    if not solution:
        return ()
    assignments = [
        (layout.slot(var), codec.encode(term)) for var, term in solution.items()
    ]
    width = max(slot for slot, _ in assignments) + 1
    row = [None] * width
    for slot, value in assignments:
        row[slot] = value
    return tuple(row)


def _decode_row(
    codec: _Codec, layout: _Layout, row: tuple, variables: Iterable[Var] | None = None
) -> Solution:
    """Row -> solution dict; sentinel (non-Var) slots are skipped.

    ``variables`` restricts decoding to the named variables (the
    expression/aggregation fast path); None decodes every bound Var slot.
    """
    solution: Solution = {}
    if variables is None:
        keys = layout.keys
        for index, value in enumerate(row):
            if value is not None:
                key = keys[index]
                if type(key) is Var:
                    solution[key] = codec.decode(value)
        return solution
    index_of = layout.index
    width = len(row)
    for var in variables:
        slot = index_of.get(var)
        if slot is not None and slot < width:
            value = row[slot]
            if value is not None:
                solution[var] = codec.decode(value)
    return solution


def _expr_vars(expr: Expr) -> set[Var] | None:
    """Variables an expression reads, or None when it needs the full row
    (EXISTS re-evaluates a whole group under the current bindings)."""
    if isinstance(expr, TermExpr):
        return set()
    if isinstance(expr, VarExpr):
        return {expr.var}
    if isinstance(expr, Not):
        return _expr_vars(expr.operand)
    if isinstance(expr, (BooleanOp, Comparison)):
        left = _expr_vars(expr.left)
        right = _expr_vars(expr.right)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(expr, FunctionCall):
        out: set[Var] = set()
        for arg in expr.args:
            sub = _expr_vars(arg)
            if sub is None:
                return None
            out |= sub
        return out
    return None  # ExistsExpr and anything unknown: decode everything


def _bound_vars(layout: _Layout, rows: list[tuple]) -> set[Var]:
    """Variables bound in (a sample of) the incoming rows.

    Seeds the optimizer's join-order search for nested BGPs: a variable
    the enclosing group has already bound makes patterns mentioning it
    selective probes. Sampling the first few rows is exact for the common
    homogeneous case and merely a heuristic after UNIONs — ordering never
    affects results, only speed.
    """
    if not rows:
        return set()
    sample = rows[:8]
    bound: set[Var] = set()
    for key, slot in layout.index.items():
        if type(key) is Var and all(
            slot < len(row) and row[slot] is not None for row in sample
        ):
            bound.add(key)
    return bound


class _BGPOrderMemo:
    """Per-prepared-query cache of optimizer join orders.

    Keyed by BGP node identity plus the bound-variable context, and
    validated against the target graph's
    :attr:`~repro.rdf.graph.Graph.version`, so a repeated
    ``PreparedQuery.execute`` on an unchanged graph skips
    :func:`~repro.sparql.optimizer.reorder_bgp` entirely.
    """

    __slots__ = ("_orders",)

    def __init__(self) -> None:
        self._orders: dict[int, tuple] = {}

    def ordered(self, graph: Graph, bgp: BGP, bound: set[Var]) -> BGP:
        from repro.sparql.optimizer import reorder_bgp

        key = id(bgp)
        entry = self._orders.get(key)
        if entry is not None:
            graph_ref, version, bound_key, ordered = entry
            if (
                graph_ref() is graph
                and version == graph.version
                and bound_key == bound
            ):
                return ordered
        ordered = reorder_bgp(graph, bgp, bound)
        self._orders[key] = (weakref.ref(graph), graph.version, set(bound), ordered)
        return ordered


# --------------------------------------------------------------------- #
# Pattern stages (ID space)
# --------------------------------------------------------------------- #


def _eval_path_pattern(
    graph: Graph, codec: _Codec, pattern: TriplePattern, layout: _Layout, rows: list[tuple]
) -> list[tuple]:
    """Property-path stage: per-row term-space BFS via :func:`eval_path`."""
    s_var = isinstance(pattern.subject, Var)
    o_var = isinstance(pattern.object, Var)
    s_slot = layout.slot(pattern.subject) if s_var else -1
    o_slot = layout.slot(pattern.object) if o_var else -1
    out: list[tuple] = []
    for row in rows:
        if s_var:
            s_id = _row_get(row, s_slot)
            s = codec.decode(s_id) if s_id is not None else None
        else:
            s = pattern.subject
        if o_var:
            o_id = _row_get(row, o_slot)
            o = codec.decode(o_id) if o_id is not None else None
        else:
            o = pattern.object
        for source, target in eval_path(graph, pattern.predicate, s, o):
            extended = row
            if s_var:
                value = codec.encode(source)
                current = _row_get(extended, s_slot)
                if current is None:
                    extended = _row_set(extended, s_slot, value)
                elif current != value:
                    continue
            if o_var:
                value = codec.encode(target)
                current = _row_get(extended, o_slot)
                if current is None:
                    extended = _row_set(extended, o_slot, value)
                elif current != value:
                    continue
            out.append(extended)
    return out


def _eval_pattern_ids(
    graph: Graph, codec: _Codec, pattern: TriplePattern, layout: _Layout, rows: list[tuple]
) -> tuple[list[tuple], str]:
    """One BGP pattern stage over ID rows; returns (rows, strategy used)."""
    obs.inc("sparql.patterns.matched")
    if isinstance(pattern.predicate, PathExpr):
        return _eval_path_pattern(graph, codec, pattern, layout, rows), "path-scan"

    # Classify positions: (is_var, slot-or-const-id) per s/p/o.
    spec: list[tuple[bool, int]] = []
    var_slots: list[int] = []
    for position in (pattern.subject, pattern.predicate, pattern.object):
        if isinstance(position, Var):
            slot = layout.slot(position)
            spec.append((True, slot))
            if slot not in var_slots:
                var_slots.append(slot)
        else:
            term_id = graph.dictionary.lookup(position)
            if term_id is None:
                return [], "index-nested-loop"  # constant the graph never saw
            spec.append((False, term_id))

    if not var_slots:  # fully-constant pattern: a membership probe
        probe = tuple(value for _, value in spec)
        exists = next(graph.triples_ids(*probe), None) is not None
        return (list(rows) if exists else []), "index-nested-loop"

    const_probe = tuple(None if is_var else value for is_var, value in spec)
    out: list[tuple] = []
    strategy = "index-nested-loop"

    # Rows may differ in which pattern variables they bind (e.g. after a
    # UNION); each bound-mask group joins independently. Masks are small
    # bitmask ints (a pattern has at most three variables) rather than
    # tuples — this grouping runs once per input row.
    groups: dict[int, list[tuple]] = {}
    for row in rows:
        width = len(row)
        mask = 0
        bit = 1
        for slot in var_slots:
            if slot < width and row[slot] is not None:
                mask |= bit
            bit <<= 1
        bucket = groups.get(mask)
        if bucket is None:
            groups[mask] = bucket = []
        bucket.append(row)

    for mask, group in groups.items():
        bound = {slot for index, slot in enumerate(var_slots) if mask & (1 << index)}
        # positions contributing to the join key / to new bindings
        key_positions = [
            index for index, (is_var, slot) in enumerate(spec) if is_var and slot in bound
        ]
        free_positions = [
            (index, slot)
            for index, (is_var, slot) in enumerate(spec)
            if is_var and slot not in bound
        ]
        free_slots: list[int] = []
        for _, slot in free_positions:
            if slot not in free_slots:
                free_slots.append(slot)

        use_hash = False
        if len(group) >= HASH_JOIN_MIN_ROWS:
            if not key_positions:
                use_hash = True  # cross product: always enumerate once
            else:
                scan = graph.count_ids(*const_probe)
                use_hash = scan <= HASH_JOIN_SCAN_FACTOR * len(group)

        if use_hash:
            strategy = "hash-join"
            _hash_join_group(
                graph, group, spec, const_probe, key_positions, free_positions, free_slots, out
            )
        else:
            _nested_loop_group(graph, group, spec, free_positions, free_slots, out)
    return out, strategy


def _bind_free(row: tuple, match: tuple, free_positions, free_slots) -> tuple | None:
    """Extend ``row`` with a match's values for the free slots (None when a
    repeated variable disagrees with itself within the match)."""
    if not free_slots:
        return row  # pattern acted as a pure existence filter
    values: dict[int, int] = {}
    for index, slot in free_positions:
        value = match[index]
        previous = values.get(slot)
        if previous is None:
            values[slot] = value
        elif previous != value:
            return None
    width = max(len(row), max(free_slots) + 1)
    extended = list(row) + [None] * (width - len(row))
    for slot, value in values.items():
        extended[slot] = value
    return tuple(extended)


def _nested_loop_group(
    graph: Graph, group: list[tuple], spec, free_positions, free_slots, out: list[tuple]
) -> None:
    """Per-row index probes with the row's bindings substituted; results
    are appended to ``out``."""
    triples_ids = graph.triples_ids
    append = out.append
    if not free_positions:
        # existence filter: every position is bound, so each probe is a
        # fully-constant membership test and the row passes unchanged
        for row in group:
            width = len(row)
            probe = [
                (row[value] if value < width else None) if is_var else value
                for is_var, value in spec
            ]
            if next(triples_ids(*probe), None) is not None:
                append(row)
        return
    if len(free_positions) == 1:
        # fast path for the dominant shape — the pattern introduces exactly
        # one new variable, and a new variable's slot usually sits right at
        # the end of the row, so extending is a plain tuple append
        position, slot = free_positions[0]
        for row in group:
            width = len(row)
            probe = [
                (row[value] if value < width else None) if is_var else value
                for is_var, value in spec
            ]
            if slot == width:
                for match in triples_ids(*probe):
                    append(row + (match[position],))
            else:
                for match in triples_ids(*probe):
                    append(_row_set(row, slot, match[position]))
        return
    for row in group:
        width = len(row)
        probe = [
            (row[value] if value < width else None) if is_var else value
            for is_var, value in spec
        ]
        for match in triples_ids(*probe):
            extended = _bind_free(row, match, free_positions, free_slots)
            if extended is not None:
                append(extended)


def _hash_join_group(
    graph: Graph, group: list[tuple], spec, const_probe, key_positions, free_positions,
    free_slots, out: list[tuple]
) -> None:
    """Build-once hash join: bucket pattern matches by the join key, then
    probe every input row against the table; results are appended to
    ``out``."""
    append = out.append
    if len(key_positions) == 1 and len(free_positions) == 1:
        # fast path for the dominant shape — one join variable, one new
        # variable: scalar keys, scalar bucket values, tuple-append output
        key_position = key_positions[0]
        free_position, free_slot = free_positions[0]
        scalar_table: dict[int, list[int]] = {}
        for match in graph.triples_ids(*const_probe):
            value = match[key_position]
            bucket = scalar_table.get(value)
            if bucket is None:
                scalar_table[value] = [match[free_position]]
            else:
                bucket.append(match[free_position])
        if not scalar_table:
            return
        key_slot = spec[key_position][1]
        table_get = scalar_table.get
        for row in group:
            width = len(row)
            hits = table_get(row[key_slot] if key_slot < width else None)
            if hits is None:
                continue
            if free_slot == width:
                for value in hits:
                    append(row + (value,))
            else:
                for value in hits:
                    append(_row_set(row, free_slot, value))
        return
    table: dict[tuple, list[tuple]] = {}
    free_width = (max(free_slots) + 1) if free_slots else 0
    for match in graph.triples_ids(*const_probe):
        values: dict[int, int] = {}
        consistent = True
        for index, slot in free_positions:
            value = match[index]
            previous = values.get(slot)
            if previous is None:
                values[slot] = value
            elif previous != value:
                consistent = False
                break
        if not consistent:
            continue
        key = tuple(match[index] for index in key_positions)
        table.setdefault(key, []).append(
            tuple(values[slot] for slot in free_slots)
        )
    if not table:
        return
    key_slots = [spec[index][1] for index in key_positions]
    table_get = table.get
    if not free_slots:
        # existence (semi-)join: the pattern binds nothing new, so a row
        # passes through unchanged, once per matching triple
        for row in group:
            width = len(row)
            key = tuple(
                (row[slot] if slot < width else None) for slot in key_slots
            )
            hits = table_get(key)
            if hits is not None:
                for _ in hits:
                    append(row)
        return
    for row in group:
        width = len(row)
        key = tuple((row[slot] if slot < width else None) for slot in key_slots)
        hits = table_get(key)
        if hits is None:
            continue
        padded = max(width, free_width)
        base = list(row) + [None] * (padded - width)
        for values in hits:
            extended = base.copy()
            for slot, value in zip(free_slots, values):
                extended[slot] = value
            append(tuple(extended))


# --------------------------------------------------------------------- #
# Group evaluation (ID space)
# --------------------------------------------------------------------- #


def _eval_group_ids(
    graph: Graph,
    codec: _Codec,
    group: GroupGraphPattern,
    layout: _Layout,
    rows: list[tuple],
    observer: EvalObserver | None = None,
    memo: _BGPOrderMemo | None = None,
) -> list[tuple]:
    filters: list[Expr] = []
    for child in group.children:
        if isinstance(child, BGP):
            bgp = child
            if len(bgp.patterns) > 1:
                seed = _bound_vars(layout, rows)
                if memo is not None:
                    bgp = memo.ordered(graph, bgp, seed)
                else:
                    from repro.sparql.optimizer import reorder_bgp

                    bgp = reorder_bgp(graph, bgp, seed)
            for pattern in bgp.patterns:
                rows_in = len(rows)
                started = time.perf_counter()
                rows, strategy = _eval_pattern_ids(graph, codec, pattern, layout, rows)
                if observer is not None:
                    observer.pattern_profile(
                        pattern, strategy, rows_in, len(rows),
                        time.perf_counter() - started,
                    )
        elif isinstance(child, Filter):
            filters.append(child.expression)
        elif isinstance(child, GroupGraphPattern):
            rows = _eval_group_ids(graph, codec, child, layout, rows, observer, memo)
        elif isinstance(child, OptionalPattern):
            if rows:
                rows = _eval_optional(graph, codec, child, layout, rows, observer, memo)
        elif isinstance(child, UnionPattern):
            next_rows: list[tuple] = []
            for alternative in child.alternatives:
                next_rows.extend(
                    _eval_group_ids(
                        graph, codec, alternative, layout, list(rows), observer, memo
                    )
                )
            rows = next_rows
        elif isinstance(child, Bind):
            rows = _eval_bind(graph, codec, child, layout, rows)
        elif isinstance(child, ValuesClause):
            rows = _eval_values(codec, child, layout, rows)
        else:
            raise QueryEvaluationError(f"unknown pattern node: {type(child).__name__}")
    if filters:
        pairs = [(row, _decode_row(codec, layout, row)) for row in rows]
        if observer is not None:
            # one pass per FILTER so each gets its own rows in/out; the
            # conjunction is order-independent (an erroring filter is
            # False), so per-filter sequencing preserves `all(...)`.
            for expression in filters:
                rows_in = len(pairs)
                started = time.perf_counter()
                pairs = [
                    (row, solution)
                    for row, solution in pairs
                    if _filter_passes(expression, solution, graph)
                ]
                observer.filter_profile(
                    expression, rows_in, len(pairs), time.perf_counter() - started
                )
        else:
            pairs = [
                (row, solution)
                for row, solution in pairs
                if all(_filter_passes(expr, solution, graph) for expr in filters)
            ]
        rows = [row for row, _ in pairs]
    return rows


def _eval_optional(
    graph: Graph,
    codec: _Codec,
    child: OptionalPattern,
    layout: _Layout,
    rows: list[tuple],
    observer: EvalObserver | None,
    memo: _BGPOrderMemo | None,
) -> list[tuple]:
    """Batched left outer join: tag every input row with its position in a
    sentinel slot, evaluate the optional group over the whole batch once,
    then route extensions back to their origin rows (unmatched rows pass
    through unchanged — and untagged)."""
    origin_slot = layout.slot(object())  # fresh sentinel key, never a Var
    seeded = [_row_set(row, origin_slot, index) for index, row in enumerate(rows)]
    matched = _eval_group_ids(graph, codec, child.pattern, layout, seeded, observer, memo)
    by_origin: dict[int, list[tuple]] = {}
    for row in matched:
        by_origin.setdefault(row[origin_slot], []).append(row)
    out: list[tuple] = []
    for index, row in enumerate(rows):
        extensions = by_origin.get(index)
        if extensions:
            out.extend(extensions)
        else:
            out.append(row)
    return out


def _eval_bind(
    graph: Graph, codec: _Codec, child: Bind, layout: _Layout, rows: list[tuple]
) -> list[tuple]:
    slot = layout.slot(child.var)
    needed = _expr_vars(child.expression)
    out: list[tuple] = []
    for row in rows:
        if _row_get(row, slot) is not None:
            raise QueryEvaluationError(
                f"BIND would rebind already-bound variable {child.var}"
            )
        solution = _decode_row(codec, layout, row, needed)
        try:
            value = eval_expression(child.expression, solution, graph)
        except _ExpressionError:
            value = None  # an erroring BIND leaves the var unbound
        if value is not None:
            row = _row_set(row, slot, codec.encode(_as_term(value)))
        out.append(row)
    return out


def _eval_values(
    codec: _Codec, child: ValuesClause, layout: _Layout, rows: list[tuple]
) -> list[tuple]:
    slots = [layout.slot(var) for var in child.variables]
    encoded = [
        tuple(codec.encode(term) if term is not None else None for term in vrow)
        for vrow in child.rows
    ]
    out: list[tuple] = []
    for row in rows:
        for vrow in encoded:
            extended = row
            compatible = True
            for slot, value in zip(slots, vrow):
                if value is None:  # UNDEF leaves the variable free
                    continue
                current = _row_get(extended, slot)
                if current is None:
                    extended = _row_set(extended, slot, value)
                elif current != value:
                    compatible = False
                    break
            if compatible:
                out.append(extended)
    return out


# --------------------------------------------------------------------- #
# Term-space compatibility surface (federation endpoints, EXISTS)
# --------------------------------------------------------------------- #


def _resolve(term: PatternTerm, solution: Solution) -> Term | None:
    """Concrete term for a pattern position under ``solution`` (None = free)."""
    if isinstance(term, Var):
        return solution.get(term)
    return term


def match_pattern(
    graph: Graph, pattern: TriplePattern, solutions: Iterable[Solution]
) -> Iterator[Solution]:
    """Extend each incoming solution with all graph matches of ``pattern``.

    The term-dict streaming surface used by federation endpoints (bound
    joins arrive as solution dicts over the wire); probes run against the
    ID indexes internally.
    """
    obs.inc("sparql.patterns.matched")
    if isinstance(pattern.predicate, PathExpr):
        for solution in solutions:
            s = _resolve(pattern.subject, solution)
            o = _resolve(pattern.object, solution)
            for source, target in eval_path(graph, pattern.predicate, s, o):
                extended = dict(solution)
                ok = True
                for position, value in ((pattern.subject, source), (pattern.object, target)):
                    if isinstance(position, Var):
                        bound = extended.get(position)
                        if bound is None:
                            extended[position] = value
                        elif bound != value:
                            ok = False
                            break
                if ok:
                    yield extended
        return
    dictionary = graph.dictionary
    positions = (pattern.subject, pattern.predicate, pattern.object)
    consts: list[int | None] = []
    for position in positions:
        if isinstance(position, Var):
            consts.append(None)
        else:
            term_id = dictionary.lookup(position)
            if term_id is None:
                return  # a constant the graph has never interned
            consts.append(term_id)
    decode = dictionary.decode
    for solution in solutions:
        probe = list(consts)
        known = True
        for index, position in enumerate(positions):
            if probe[index] is None:
                bound = solution.get(position)
                if bound is not None:
                    bound_id = dictionary.lookup(bound)
                    if bound_id is None:
                        known = False
                        break
                    probe[index] = bound_id
        if not known:
            continue
        for match in graph.triples_ids(*probe):
            extended = dict(solution)
            ok = True
            for index, position in enumerate(positions):
                if isinstance(position, Var):
                    value = decode(match[index])
                    bound = extended.get(position)
                    if bound is None:
                        extended[position] = value
                    elif bound != value:
                        ok = False
                        break
            if ok:
                yield extended


def eval_bgp(
    graph: Graph,
    bgp: BGP,
    solutions: Iterable[Solution],
    optimize: bool = True,
) -> Iterator[Solution]:
    """Join a BGP over solution dicts (term-space compatibility surface)."""
    if optimize and len(bgp.patterns) > 1:
        from repro.sparql.optimizer import reorder_bgp

        bgp = reorder_bgp(graph, bgp)
    streams: Iterator[Solution] = iter(solutions)
    for pattern in bgp.patterns:
        streams = match_pattern(graph, pattern, streams)
    return streams


def _join_compatible(left: Solution, right: Solution) -> Solution | None:
    """Merge two solutions; None when they disagree on a shared variable."""
    merged = dict(left)
    for var, value in right.items():
        bound = merged.get(var)
        if bound is None:
            merged[var] = value
        elif bound != value:
            return None
    return merged


def eval_group(
    graph: Graph,
    group: GroupGraphPattern,
    solutions: Iterable[Solution] | None = None,
    observer: EvalObserver | None = None,
) -> list[Solution]:
    """Evaluate a group pattern over solution dicts.

    A thin boundary over the ID-space engine: encode, join, decode.
    ``observer`` (see :mod:`repro.sparql.explain`) receives per-operator
    profiles; ``None`` — the default everywhere — keeps evaluation on the
    unobserved path.
    """
    codec = _Codec(graph.dictionary)
    layout = _Layout()
    if solutions is None:
        rows: list[tuple] = [()]
    else:
        rows = [_encode_solution(codec, layout, solution) for solution in solutions]
    rows = _eval_group_ids(graph, codec, group, layout, rows, observer)
    return [_decode_row(codec, layout, row) for row in rows]


def _as_term(value) -> Term:
    """Lower a Python expression result to an RDF term for BIND."""
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=XSD_BOOLEAN)
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD_INTEGER)
    if isinstance(value, float):
        return Literal(repr(value), datatype=XSD_DOUBLE)
    if isinstance(value, str):
        return Literal(value)
    raise QueryEvaluationError(f"cannot convert {type(value).__name__} to an RDF term")


def _filter_passes(expr: Expr, solution: Solution, graph: Graph | None = None) -> bool:
    try:
        return _effective_boolean(eval_expression(expr, solution, graph))
    except _ExpressionError:
        return False


# --------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------- #


def eval_expression(expr: Expr, solution: Solution, graph: Graph | None = None):
    """Evaluate a FILTER expression to a Python value or RDF term.

    ``graph`` is required only for EXISTS / NOT EXISTS, which re-evaluate a
    group pattern under the current bindings.
    """
    if isinstance(expr, TermExpr):
        return expr.term
    if isinstance(expr, VarExpr):
        value = solution.get(expr.var)
        if value is None:
            raise _ExpressionError(f"unbound variable {expr.var}")
        return value
    if isinstance(expr, Not):
        return not _effective_boolean(eval_expression(expr.operand, solution, graph))
    if isinstance(expr, BooleanOp):
        left = _effective_boolean(eval_expression(expr.left, solution, graph))
        if expr.op == "&&":
            return left and _effective_boolean(eval_expression(expr.right, solution, graph))
        return left or _effective_boolean(eval_expression(expr.right, solution, graph))
    if isinstance(expr, Comparison):
        return _compare(
            expr.op,
            eval_expression(expr.left, solution, graph),
            eval_expression(expr.right, solution, graph),
        )
    if isinstance(expr, FunctionCall):
        return _call_function(expr, solution)
    if isinstance(expr, ExistsExpr):
        if graph is None:
            raise QueryEvaluationError(
                "EXISTS/NOT EXISTS requires local graph evaluation"
            )
        matched = bool(eval_group(graph, expr.pattern, [dict(solution)]))
        return (not matched) if expr.negated else matched
    raise QueryEvaluationError(f"unknown expression node: {type(expr).__name__}")


def _effective_boolean(value) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, Literal):
        python = value.to_python()
        if isinstance(python, bool):
            return python
        if isinstance(python, (int, float)):
            return python != 0
        return bool(value.lexical)
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return bool(value)
    raise _ExpressionError(f"no effective boolean value for {value!r}")


def _comparable(value):
    """Lower RDF terms to comparable Python values."""
    if isinstance(value, Literal):
        return value.to_python()
    if isinstance(value, URIRef):
        return value.value
    return value


def _compare(op: str, left, right) -> bool:
    # Term equality for =/!= when both are terms of the same kind.
    if op in ("=", "!="):
        if isinstance(left, Term) and isinstance(right, Term) and type(left) is type(right):
            equal = left == right
            if not equal and isinstance(left, Literal) and isinstance(right, Literal):
                lp, rp = left.to_python(), right.to_python()
                if isinstance(lp, (int, float)) and isinstance(rp, (int, float)):
                    equal = lp == rp
            return equal if op == "=" else not equal
    left_value, right_value = _comparable(left), _comparable(right)
    try:
        if op == "=":
            return left_value == right_value
        if op == "!=":
            return left_value != right_value
        if op == "<":
            return left_value < right_value
        if op == "<=":
            return left_value <= right_value
        if op == ">":
            return left_value > right_value
        if op == ">=":
            return left_value >= right_value
    except TypeError as exc:
        raise _ExpressionError(str(exc)) from exc
    raise QueryEvaluationError(f"unknown comparison operator {op!r}")


def _string_of(value) -> str:
    if isinstance(value, Literal):
        return value.lexical
    if isinstance(value, URIRef):
        return value.value
    if isinstance(value, str):
        return value
    raise _ExpressionError(f"not a string-valued argument: {value!r}")


def _call_function(expr: FunctionCall, solution: Solution):
    name = expr.name
    if name == "BOUND":
        if len(expr.args) != 1 or not isinstance(expr.args[0], VarExpr):
            raise QueryEvaluationError("BOUND takes exactly one variable")
        return expr.args[0].var in solution

    args = [eval_expression(arg, solution) for arg in expr.args]
    if name == "STR":
        _require_arity(name, args, 1)
        return _string_of(args[0])
    if name == "LANG":
        _require_arity(name, args, 1)
        if isinstance(args[0], Literal):
            return args[0].language or ""
        raise _ExpressionError("LANG requires a literal")
    if name == "DATATYPE":
        _require_arity(name, args, 1)
        if isinstance(args[0], Literal):
            return URIRef(args[0].datatype) if args[0].datatype else URIRef(
                "http://www.w3.org/2001/XMLSchema#string"
            )
        raise _ExpressionError("DATATYPE requires a literal")
    if name == "REGEX":
        if len(args) not in (2, 3):
            raise QueryEvaluationError("REGEX takes 2 or 3 arguments")
        flags = 0
        if len(args) == 3 and "i" in _string_of(args[2]):
            flags = re.IGNORECASE
        try:
            return re.search(_string_of(args[1]), _string_of(args[0]), flags) is not None
        except re.error as exc:
            raise _ExpressionError(f"bad REGEX pattern: {exc}") from exc
    if name == "CONTAINS":
        _require_arity(name, args, 2)
        return _string_of(args[1]) in _string_of(args[0])
    if name == "STRSTARTS":
        _require_arity(name, args, 2)
        return _string_of(args[0]).startswith(_string_of(args[1]))
    if name == "STRENDS":
        _require_arity(name, args, 2)
        return _string_of(args[0]).endswith(_string_of(args[1]))
    if name == "STRLEN":
        _require_arity(name, args, 1)
        return len(_string_of(args[0]))
    if name == "UCASE":
        _require_arity(name, args, 1)
        return _string_of(args[0]).upper()
    if name == "LCASE":
        _require_arity(name, args, 1)
        return _string_of(args[0]).lower()
    if name == "LANGMATCHES":
        _require_arity(name, args, 2)
        tag = _string_of(args[0]).lower()
        pattern = _string_of(args[1]).lower()
        if pattern == "*":
            return bool(tag)
        return tag == pattern or tag.startswith(pattern + "-")
    if name == "ABS":
        _require_arity(name, args, 1)
        value = _comparable(args[0])
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return abs(value)
        raise _ExpressionError("ABS requires a numeric argument")
    if name in ("ISURI", "ISIRI"):
        _require_arity(name, args, 1)
        return isinstance(args[0], URIRef)
    if name == "ISLITERAL":
        _require_arity(name, args, 1)
        return isinstance(args[0], Literal)
    if name == "ISBLANK":
        _require_arity(name, args, 1)
        from repro.rdf.terms import BNode

        return isinstance(args[0], BNode)
    if name == "ISNUMERIC":
        _require_arity(name, args, 1)
        if not isinstance(args[0], Literal):
            return False
        value = args[0].to_python()
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    raise QueryEvaluationError(f"unknown function {name}")


def _require_arity(name: str, args: list, count: int) -> None:
    if len(args) != count:
        raise QueryEvaluationError(f"{name} takes exactly {count} argument(s)")


# --------------------------------------------------------------------- #
# Query results
# --------------------------------------------------------------------- #


class QueryResult:
    """Result of a SELECT: ordered rows of projected bindings."""

    def __init__(self, variables: list[Var], rows: list[Solution]):
        self.variables = variables
        self.rows = rows
        #: Per-query resource accounting (:class:`repro.obs.QueryStats`)
        #: when accounting or the slowlog is enabled; None otherwise.
        self.stats = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Solution]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def column(self, var: Var | str) -> list[Term | None]:
        """All values of one variable, in row order."""
        if isinstance(var, str):
            var = Var(var.lstrip("?"))
        return [row.get(var) for row in self.rows]

    def as_tuples(self) -> list[tuple]:
        """Rows as tuples in the projected variable order."""
        return [tuple(row.get(v) for v in self.variables) for row in self.rows]

    def __repr__(self):
        return f"<QueryResult {len(self.rows)} rows x {len(self.variables)} vars>"


def _order_key_for(value) -> tuple:
    """Total order across None < literals/numbers < strings < URIs."""
    if value is None:
        return (0, "", "")
    if isinstance(value, Literal):
        python = value.to_python()
        if isinstance(python, bool):
            return (1, "", str(python))
        if isinstance(python, (int, float)):
            return (2, "", f"{float(python):040.10f}")
        return (3, "", str(python))
    if isinstance(value, URIRef):
        return (4, "", value.value)
    return (5, "", str(value))


def _observed_stage(observer, op: str, rows_in: int, stage: Callable[[], list]):
    """Run one solution-modifier stage, reporting rows/time to the observer."""
    if observer is None:
        return stage()
    started = time.perf_counter()
    out = stage()
    observer.modifier(op, rows_in, len(out), time.perf_counter() - started)
    return out


# --------------------------------------------------------------------- #
# Query execution pipelines (internal; PreparedQuery is the public door)
# --------------------------------------------------------------------- #


def _initial_rows(
    codec: _Codec, layout: _Layout, bindings: Solution | None
) -> list[tuple]:
    if not bindings:
        return [()]
    normalized: Solution = {}
    for key, term in bindings.items():
        var = Var(key.lstrip("?")) if isinstance(key, str) else key
        normalized[var] = term
    return [_encode_solution(codec, layout, normalized)]


def _make_codec_observer(
    graph: Graph, observer: EvalObserver | None, stats
) -> tuple[_Codec, EvalObserver | None]:
    """The (codec, observer) pair for one execution: plain when accounting
    is off; decode-counting + stats-observing when a QueryStats collects."""
    if stats is None:
        return _Codec(graph.dictionary), observer
    codec = _CountingCodec(graph.dictionary, stats)
    if observer is None:
        observer = _StatsObserver(stats)
    return codec, observer


def _execute_select(
    graph: Graph,
    query: SelectQuery,
    observer: EvalObserver | None = None,
    bindings: Solution | None = None,
    memo: _BGPOrderMemo | None = None,
    stats=None,
) -> QueryResult:
    codec, observer = _make_codec_observer(graph, observer, stats)
    layout = _Layout()
    id_rows = _initial_rows(codec, layout, bindings)
    id_rows = _eval_group_ids(graph, codec, query.where, layout, id_rows, observer, memo)
    if id_rows:
        obs.inc("sparql.solutions.produced", len(id_rows))
    projected = query.projected()

    if query.is_aggregated:
        rows = _observed_stage(
            observer,
            "aggregate",
            len(id_rows),
            lambda: _aggregate_rows_ids(query, codec, layout, id_rows),
        )
        return QueryResult(projected, _finalize_term_rows(query, rows, observer))

    slots = [layout.index.get(var) for var in projected]

    def project() -> list[tuple]:
        out = []
        if all(slot is not None for slot in slots):
            # fast path: every projected variable has a slot, and joins
            # usually produce full-width rows, so a C-level itemgetter
            # covers the common case
            min_width = max(slots) + 1
            getter = (
                operator.itemgetter(*slots)
                if len(slots) > 1
                else (lambda row, _slot=slots[0]: (row[_slot],))
            )
            for row in id_rows:
                if len(row) >= min_width:
                    out.append(getter(row))
                else:
                    width = len(row)
                    out.append(
                        tuple(row[slot] if slot < width else None for slot in slots)
                    )
            return out
        for row in id_rows:
            width = len(row)
            out.append(
                tuple(
                    row[slot] if (slot is not None and slot < width) else None
                    for slot in slots
                )
            )
        return out

    projected_rows = _observed_stage(observer, "project", len(id_rows), project)

    if query.distinct:
        def deduplicate() -> list[tuple]:
            # interning makes ID equality coincide with term equality, so
            # the projected ID tuple is a complete dedup key
            seen: set[tuple] = set()
            unique: list[tuple] = []
            for row in projected_rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            return unique

        projected_rows = _observed_stage(
            observer, "distinct", len(projected_rows), deduplicate
        )

    def to_solution(id_row: tuple) -> Solution:
        return {
            var: codec.decode(value)
            for var, value in zip(projected, id_row)
            if value is not None
        }

    if query.order_by:
        rows = [to_solution(row) for row in projected_rows]
        rows = _observed_stage(
            observer, "order", len(rows), lambda: _order_rows(query, rows)
        )
        rows = _slice_rows(query, rows, observer)
        return QueryResult(projected, rows)

    projected_rows = _slice_rows(query, projected_rows, observer)
    return QueryResult(projected, [to_solution(row) for row in projected_rows])


def _finalize_term_rows(
    query: SelectQuery, rows: list[Solution], observer: EvalObserver | None
) -> list[Solution]:
    """DISTINCT / ORDER / slice over term-space rows (the aggregate path)."""
    if query.distinct:
        def deduplicate() -> list[Solution]:
            seen: set[tuple] = set()
            unique: list[Solution] = []
            for row in rows:
                key = tuple(sorted(((v.name, t.n3()) for v, t in row.items())))
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            return unique

        rows = _observed_stage(observer, "distinct", len(rows), deduplicate)
    if query.order_by:
        rows = _observed_stage(
            observer, "order", len(rows), lambda: _order_rows(query, rows)
        )
    return _slice_rows(query, rows, observer)


def _order_rows(query: SelectQuery, rows: list[Solution]) -> list[Solution]:
    for condition in reversed(query.order_by):
        def key(row: Solution, cond: OrderCondition = condition):
            try:
                value = eval_expression(cond.expression, row)
            except _ExpressionError:
                value = None
            return _order_key_for(value)

        rows.sort(key=key, reverse=condition.descending)
    return rows


def _slice_rows(query: SelectQuery, rows: list, observer: EvalObserver | None) -> list:
    if not query.offset and query.limit is None:
        return rows

    def slice_rows() -> list:
        out = rows[query.offset:] if query.offset else rows
        return out[: query.limit] if query.limit is not None else out

    return _observed_stage(observer, "slice", len(rows), slice_rows)


def _aggregate_rows(query: SelectQuery, solutions: list[Solution]) -> list[Solution]:
    """GROUP BY + aggregate evaluation: one output row per group."""
    from repro.sparql.aggregates import evaluate_aggregate, group_solutions

    rows: list[Solution] = []
    for key_bindings, members in group_solutions(solutions, query.group_by):
        row = dict(key_bindings)
        for aggregate in query.aggregates:
            value = evaluate_aggregate(aggregate, members)
            if value is not None:
                row[aggregate.alias] = value
        rows.append(row)
    return rows


def _aggregate_rows_ids(
    query: SelectQuery, codec: _Codec, layout: _Layout, id_rows: list[tuple]
) -> list[Solution]:
    """ID-space GROUP BY: group on raw ID tuples (interning makes ID
    equality coincide with the n3-keyed grouping of
    :func:`~repro.sparql.aggregates.group_solutions`), decoding members
    only for the variables the aggregates actually read."""
    from repro.sparql.aggregates import evaluate_aggregate

    aggregate_vars = {
        aggregate.var for aggregate in query.aggregates if aggregate.var is not None
    }
    slots = [layout.index.get(var) for var in query.group_by]
    groups: dict[tuple, list[Solution]] = {}
    order: list[tuple] = []
    if not query.group_by:
        # aggregate-only SELECT: the whole input is one (possibly empty) group
        groups[()] = [_decode_row(codec, layout, row, aggregate_vars) for row in id_rows]
        order.append(())
    else:
        for row in id_rows:
            width = len(row)
            key = tuple(
                row[slot] if (slot is not None and slot < width) else None
                for slot in slots
            )
            members = groups.get(key)
            if members is None:
                groups[key] = members = []
                order.append(key)
            members.append(_decode_row(codec, layout, row, aggregate_vars))
    rows: list[Solution] = []
    for key in order:
        row_out: Solution = {
            var: codec.decode(value)
            for var, value in zip(query.group_by, key)
            if value is not None
        }
        for aggregate in query.aggregates:
            value = evaluate_aggregate(aggregate, groups[key])
            if value is not None:
                row_out[aggregate.alias] = value
        rows.append(row_out)
    return rows


def _execute_ask(
    graph: Graph,
    query: AskQuery,
    observer: EvalObserver | None = None,
    bindings: Solution | None = None,
    memo: _BGPOrderMemo | None = None,
    stats=None,
) -> bool:
    codec, observer = _make_codec_observer(graph, observer, stats)
    layout = _Layout()
    rows = _initial_rows(codec, layout, bindings)
    return bool(_eval_group_ids(graph, codec, query.where, layout, rows, observer, memo))


def _execute_construct(
    graph: Graph,
    query,
    observer: EvalObserver | None = None,
    bindings: Solution | None = None,
    memo: _BGPOrderMemo | None = None,
    stats=None,
) -> Graph:
    """Instantiate the CONSTRUCT template once per solution.

    Template triples with an unbound variable, or whose instantiation would
    be ill-typed (e.g. a literal in subject position), are skipped for that
    solution — SPARQL's standard behaviour.
    """
    from repro.rdf.triples import Triple

    out = Graph(name="constructed")
    codec, observer = _make_codec_observer(graph, observer, stats)
    layout = _Layout()
    rows = _initial_rows(codec, layout, bindings)
    rows = _eval_group_ids(graph, codec, query.where, layout, rows, observer, memo)
    template_vars = {
        position
        for pattern in query.template
        for position in (pattern.subject, pattern.predicate, pattern.object)
        if isinstance(position, Var)
    }
    for row in rows:
        solution = _decode_row(codec, layout, row, template_vars)
        for pattern in query.template:
            terms = []
            ok = True
            for position in (pattern.subject, pattern.predicate, pattern.object):
                term = solution.get(position) if isinstance(position, Var) else position
                if term is None:
                    ok = False
                    break
                terms.append(term)
            if not ok:
                continue
            subject, predicate, obj = terms
            if isinstance(subject, Literal) or not isinstance(predicate, URIRef):
                continue
            out.add(Triple(subject, predicate, obj))
    return out


# --------------------------------------------------------------------- #
# Deprecated direct entry points (pre-1.6); use prepare()/query()
# --------------------------------------------------------------------- #


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def evaluate_select(
    graph: Graph, query: SelectQuery, observer: EvalObserver | None = None
) -> QueryResult:
    """Deprecated alias of ``prepare(...).execute(graph)`` for SELECT ASTs."""
    _deprecated("evaluate_select()", "repro.sparql.prepare(text).execute(graph)")
    return _execute_select(graph, query, observer=observer)


def evaluate_ask(
    graph: Graph, query: AskQuery, observer: EvalObserver | None = None
) -> bool:
    """Deprecated alias of ``prepare(...).execute(graph)`` for ASK ASTs."""
    _deprecated("evaluate_ask()", "repro.sparql.prepare(text).execute(graph)")
    return _execute_ask(graph, query, observer=observer)


def evaluate_construct(graph: Graph, query, observer: EvalObserver | None = None) -> Graph:
    """Deprecated alias of ``prepare(...).execute(graph)`` for CONSTRUCT ASTs."""
    _deprecated("evaluate_construct()", "repro.sparql.prepare(text).execute(graph)")
    return _execute_construct(graph, query, observer=observer)


def query(graph: Graph, text: str, strict: bool = False, profile: bool = False):
    """Parse and evaluate SPARQL ``text`` against ``graph``.

    A thin wrapper over :func:`repro.sparql.prepare` — parsing goes through
    the bounded plan cache (``sparql.plan_cache.{hits,misses}``), so
    repeated production queries skip the parser entirely.

    Returns a :class:`QueryResult` for SELECT, a bool for ASK, or a
    :class:`~repro.rdf.graph.Graph` for CONSTRUCT.

    ``strict=True`` runs :func:`repro.sparql.analysis.check_query` on the
    parsed query (with graph statistics available to the analyzer) and
    raises :class:`~repro.errors.QueryAnalysisError` when any error-level
    diagnostic is found, instead of evaluating a query that can only
    return wrong or empty answers.

    ``profile=True`` executes under per-operator instrumentation (EXPLAIN
    ANALYZE, :mod:`repro.sparql.explain`) and returns a ``(result, plan)``
    pair instead of the bare result; the plan carries rows in/out, wall
    time, and join strategy per operator, and — when a tracer is installed
    — emits ``sparql.operator.eval`` trace events.
    """
    from repro.sparql.prepared import prepare

    obs.inc("sparql.queries")
    with obs.timer("sparql.query.seconds"):
        prepared = prepare(text)
        if strict:
            from repro.sparql.analysis import check_query

            check_query(prepared.plan, graph=graph)
        if profile:
            from repro.sparql.explain import explain

            plan = explain(graph, prepared.plan, analyze=True)
            return plan.result, plan
        return prepared.execute(graph)
