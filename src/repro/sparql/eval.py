"""Evaluation of the SPARQL subset against a :class:`~repro.rdf.graph.Graph`.

Solutions are immutable-by-convention dicts mapping :class:`Var` to RDF
terms. BGPs evaluate by left-to-right index nested-loop joins, substituting
bindings into each successive pattern — simple, predictable, and fast enough
on the indexed store for this library's scale.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, Iterator

from repro import obs
from repro.errors import QueryEvaluationError
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, Term, URIRef, XSD_BOOLEAN
from repro.sparql.ast import (
    AskQuery,
    BGP,
    Bind,
    BooleanOp,
    Comparison,
    ExistsExpr,
    Expr,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    Not,
    OptionalPattern,
    OrderCondition,
    PatternTerm,
    SelectQuery,
    TermExpr,
    TriplePattern,
    UnionPattern,
    ValuesClause,
    Var,
    VarExpr,
)
from repro.sparql.parser import parse_query

Solution = dict[Var, Term]


class EvalObserver:
    """Hook protocol for per-operator instrumentation (EXPLAIN ANALYZE).

    The default evaluator never constructs one; :mod:`repro.sparql.explain`
    implements it to meter rows in/out and wall time per operator. Methods
    must preserve semantics exactly — they wrap stages, never change them.
    """

    def pattern_stage(
        self, graph: Graph, pattern: "TriplePattern", stream: Iterator[Solution]
    ) -> Iterator[Solution]:
        raise NotImplementedError

    def filter_stage(
        self, graph: Graph, filters: "list[Expr]", solutions: list[Solution]
    ) -> list[Solution]:
        raise NotImplementedError

    def modifier(self, op: str, rows_in: int, rows_out: int, seconds: float) -> None:
        raise NotImplementedError


#: Sentinel raised internally when a FILTER expression has an error —
#: per SPARQL semantics an erroring FILTER eliminates the solution.
class _ExpressionError(Exception):
    pass


# --------------------------------------------------------------------- #
# Pattern matching
# --------------------------------------------------------------------- #


def _resolve(term: PatternTerm, solution: Solution) -> Term | None:
    """Concrete term for a pattern position under ``solution`` (None = free)."""
    if isinstance(term, Var):
        return solution.get(term)
    return term


def match_pattern(
    graph: Graph, pattern: TriplePattern, solutions: Iterable[Solution]
) -> Iterator[Solution]:
    """Extend each incoming solution with all graph matches of ``pattern``."""
    from repro.sparql.paths import PathExpr, eval_path

    obs.inc("sparql.patterns.matched")
    if isinstance(pattern.predicate, PathExpr):
        for solution in solutions:
            s = _resolve(pattern.subject, solution)
            o = _resolve(pattern.object, solution)
            for source, target in eval_path(graph, pattern.predicate, s, o):
                extended = dict(solution)
                ok = True
                for position, value in ((pattern.subject, source), (pattern.object, target)):
                    if isinstance(position, Var):
                        bound = extended.get(position)
                        if bound is None:
                            extended[position] = value
                        elif bound != value:
                            ok = False
                            break
                if ok:
                    yield extended
        return
    for solution in solutions:
        s = _resolve(pattern.subject, solution)
        p = _resolve(pattern.predicate, solution)
        o = _resolve(pattern.object, solution)
        for triple in graph.triples(s, p, o):
            extended = dict(solution)
            ok = True
            for position, value in (
                (pattern.subject, triple.subject),
                (pattern.predicate, triple.predicate),
                (pattern.object, triple.object),
            ):
                if isinstance(position, Var):
                    bound = extended.get(position)
                    if bound is None:
                        extended[position] = value
                    elif bound != value:
                        ok = False
                        break
            if ok:
                yield extended


def eval_bgp(
    graph: Graph,
    bgp: BGP,
    solutions: Iterable[Solution],
    optimize: bool = True,
    observer: "EvalObserver | None" = None,
) -> Iterator[Solution]:
    if optimize and len(bgp.patterns) > 1:
        from repro.sparql.optimizer import reorder_bgp

        bgp = reorder_bgp(graph, bgp)
    streams: Iterator[Solution] = iter(solutions)
    for pattern in bgp.patterns:
        if observer is not None:
            streams = observer.pattern_stage(graph, pattern, streams)
        else:
            streams = match_pattern(graph, pattern, streams)
    return streams


def _join_compatible(left: Solution, right: Solution) -> Solution | None:
    """Merge two solutions; None when they disagree on a shared variable."""
    merged = dict(left)
    for var, value in right.items():
        bound = merged.get(var)
        if bound is None:
            merged[var] = value
        elif bound != value:
            return None
    return merged


def eval_group(
    graph: Graph,
    group: GroupGraphPattern,
    solutions: Iterable[Solution] | None = None,
    observer: "EvalObserver | None" = None,
) -> list[Solution]:
    """Evaluate a group pattern, returning materialized solutions.

    ``observer`` (see :mod:`repro.sparql.explain`) receives each pattern
    and filter stage for per-operator instrumentation; ``None`` — the
    default everywhere — keeps evaluation on the unobserved path.
    """
    current: list[Solution] = list(solutions) if solutions is not None else [{}]
    filters: list[Expr] = []
    for child in group.children:
        if isinstance(child, BGP):
            current = list(eval_bgp(graph, child, current, observer=observer))
        elif isinstance(child, Filter):
            filters.append(child.expression)
        elif isinstance(child, GroupGraphPattern):
            current = eval_group(graph, child, current, observer=observer)
        elif isinstance(child, OptionalPattern):
            next_solutions: list[Solution] = []
            for solution in current:
                extensions = eval_group(graph, child.pattern, [solution], observer=observer)
                if extensions:
                    next_solutions.extend(extensions)
                else:
                    next_solutions.append(solution)
            current = next_solutions
        elif isinstance(child, UnionPattern):
            next_solutions = []
            for solution in current:
                for alternative in child.alternatives:
                    next_solutions.extend(
                        eval_group(graph, alternative, [solution], observer=observer)
                    )
            current = next_solutions
        elif isinstance(child, Bind):
            next_solutions = []
            for solution in current:
                if child.var in solution:
                    raise QueryEvaluationError(
                        f"BIND would rebind already-bound variable {child.var}"
                    )
                extended = dict(solution)
                try:
                    value = eval_expression(child.expression, solution, graph)
                except _ExpressionError:
                    value = None  # an erroring BIND leaves the var unbound
                if value is not None:
                    extended[child.var] = _as_term(value)
                next_solutions.append(extended)
            current = next_solutions
        elif isinstance(child, ValuesClause):
            next_solutions = []
            for solution in current:
                for row in child.rows:
                    row_solution = {
                        var: term
                        for var, term in zip(child.variables, row)
                        if term is not None
                    }
                    merged = _join_compatible(solution, row_solution)
                    if merged is not None:
                        next_solutions.append(merged)
            current = next_solutions
        else:
            raise QueryEvaluationError(f"unknown pattern node: {type(child).__name__}")
    if filters:
        if observer is not None:
            current = observer.filter_stage(graph, filters, current)
        else:
            current = [
                solution
                for solution in current
                if all(_filter_passes(expr, solution, graph) for expr in filters)
            ]
    return current


def _as_term(value) -> Term:
    """Lower a Python expression result to an RDF term for BIND."""
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=XSD_BOOLEAN)
    if isinstance(value, int):
        return Literal(str(value), datatype="http://www.w3.org/2001/XMLSchema#integer")
    if isinstance(value, float):
        return Literal(repr(value), datatype="http://www.w3.org/2001/XMLSchema#double")
    if isinstance(value, str):
        return Literal(value)
    raise QueryEvaluationError(f"cannot convert {type(value).__name__} to an RDF term")


def _filter_passes(expr: Expr, solution: Solution, graph: Graph | None = None) -> bool:
    try:
        return _effective_boolean(eval_expression(expr, solution, graph))
    except _ExpressionError:
        return False


# --------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------- #


def eval_expression(expr: Expr, solution: Solution, graph: Graph | None = None):
    """Evaluate a FILTER expression to a Python value or RDF term.

    ``graph`` is required only for EXISTS / NOT EXISTS, which re-evaluate a
    group pattern under the current bindings.
    """
    if isinstance(expr, TermExpr):
        return expr.term
    if isinstance(expr, VarExpr):
        value = solution.get(expr.var)
        if value is None:
            raise _ExpressionError(f"unbound variable {expr.var}")
        return value
    if isinstance(expr, Not):
        return not _effective_boolean(eval_expression(expr.operand, solution, graph))
    if isinstance(expr, BooleanOp):
        left = _effective_boolean(eval_expression(expr.left, solution, graph))
        if expr.op == "&&":
            return left and _effective_boolean(eval_expression(expr.right, solution, graph))
        return left or _effective_boolean(eval_expression(expr.right, solution, graph))
    if isinstance(expr, Comparison):
        return _compare(
            expr.op,
            eval_expression(expr.left, solution, graph),
            eval_expression(expr.right, solution, graph),
        )
    if isinstance(expr, FunctionCall):
        return _call_function(expr, solution)
    if isinstance(expr, ExistsExpr):
        if graph is None:
            raise QueryEvaluationError(
                "EXISTS/NOT EXISTS requires local graph evaluation"
            )
        matched = bool(eval_group(graph, expr.pattern, [dict(solution)]))
        return (not matched) if expr.negated else matched
    raise QueryEvaluationError(f"unknown expression node: {type(expr).__name__}")


def _effective_boolean(value) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, Literal):
        python = value.to_python()
        if isinstance(python, bool):
            return python
        if isinstance(python, (int, float)):
            return python != 0
        return bool(value.lexical)
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return bool(value)
    raise _ExpressionError(f"no effective boolean value for {value!r}")


def _comparable(value):
    """Lower RDF terms to comparable Python values."""
    if isinstance(value, Literal):
        return value.to_python()
    if isinstance(value, URIRef):
        return value.value
    return value


def _compare(op: str, left, right) -> bool:
    # Term equality for =/!= when both are terms of the same kind.
    if op in ("=", "!="):
        if isinstance(left, Term) and isinstance(right, Term) and type(left) is type(right):
            equal = left == right
            if not equal and isinstance(left, Literal) and isinstance(right, Literal):
                lp, rp = left.to_python(), right.to_python()
                if isinstance(lp, (int, float)) and isinstance(rp, (int, float)):
                    equal = lp == rp
            return equal if op == "=" else not equal
    left_value, right_value = _comparable(left), _comparable(right)
    try:
        if op == "=":
            return left_value == right_value
        if op == "!=":
            return left_value != right_value
        if op == "<":
            return left_value < right_value
        if op == "<=":
            return left_value <= right_value
        if op == ">":
            return left_value > right_value
        if op == ">=":
            return left_value >= right_value
    except TypeError as exc:
        raise _ExpressionError(str(exc)) from exc
    raise QueryEvaluationError(f"unknown comparison operator {op!r}")


def _string_of(value) -> str:
    if isinstance(value, Literal):
        return value.lexical
    if isinstance(value, URIRef):
        return value.value
    if isinstance(value, str):
        return value
    raise _ExpressionError(f"not a string-valued argument: {value!r}")


def _call_function(expr: FunctionCall, solution: Solution):
    name = expr.name
    if name == "BOUND":
        if len(expr.args) != 1 or not isinstance(expr.args[0], VarExpr):
            raise QueryEvaluationError("BOUND takes exactly one variable")
        return expr.args[0].var in solution

    args = [eval_expression(arg, solution) for arg in expr.args]
    if name == "STR":
        _require_arity(name, args, 1)
        return _string_of(args[0])
    if name == "LANG":
        _require_arity(name, args, 1)
        if isinstance(args[0], Literal):
            return args[0].language or ""
        raise _ExpressionError("LANG requires a literal")
    if name == "DATATYPE":
        _require_arity(name, args, 1)
        if isinstance(args[0], Literal):
            return URIRef(args[0].datatype) if args[0].datatype else URIRef(
                "http://www.w3.org/2001/XMLSchema#string"
            )
        raise _ExpressionError("DATATYPE requires a literal")
    if name == "REGEX":
        if len(args) not in (2, 3):
            raise QueryEvaluationError("REGEX takes 2 or 3 arguments")
        flags = 0
        if len(args) == 3 and "i" in _string_of(args[2]):
            flags = re.IGNORECASE
        try:
            return re.search(_string_of(args[1]), _string_of(args[0]), flags) is not None
        except re.error as exc:
            raise _ExpressionError(f"bad REGEX pattern: {exc}") from exc
    if name == "CONTAINS":
        _require_arity(name, args, 2)
        return _string_of(args[1]) in _string_of(args[0])
    if name == "STRSTARTS":
        _require_arity(name, args, 2)
        return _string_of(args[0]).startswith(_string_of(args[1]))
    if name == "STRENDS":
        _require_arity(name, args, 2)
        return _string_of(args[0]).endswith(_string_of(args[1]))
    if name == "STRLEN":
        _require_arity(name, args, 1)
        return len(_string_of(args[0]))
    if name == "UCASE":
        _require_arity(name, args, 1)
        return _string_of(args[0]).upper()
    if name == "LCASE":
        _require_arity(name, args, 1)
        return _string_of(args[0]).lower()
    if name == "LANGMATCHES":
        _require_arity(name, args, 2)
        tag = _string_of(args[0]).lower()
        pattern = _string_of(args[1]).lower()
        if pattern == "*":
            return bool(tag)
        return tag == pattern or tag.startswith(pattern + "-")
    if name == "ABS":
        _require_arity(name, args, 1)
        value = _comparable(args[0])
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return abs(value)
        raise _ExpressionError("ABS requires a numeric argument")
    if name in ("ISURI", "ISIRI"):
        _require_arity(name, args, 1)
        return isinstance(args[0], URIRef)
    if name == "ISLITERAL":
        _require_arity(name, args, 1)
        return isinstance(args[0], Literal)
    if name == "ISBLANK":
        _require_arity(name, args, 1)
        from repro.rdf.terms import BNode

        return isinstance(args[0], BNode)
    if name == "ISNUMERIC":
        _require_arity(name, args, 1)
        if not isinstance(args[0], Literal):
            return False
        value = args[0].to_python()
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    raise QueryEvaluationError(f"unknown function {name}")


def _require_arity(name: str, args: list, count: int) -> None:
    if len(args) != count:
        raise QueryEvaluationError(f"{name} takes exactly {count} argument(s)")


# --------------------------------------------------------------------- #
# Query results
# --------------------------------------------------------------------- #


class QueryResult:
    """Result of a SELECT: ordered rows of projected bindings."""

    def __init__(self, variables: list[Var], rows: list[Solution]):
        self.variables = variables
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Solution]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def column(self, var: Var | str) -> list[Term | None]:
        """All values of one variable, in row order."""
        if isinstance(var, str):
            var = Var(var.lstrip("?"))
        return [row.get(var) for row in self.rows]

    def as_tuples(self) -> list[tuple]:
        """Rows as tuples in the projected variable order."""
        return [tuple(row.get(v) for v in self.variables) for row in self.rows]

    def __repr__(self):
        return f"<QueryResult {len(self.rows)} rows x {len(self.variables)} vars>"


def _order_key_for(value) -> tuple:
    """Total order across None < literals/numbers < strings < URIs."""
    if value is None:
        return (0, "", "")
    if isinstance(value, Literal):
        python = value.to_python()
        if isinstance(python, bool):
            return (1, "", str(python))
        if isinstance(python, (int, float)):
            return (2, "", f"{float(python):040.10f}")
        return (3, "", str(python))
    if isinstance(value, URIRef):
        return (4, "", value.value)
    return (5, "", str(value))


def _observed_stage(observer, op: str, rows_in: int, stage: Callable[[], list]):
    """Run one solution-modifier stage, reporting rows/time to the observer."""
    if observer is None:
        return stage()
    import time as _time

    started = _time.perf_counter()
    out = stage()
    observer.modifier(op, rows_in, len(out), _time.perf_counter() - started)
    return out


def evaluate_select(
    graph: Graph, query: SelectQuery, observer: EvalObserver | None = None
) -> QueryResult:
    solutions = eval_group(graph, query.where, observer=observer)
    if solutions:
        obs.inc("sparql.solutions.produced", len(solutions))
    projected = query.projected()

    if query.is_aggregated:
        rows = _observed_stage(
            observer, "aggregate", len(solutions), lambda: _aggregate_rows(query, solutions)
        )
    else:
        rows = _observed_stage(
            observer, "project", len(solutions),
            lambda: [{var: sol[var] for var in projected if var in sol} for sol in solutions],
        )
    if query.distinct:
        def deduplicate() -> list[Solution]:
            seen: set[tuple] = set()
            unique: list[Solution] = []
            for row in rows:
                key = tuple(sorted(((v.name, t.n3()) for v, t in row.items())))
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            return unique

        rows = _observed_stage(observer, "distinct", len(rows), deduplicate)
    if query.order_by:
        def order() -> list[Solution]:
            for condition in reversed(query.order_by):
                def key(row: Solution, cond: OrderCondition = condition):
                    try:
                        value = eval_expression(cond.expression, row)
                    except _ExpressionError:
                        value = None
                    return _order_key_for(value)

                rows.sort(key=key, reverse=condition.descending)
            return rows

        rows = _observed_stage(observer, "order", len(rows), order)
    if query.offset or query.limit is not None:
        def slice_rows() -> list[Solution]:
            out = rows[query.offset:] if query.offset else rows
            return out[: query.limit] if query.limit is not None else out

        rows = _observed_stage(observer, "slice", len(rows), slice_rows)
    return QueryResult(projected, rows)


def _aggregate_rows(query: SelectQuery, solutions: list[Solution]) -> list[Solution]:
    """GROUP BY + aggregate evaluation: one output row per group."""
    from repro.sparql.aggregates import evaluate_aggregate, group_solutions

    rows: list[Solution] = []
    for key_bindings, members in group_solutions(solutions, query.group_by):
        row = dict(key_bindings)
        for aggregate in query.aggregates:
            value = evaluate_aggregate(aggregate, members)
            if value is not None:
                row[aggregate.alias] = value
        rows.append(row)
    return rows


def evaluate_ask(
    graph: Graph, query: AskQuery, observer: EvalObserver | None = None
) -> bool:
    return bool(eval_group(graph, query.where, observer=observer))


def evaluate_construct(graph: Graph, query, observer: EvalObserver | None = None) -> Graph:
    """Instantiate the CONSTRUCT template once per solution.

    Template triples with an unbound variable, or whose instantiation would
    be ill-typed (e.g. a literal in subject position), are skipped for that
    solution — SPARQL's standard behaviour.
    """
    from repro.rdf.terms import Literal as _Literal
    from repro.rdf.triples import Triple

    out = Graph(name="constructed")
    solutions = eval_group(graph, query.where, observer=observer)
    for solution in solutions:
        for pattern in query.template:
            terms = []
            ok = True
            for position in (pattern.subject, pattern.predicate, pattern.object):
                term = solution.get(position) if isinstance(position, Var) else position
                if term is None:
                    ok = False
                    break
                terms.append(term)
            if not ok:
                continue
            subject, predicate, obj = terms
            if isinstance(subject, _Literal) or not isinstance(predicate, URIRef):
                continue
            out.add(Triple(subject, predicate, obj))
    return out


def query(graph: Graph, text: str, strict: bool = False, profile: bool = False):
    """Parse and evaluate SPARQL ``text`` against ``graph``.

    Returns a :class:`QueryResult` for SELECT, a bool for ASK, or a
    :class:`~repro.rdf.graph.Graph` for CONSTRUCT.

    ``strict=True`` runs :func:`repro.sparql.analysis.analyze_query` on the
    parsed query first and raises
    :class:`~repro.errors.QueryAnalysisError` when any error-level
    diagnostic is found, instead of evaluating a query that can only
    return wrong or empty answers.  Default behaviour is unchanged.

    ``profile=True`` executes under per-operator instrumentation (EXPLAIN
    ANALYZE, :mod:`repro.sparql.explain`) and returns a ``(result, plan)``
    pair instead of the bare result; the plan carries rows in/out, wall
    time, and join strategy per operator, and — when a tracer is installed
    — emits ``sparql.operator.eval`` trace events.
    """
    from repro.sparql.ast import ConstructQuery

    obs.inc("sparql.queries")
    with obs.timer("sparql.query.seconds"):
        parsed = parse_query(text)
        if strict:
            from repro.sparql.analysis import check_query

            check_query(parsed, graph=graph)
        if profile:
            from repro.sparql.explain import explain

            plan = explain(graph, parsed, analyze=True)
            return plan.result, plan
        if isinstance(parsed, SelectQuery):
            return evaluate_select(graph, parsed)
        if isinstance(parsed, ConstructQuery):
            return evaluate_construct(graph, parsed)
        return evaluate_ask(graph, parsed)
