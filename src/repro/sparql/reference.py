"""Reference SPARQL evaluator: the pre-1.6 term-space nested-loop engine.

This module preserves the original dict-based evaluator — solutions as
``{Var: Term}`` dicts, patterns matched by streaming index nested-loop
joins over term objects, OPTIONAL and UNION evaluated once per incoming
solution — as an *executable specification* of the engine's semantics.

It exists for two jobs:

* **Parity testing** — property/fuzz tests evaluate random queries with
  both engines and require identical solution multisets
  (``tests/test_sparql_hashjoin.py``);
* **Benchmark baseline** — ``repro bench --suite sparql`` measures the
  dictionary-encoded hash-join engine against this evaluator on the same
  data, with the same parity check inline.

It shares the expression layer (FILTER/BIND evaluation, ordering keys,
aggregation) with :mod:`repro.sparql.eval` so the two engines can only
diverge in the join machinery under test. EXISTS subpatterns delegate to
the main engine in both, for the same reason. Not optimized, not public
API, never deprecated-warned: it is the yardstick, not the engine.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import QueryEvaluationError
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef
from repro.sparql.ast import (
    AskQuery,
    BGP,
    Bind,
    Filter,
    GroupGraphPattern,
    OptionalPattern,
    SelectQuery,
    TriplePattern,
    UnionPattern,
    ValuesClause,
    Var,
)
from repro.sparql.eval import (
    QueryResult,
    Solution,
    _aggregate_rows,
    _as_term,
    _ExpressionError,
    _filter_passes,
    _order_key_for,
    eval_expression,
)
from repro.sparql.parser import parse_query
from repro.sparql.paths import PathExpr, eval_path


def ref_match_pattern(
    graph: Graph, pattern: TriplePattern, solutions: Iterable[Solution]
) -> Iterator[Solution]:
    """Extend each solution with all matches of ``pattern`` (term space)."""
    for solution in solutions:
        if isinstance(pattern.predicate, PathExpr):
            s = pattern.subject if not isinstance(pattern.subject, Var) else solution.get(
                pattern.subject
            )
            o = pattern.object if not isinstance(pattern.object, Var) else solution.get(
                pattern.object
            )
            candidates = (
                (source, pattern.predicate, target)
                for source, target in eval_path(graph, pattern.predicate, s, o)
            )
            positions = (pattern.subject, pattern.object)
            for triple in candidates:
                extended = dict(solution)
                ok = True
                for position, value in zip(positions, (triple[0], triple[2])):
                    if isinstance(position, Var):
                        bound = extended.get(position)
                        if bound is None:
                            extended[position] = value
                        elif bound != value:
                            ok = False
                            break
                if ok:
                    yield extended
            continue
        probe = []
        for position in (pattern.subject, pattern.predicate, pattern.object):
            if isinstance(position, Var):
                probe.append(solution.get(position))
            else:
                probe.append(position)
        for triple in graph.triples(*probe):
            extended = dict(solution)
            ok = True
            for position, value in zip(
                (pattern.subject, pattern.predicate, pattern.object), triple
            ):
                if isinstance(position, Var):
                    bound = extended.get(position)
                    if bound is None:
                        extended[position] = value
                    elif bound != value:
                        ok = False
                        break
            if ok:
                yield extended


def ref_eval_bgp(
    graph: Graph, bgp: BGP, solutions: Iterable[Solution], optimize: bool = True
) -> Iterator[Solution]:
    if optimize and len(bgp.patterns) > 1:
        from repro.sparql.optimizer import reorder_bgp

        bgp = reorder_bgp(graph, bgp)
    streams: Iterator[Solution] = iter(solutions)
    for pattern in bgp.patterns:
        streams = ref_match_pattern(graph, pattern, streams)
    return streams


def ref_eval_group(
    graph: Graph, group: GroupGraphPattern, solutions: list[Solution]
) -> list[Solution]:
    """Evaluate a group the pre-1.6 way: per-solution nested loops."""
    filters = []
    for child in group.children:
        if isinstance(child, BGP):
            solutions = list(ref_eval_bgp(graph, child, solutions))
        elif isinstance(child, Filter):
            filters.append(child.expression)
        elif isinstance(child, GroupGraphPattern):
            solutions = ref_eval_group(graph, child, solutions)
        elif isinstance(child, OptionalPattern):
            next_solutions: list[Solution] = []
            for solution in solutions:
                matched = ref_eval_group(graph, child.pattern, [dict(solution)])
                next_solutions.extend(matched if matched else [solution])
            solutions = next_solutions
        elif isinstance(child, UnionPattern):
            next_solutions = []
            for alternative in child.alternatives:
                next_solutions.extend(
                    ref_eval_group(graph, alternative, [dict(s) for s in solutions])
                )
            solutions = next_solutions
        elif isinstance(child, Bind):
            next_solutions = []
            for solution in solutions:
                if child.var in solution:
                    raise QueryEvaluationError(
                        f"BIND would rebind already-bound variable {child.var}"
                    )
                extended = dict(solution)
                try:
                    value = eval_expression(child.expression, solution, graph)
                except _ExpressionError:
                    value = None
                if value is not None:
                    extended[child.var] = _as_term(value)
                next_solutions.append(extended)
            solutions = next_solutions
        elif isinstance(child, ValuesClause):
            next_solutions = []
            for solution in solutions:
                for vrow in child.rows:
                    extended = dict(solution)
                    compatible = True
                    for var, term in zip(child.variables, vrow):
                        if term is None:
                            continue
                        bound = extended.get(var)
                        if bound is None:
                            extended[var] = term
                        elif bound != term:
                            compatible = False
                            break
                    if compatible:
                        next_solutions.append(extended)
            solutions = next_solutions
        else:
            raise QueryEvaluationError(f"unknown pattern node: {type(child).__name__}")
    if filters:
        solutions = [
            solution
            for solution in solutions
            if all(_filter_passes(expr, solution, graph) for expr in filters)
        ]
    return solutions


def ref_evaluate_select(graph: Graph, query: SelectQuery) -> QueryResult:
    solutions = ref_eval_group(graph, query.where, [{}])
    projected = query.projected()
    if query.is_aggregated:
        rows = _aggregate_rows(query, solutions)
    else:
        rows = [
            {var: solution[var] for var in projected if var in solution}
            for solution in solutions
        ]
    if query.distinct:
        seen = set()
        unique = []
        for row in rows:
            key = tuple(sorted(((v.name, t.n3()) for v, t in row.items())))
            if key not in seen:
                seen.add(key)
                unique.append(row)
        rows = unique
    if query.order_by:
        for condition in reversed(query.order_by):
            def key(row: Solution, cond=condition):
                try:
                    value = eval_expression(cond.expression, row)
                except _ExpressionError:
                    value = None
                return _order_key_for(value)

            rows.sort(key=key, reverse=condition.descending)
    if query.offset:
        rows = rows[query.offset:]
    if query.limit is not None:
        rows = rows[: query.limit]
    return QueryResult(projected, rows)


def ref_evaluate_ask(graph: Graph, query: AskQuery) -> bool:
    return bool(ref_eval_group(graph, query.where, [{}]))


def ref_evaluate_construct(graph: Graph, query) -> Graph:
    from repro.rdf.triples import Triple

    out = Graph(name="constructed")
    for solution in ref_eval_group(graph, query.where, [{}]):
        for pattern in query.template:
            terms = []
            ok = True
            for position in (pattern.subject, pattern.predicate, pattern.object):
                term = solution.get(position) if isinstance(position, Var) else position
                if term is None:
                    ok = False
                    break
                terms.append(term)
            if not ok:
                continue
            subject, predicate, obj = terms
            if isinstance(subject, Literal) or not isinstance(predicate, URIRef):
                continue
            out.add(Triple(subject, predicate, obj))
    return out


def ref_query(graph: Graph, text: str):
    """Parse and evaluate with the reference engine (no caching, no obs)."""
    parsed = parse_query(text)
    if isinstance(parsed, SelectQuery):
        return ref_evaluate_select(graph, parsed)
    if isinstance(parsed, AskQuery):
        return ref_evaluate_ask(graph, parsed)
    return ref_evaluate_construct(graph, parsed)


__all__ = [
    "ref_eval_bgp",
    "ref_eval_group",
    "ref_evaluate_ask",
    "ref_evaluate_construct",
    "ref_evaluate_select",
    "ref_match_pattern",
    "ref_query",
]
