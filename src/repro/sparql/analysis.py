"""Static analysis over the SPARQL AST: ``repro.sparql.analysis``.

ALEX's feedback loop is driven by federated SPARQL queries, so a malformed
or pathological query silently degrades the link-exploration signal the RL
engine learns from.  This module moves error detection from mid-evaluation
crashes (or silently empty answers) to parse time: :func:`analyze_query`
walks the parsed AST and returns ordered :class:`Diagnostic` records with
stable ``ALEX-*`` codes, severities, and the source positions the parser
threaded through from the tokenizer.

Severities:

* ``error`` — the query cannot produce the answers its author intended
  (never-bound projections, unsatisfiable filters, scoping violations).
  ``strict=True`` evaluation rejects queries with error diagnostics.
* ``warning`` — the query is evaluable but a construct is suspicious
  (cartesian products, dead UNION branches, filters on OPTIONAL-only vars).
* ``info`` — cost lints: cheap signals the federation layer can use before
  touching any endpoint (unselective patterns, cardinality estimates).

The diagnostic code table lives in :data:`CODES` and is documented with
examples in ``docs/diagnostics.md``.
"""

from __future__ import annotations

from repro.diagnostics import SEVERITY_RANK, Diagnostic, register_codes
from repro.errors import QueryAnalysisError
from repro.sparql.ast import (
    BGP,
    Bind,
    BooleanOp,
    Comparison,
    ConstructQuery,
    ExistsExpr,
    Expr,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    Not,
    OptionalPattern,
    SelectQuery,
    TermExpr,
    TriplePattern,
    UnionPattern,
    ValuesClause,
    Var,
    VarExpr,
    get_position,
)
from repro.rdf.terms import Literal, Term

#: Stable diagnostic code table: code -> (severity, summary).
#: Codes are append-only; a released code never changes meaning.
CODES: dict[str, tuple[str, str]] = {
    "ALEX-E001": ("error", "projected or template variable is never bound in WHERE"),
    "ALEX-E002": ("error", "non-grouped variable projected from an aggregated query"),
    "ALEX-E003": ("error", "aggregate argument variable is never bound"),
    "ALEX-E004": ("error", "unsatisfiable FILTER (constant false or type-incompatible)"),
    "ALEX-E005": ("error", "contradictory numeric range in FILTER conjunction"),
    "ALEX-E006": ("error", "FILTER references a variable never bound in scope"),
    "ALEX-W101": ("warning", "cartesian product between variable-disjoint pattern groups"),
    "ALEX-W102": ("warning", "FILTER is always true (no effect)"),
    "ALEX-W103": ("warning", "BOUND check has a constant outcome"),
    "ALEX-W104": ("warning", "non-well-designed OPTIONAL (variable shared with later sibling)"),
    "ALEX-W105": ("warning", "dead UNION branch (statically unsatisfiable)"),
    "ALEX-W106": ("warning", "duplicate projected variable"),
    "ALEX-W107": ("warning", "empty VALUES clause eliminates all solutions"),
    "ALEX-W108": ("warning", "FILTER on a variable bound only inside OPTIONAL"),
    "ALEX-W109": ("warning", "GROUP BY variable is never bound"),
    "ALEX-W110": ("warning", "triple pattern matches no federation endpoint"),
    "ALEX-I201": ("info", "unselective triple pattern (high cardinality estimate)"),
}

register_codes(CODES, "sparql.analysis")


def _sort_key(diagnostic: Diagnostic) -> tuple:
    return (
        diagnostic.line if diagnostic.line is not None else 1 << 30,
        diagnostic.column if diagnostic.column is not None else 1 << 30,
        SEVERITY_RANK.get(diagnostic.severity, 3),
        diagnostic.code,
        diagnostic.message,
    )


# --------------------------------------------------------------------- #
# Variable scoping
# --------------------------------------------------------------------- #


def possible_vars(node) -> set[Var]:
    """Variables that *may* be bound by ``node`` in at least one solution."""
    out: set[Var] = set()
    if isinstance(node, BGP):
        out |= node.variables()
    elif isinstance(node, GroupGraphPattern):
        for child in node.children:
            out |= possible_vars(child)
    elif isinstance(node, OptionalPattern):
        out |= possible_vars(node.pattern)
    elif isinstance(node, UnionPattern):
        for alternative in node.alternatives:
            out |= possible_vars(alternative)
    elif isinstance(node, Bind):
        out.add(node.var)
    elif isinstance(node, ValuesClause):
        out |= set(node.variables)
    return out


def certain_vars(node) -> set[Var]:
    """Variables bound by ``node`` in *every* solution it produces.

    Conservative: BIND and OPTIONAL bindings are never certain (a BIND
    expression may error, an OPTIONAL may not match); a UNION binds only
    the intersection of its alternatives; a VALUES variable is certain only
    when no row leaves it UNDEF (and at least one row exists).
    """
    out: set[Var] = set()
    if isinstance(node, BGP):
        out |= node.variables()
    elif isinstance(node, GroupGraphPattern):
        for child in node.children:
            out |= certain_vars(child)
    elif isinstance(node, UnionPattern):
        if node.alternatives:
            shared = certain_vars(node.alternatives[0])
            for alternative in node.alternatives[1:]:
                shared &= certain_vars(alternative)
            out |= shared
    elif isinstance(node, ValuesClause):
        if node.rows:
            for index, var in enumerate(node.variables):
                if all(index < len(row) and row[index] is not None for row in node.rows):
                    out.add(var)
    return out


def _expr_vars(expr: Expr, *, include_bound_args: bool = False) -> set[Var]:
    """Variables an expression *evaluates* (unbound ones make it error).

    Variables appearing only as the argument of ``BOUND(...)`` are excluded
    unless ``include_bound_args`` — BOUND is exactly the function that is
    safe (and meaningful) to call on an unbound variable.  EXISTS subtrees
    are skipped entirely: they introduce their own local scope.
    """
    out: set[Var] = set()
    if isinstance(expr, VarExpr):
        out.add(expr.var)
    elif isinstance(expr, Not):
        out |= _expr_vars(expr.operand, include_bound_args=include_bound_args)
    elif isinstance(expr, (BooleanOp, Comparison)):
        out |= _expr_vars(expr.left, include_bound_args=include_bound_args)
        out |= _expr_vars(expr.right, include_bound_args=include_bound_args)
    elif isinstance(expr, FunctionCall):
        if expr.name == "BOUND" and not include_bound_args:
            return out
        for argument in expr.args:
            out |= _expr_vars(argument, include_bound_args=include_bound_args)
    return out


def _contains_var_or_exists(expr: Expr) -> bool:
    if isinstance(expr, (VarExpr, ExistsExpr)):
        return True
    if isinstance(expr, Not):
        return _contains_var_or_exists(expr.operand)
    if isinstance(expr, (BooleanOp, Comparison)):
        return _contains_var_or_exists(expr.left) or _contains_var_or_exists(expr.right)
    if isinstance(expr, FunctionCall):
        return any(_contains_var_or_exists(argument) for argument in expr.args)
    return False


def _conjuncts(expr: Expr) -> list[Expr]:
    """Flatten nested ``&&`` into a list of conjuncts."""
    if isinstance(expr, BooleanOp) and expr.op == "&&":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _bound_checks(expr: Expr, negated: bool = False):
    """Yield ``(var, negated)`` for every BOUND() reachable conjunctively."""
    if isinstance(expr, FunctionCall) and expr.name == "BOUND":
        if len(expr.args) == 1 and isinstance(expr.args[0], VarExpr):
            yield expr.args[0].var, negated
    elif isinstance(expr, Not):
        yield from _bound_checks(expr.operand, not negated)
    elif isinstance(expr, BooleanOp):
        yield from _bound_checks(expr.left, negated)
        yield from _bound_checks(expr.right, negated)


# --------------------------------------------------------------------- #
# Numeric range analysis
# --------------------------------------------------------------------- #


class _Interval:
    """An open/closed interval plus an optional equality pin for one var."""

    __slots__ = ("low", "low_strict", "high", "high_strict", "pinned", "pin")

    def __init__(self):
        self.low: float | None = None
        self.low_strict = False
        self.high: float | None = None
        self.high_strict = False
        self.pinned = False
        self.pin: float | None = None

    def add(self, op: str, value: float) -> None:
        if op == "=":
            if self.pinned and self.pin != value:
                self.low, self.high = 1.0, 0.0  # force emptiness
            self.pinned, self.pin = True, value
        elif op in (">", ">="):
            strict = op == ">"
            if self.low is None or value > self.low or (value == self.low and strict):
                self.low, self.low_strict = value, strict
        elif op in ("<", "<="):
            strict = op == "<"
            if self.high is None or value < self.high or (value == self.high and strict):
                self.high, self.high_strict = value, strict

    @property
    def empty(self) -> bool:
        if self.pinned and self.pin is not None:
            if self.low is not None and (self.pin < self.low or (self.pin == self.low and self.low_strict)):
                return True
            if self.high is not None and (self.pin > self.high or (self.pin == self.high and self.high_strict)):
                return True
        if self.low is not None and self.high is not None:
            if self.low > self.high:
                return True
            if self.low == self.high and (self.low_strict or self.high_strict):
                return True
        return False


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
_ORDERING_OPS = ("<", "<=", ">", ">=")


def _constant_kind(term: Term) -> str | None:
    """'numeric' / 'string' / 'bool' for a literal constant, else None."""
    if not isinstance(term, Literal):
        return None
    value = term.to_python()
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "numeric"
    if isinstance(value, str):
        return "string"
    return None


def _var_const_comparison(expr: Expr) -> tuple[Var, str, Term] | None:
    """``(var, op, constant)`` for a variable-vs-constant comparison."""
    if not isinstance(expr, Comparison):
        return None
    if isinstance(expr.left, VarExpr) and isinstance(expr.right, TermExpr):
        return expr.left.var, expr.op, expr.right.term
    if isinstance(expr.left, TermExpr) and isinstance(expr.right, VarExpr):
        return expr.right.var, _FLIP[expr.op], expr.left.term
    return None


# --------------------------------------------------------------------- #
# The analyzer
# --------------------------------------------------------------------- #


class QueryAnalyzer:
    """Visitor that collects :class:`Diagnostic` records for one query.

    ``graph`` (optional) enables cardinality-based cost lints via
    :func:`repro.sparql.optimizer.estimate_cardinality`; ``endpoints``
    (optional) enables federation source checks (ALEX-W110).
    """

    #: A pattern whose estimate covers at least this fraction of the graph
    #: is flagged as unselective.
    COST_FRACTION = 0.5
    #: ...but only when the graph is at least this large (tiny graphs make
    #: every pattern look unselective).
    COST_MIN_GRAPH = 10

    def __init__(self, query, graph=None, endpoints=None):
        self.query = query
        self.graph = graph
        self.endpoints = list(endpoints) if endpoints is not None else None
        self.diagnostics: list[Diagnostic] = []

    # -- reporting ------------------------------------------------------ #

    def _report(self, code: str, message: str, node=None, hint: str | None = None,
                position: tuple[int | None, int | None] | None = None) -> None:
        severity = CODES[code][0]
        line, column = position if position is not None else get_position(node)
        self.diagnostics.append(
            Diagnostic(code=code, severity=severity, message=message,
                       line=line, column=column, hint=hint)
        )

    # -- entry point ---------------------------------------------------- #

    def analyze(self) -> list[Diagnostic]:
        where = self.query.where
        if isinstance(self.query, SelectQuery):
            self._check_projection(where)
        elif isinstance(self.query, ConstructQuery):
            self._check_template(where)
        self._walk_group(where, outer_possible=set(), outer_certain=set())
        if self.endpoints is not None:
            self._check_sources(where)
        self.diagnostics.sort(key=_sort_key)
        return self.diagnostics

    # -- projection / aggregation scoping -------------------------------- #

    def _check_projection(self, where: GroupGraphPattern) -> None:
        query = self.query
        available = possible_vars(where)
        seen: set[Var] = set()
        for var in query.projection_order or query.variables:
            if var in seen:
                self._report(
                    "ALEX-W106", f"variable {var} is projected more than once", var,
                    hint="remove the duplicate from the SELECT list",
                )
            seen.add(var)
        aggregate_aliases = {aggregate.alias for aggregate in query.aggregates}
        for var in query.variables:
            if var in aggregate_aliases:
                continue
            if var not in available:
                self._report(
                    "ALEX-E001",
                    f"projected variable {var} is never bound in the WHERE clause",
                    var,
                    hint="bind it in a triple pattern, BIND, or VALUES — or drop it",
                )
            elif query.is_aggregated and var not in query.group_by:
                self._report(
                    "ALEX-E002",
                    f"variable {var} is projected but not in GROUP BY",
                    var,
                    hint="add it to GROUP BY or wrap it in an aggregate",
                )
        for aggregate in query.aggregates:
            if aggregate.var is not None and aggregate.var not in available:
                self._report(
                    "ALEX-E003",
                    f"aggregate {aggregate.function}({aggregate.var}) argument is "
                    "never bound in the WHERE clause",
                    aggregate,
                )
        for var in query.group_by:
            if var not in available:
                self._report(
                    "ALEX-W109",
                    f"GROUP BY variable {var} is never bound; all solutions "
                    "fall into one group keyed by nothing",
                    var,
                )

    def _check_template(self, where: GroupGraphPattern) -> None:
        available = possible_vars(where)
        for pattern in self.query.template:
            for term in (pattern.subject, pattern.predicate, pattern.object):
                if isinstance(term, Var) and term not in available:
                    self._report(
                        "ALEX-E001",
                        f"CONSTRUCT template variable {term} is never bound in "
                        "the WHERE clause; the template triple is never produced",
                        pattern,
                    )

    # -- group walking ---------------------------------------------------- #

    def _walk_group(self, group: GroupGraphPattern,
                    outer_possible: set[Var], outer_certain: set[Var]) -> None:
        env_possible = outer_possible | possible_vars(group)
        env_certain = outer_certain | certain_vars(group)
        optional_only = set()
        for child in group.children:
            if isinstance(child, OptionalPattern):
                optional_only |= possible_vars(child.pattern)
        optional_only -= env_certain

        self._check_cartesian(group, outer_possible)
        self._check_group_ranges(group, env_possible)

        for index, child in enumerate(group.children):
            if isinstance(child, BGP):
                self._check_cost(child)
            elif isinstance(child, Filter):
                self._check_filter(child, env_possible, env_certain, optional_only)
            elif isinstance(child, ValuesClause):
                if not child.rows:
                    self._report(
                        "ALEX-W107",
                        "VALUES clause has no rows; it eliminates every solution",
                        child,
                        hint="add rows or remove the clause",
                    )
            elif isinstance(child, OptionalPattern):
                self._check_optional(group, index, child, outer_possible)
                self._walk_group(child.pattern, env_possible, env_certain)
            elif isinstance(child, UnionPattern):
                for alternative in child.alternatives:
                    if self._branch_unsatisfiable(alternative):
                        line, column = get_position(alternative)
                        if line is None:
                            line, column = get_position(child)
                        self._report(
                            "ALEX-W105",
                            "UNION branch is statically unsatisfiable and can "
                            "never contribute solutions",
                            position=(line, column),
                        )
                    self._walk_group(alternative, env_possible, env_certain)
            elif isinstance(child, GroupGraphPattern):
                self._walk_group(child, env_possible, env_certain)

    # -- rule: cartesian products (ALEX-W101) ----------------------------- #

    def _check_cartesian(self, group: GroupGraphPattern, outer_possible: set[Var]) -> None:
        patterns = [
            pattern
            for child in group.children
            if isinstance(child, BGP)
            for pattern in child.patterns
            if pattern.variables()
        ]
        if len(patterns) < 2:
            return
        # union-find over patterns connected by shared variables
        components: list[tuple[set[Var], TriplePattern]] = []
        for pattern in patterns:
            merged_vars = set(pattern.variables())
            first = pattern
            disjoint: list[tuple[set[Var], TriplePattern]] = []
            for component_vars, component_first in components:
                if component_vars & merged_vars:
                    merged_vars |= component_vars
                    first = component_first  # earliest pattern keeps the position
                else:
                    disjoint.append((component_vars, component_first))
            components = disjoint + [(merged_vars, first)]
        if len(components) >= 2:
            # report at the later component: that's the one whose join with
            # the already-matched prefix multiplies instead of filtering
            offender = components[-1][1]
            self._report(
                "ALEX-W101",
                "basic graph pattern splits into variable-disjoint components; "
                "their join is a cartesian product",
                offender,
                hint="connect the components through a shared variable or split the query",
            )

    # -- rule: filters ----------------------------------------------------- #

    def _check_filter(self, node: Filter, env_possible: set[Var],
                      env_certain: set[Var], optional_only: set[Var]) -> None:
        expression = node.expression
        position = get_position(node)

        for var in sorted(_expr_vars(expression), key=lambda v: v.name):
            if var not in env_possible:
                self._report(
                    "ALEX-E006",
                    f"FILTER references {var}, which is never bound in scope; "
                    "the filter errors and eliminates every solution",
                    node,
                )
            elif var in optional_only:
                self._report(
                    "ALEX-W108",
                    f"FILTER references {var}, which is bound only inside an "
                    "OPTIONAL; solutions where the OPTIONAL did not match are "
                    "silently eliminated",
                    node,
                    hint="move the FILTER inside the OPTIONAL or guard it with BOUND()",
                )

        for var, negated in _bound_checks(expression):
            if var in env_certain:
                outcome = "false" if negated else "true"
                self._report(
                    "ALEX-W103",
                    f"{'!' if negated else ''}BOUND({var}) is always {outcome}: "
                    f"{var} is bound in every solution",
                    node,
                )
            elif var not in env_possible:
                outcome = "true" if negated else "false"
                self._report(
                    "ALEX-W103",
                    f"{'!' if negated else ''}BOUND({var}) is always {outcome}: "
                    f"{var} is never bound",
                    node,
                )

        self._check_constant_filter(node, expression)
        self._check_same_var_comparisons(node, expression)

    def _check_constant_filter(self, node: Filter, expression: Expr) -> None:
        if _contains_var_or_exists(expression):
            return
        from repro.sparql.eval import _ExpressionError, _effective_boolean, eval_expression

        try:
            value = _effective_boolean(eval_expression(expression, {}))
        except _ExpressionError:
            self._report(
                "ALEX-E004",
                "FILTER expression always errors (type-incompatible constants); "
                "it eliminates every solution",
                node,
            )
            return
        except Exception:
            return  # not statically evaluable (e.g. arity errors surface at runtime)
        if value:
            self._report(
                "ALEX-W102", "FILTER is constant true and has no effect", node,
                hint="remove the filter",
            )
        else:
            self._report(
                "ALEX-E004",
                "FILTER is constant false; it eliminates every solution",
                node,
            )

    def _check_same_var_comparisons(self, node: Filter, expression: Expr) -> None:
        for conjunct in _conjuncts(expression):
            if (
                isinstance(conjunct, Comparison)
                and isinstance(conjunct.left, VarExpr)
                and isinstance(conjunct.right, VarExpr)
                and conjunct.left.var == conjunct.right.var
            ):
                if conjunct.op in ("=", "<=", ">="):
                    self._report(
                        "ALEX-W102",
                        f"comparison {conjunct.left.var} {conjunct.op} "
                        f"{conjunct.right.var} is always true when bound",
                        node,
                    )
                elif conjunct.op in ("!=", "<", ">"):
                    self._report(
                        "ALEX-E004",
                        f"comparison {conjunct.left.var} {conjunct.op} "
                        f"{conjunct.right.var} is always false; it eliminates "
                        "every solution",
                        node,
                    )

    # -- rule: contradictory ranges across a group's filters --------------- #

    def _check_group_ranges(self, group: GroupGraphPattern, env_possible: set[Var]) -> None:
        """Filters in one group apply conjunctively; gather var/constant
        comparisons across all of them and detect empty ranges and
        type-incompatible constraint mixes."""
        filters = [child for child in group.children if isinstance(child, Filter)]
        if not filters:
            return
        intervals: dict[Var, _Interval] = {}
        kinds: dict[Var, set[str]] = {}
        anchor: dict[Var, Filter] = {}
        for node in filters:
            for conjunct in _conjuncts(node.expression):
                found = _var_const_comparison(conjunct)
                if found is None:
                    continue
                var, op, constant = found
                kind = _constant_kind(constant)
                if kind is None:
                    continue
                anchor.setdefault(var, node)
                if op in _ORDERING_OPS or op == "=":
                    kinds.setdefault(var, set()).add(kind)
                if kind != "numeric" or op == "!=":
                    continue
                value = constant.to_python()
                intervals.setdefault(var, _Interval()).add(op, float(value))
        for var, kind_set in sorted(kinds.items(), key=lambda item: item[0].name):
            if "numeric" in kind_set and "string" in kind_set:
                self._report(
                    "ALEX-E004",
                    f"{var} is compared against both numeric and string "
                    "constants; no RDF term satisfies both",
                    anchor[var],
                )
        for var, interval in sorted(intervals.items(), key=lambda item: item[0].name):
            if interval.empty:
                self._report(
                    "ALEX-E005",
                    f"numeric constraints on {var} are contradictory; the "
                    "FILTER conjunction is unsatisfiable",
                    anchor[var],
                )

    # -- rule: OPTIONAL well-designedness (ALEX-W104) ---------------------- #

    def _check_optional(self, group: GroupGraphPattern, index: int,
                        node: OptionalPattern, outer_possible: set[Var]) -> None:
        inside = possible_vars(node.pattern)
        left = set(outer_possible)
        for sibling in group.children[:index]:
            left |= possible_vars(sibling)
        for sibling in group.children[index + 1:]:
            if isinstance(sibling, Filter):
                continue  # filter scoping is ALEX-W108's job
            shared = (inside & possible_vars(sibling)) - left
            if shared:
                names = ", ".join(sorted(str(var) for var in shared))
                self._report(
                    "ALEX-W104",
                    f"OPTIONAL shares {names} with a later sibling pattern but "
                    "not with the preceding part; the pattern is not "
                    "well-designed and evaluation order changes its meaning",
                    node,
                    hint="bind the shared variable before the OPTIONAL, or merge the patterns",
                )
                return

    # -- rule: dead UNION branches (ALEX-W105) ------------------------------ #

    def _branch_unsatisfiable(self, branch: GroupGraphPattern) -> bool:
        """A cheap satisfiability probe: constant-false filters, contradictory
        ranges, or empty VALUES anywhere in the branch make it dead."""
        from repro.sparql.eval import _ExpressionError, _effective_boolean, eval_expression

        env = possible_vars(branch)
        for child in branch.children:
            if isinstance(child, ValuesClause) and not child.rows:
                return True
            if isinstance(child, Filter):
                expression = child.expression
                if not _contains_var_or_exists(expression):
                    try:
                        if not _effective_boolean(eval_expression(expression, {})):
                            return True
                    except _ExpressionError:
                        return True
                    except Exception:
                        pass
                for var in _expr_vars(expression):
                    if var not in env:
                        return True
            if isinstance(child, GroupGraphPattern) and self._branch_unsatisfiable(child):
                return True
        intervals: dict[Var, _Interval] = {}
        for child in branch.children:
            if not isinstance(child, Filter):
                continue
            for conjunct in _conjuncts(child.expression):
                found = _var_const_comparison(conjunct)
                if found is None:
                    continue
                var, op, constant = found
                if _constant_kind(constant) != "numeric" or op == "!=":
                    continue
                intervals.setdefault(var, _Interval()).add(op, float(constant.to_python()))
        return any(interval.empty for interval in intervals.values())

    # -- rule: cost lint (ALEX-I201) ---------------------------------------- #

    def _check_cost(self, bgp: BGP) -> None:
        if self.graph is None:
            for pattern in bgp.patterns:
                if all(isinstance(t, Var) for t in (pattern.subject, pattern.predicate, pattern.object)):
                    self._report(
                        "ALEX-I201",
                        f"pattern {pattern} has no constant position; it scans "
                        "the entire graph",
                        pattern,
                        hint="constrain at least one position, or accept the full scan",
                    )
            return
        from repro.sparql.optimizer import estimate_cardinality

        size = len(self.graph)
        if size < self.COST_MIN_GRAPH:
            return
        for pattern in bgp.patterns:
            estimate = estimate_cardinality(self.graph, pattern, set())
            if estimate >= self.COST_FRACTION * size:
                self._report(
                    "ALEX-I201",
                    f"pattern {pattern} matches an estimated {estimate:.0f} of "
                    f"{size} triples; joins through it will be expensive",
                    pattern,
                    hint="reorder or constrain the pattern (the optimizer will "
                    "try, but selectivity this low limits what it can do)",
                )

    # -- rule: federation sources (ALEX-W110) -------------------------------- #

    def _check_sources(self, where: GroupGraphPattern) -> None:
        for pattern in self._all_patterns(where):
            if not any(endpoint.can_answer(pattern) for endpoint in self.endpoints):
                names = ", ".join(sorted(endpoint.name for endpoint in self.endpoints))
                self._report(
                    "ALEX-W110",
                    f"no endpoint ({names}) can answer pattern {pattern}; a "
                    "federated query would return an empty result",
                    pattern,
                    hint="check the predicate IRI for typos against the endpoints' vocabularies",
                )

    def _all_patterns(self, group: GroupGraphPattern):
        for child in group.children:
            if isinstance(child, BGP):
                yield from child.patterns
            elif isinstance(child, GroupGraphPattern):
                yield from self._all_patterns(child)
            elif isinstance(child, OptionalPattern):
                yield from self._all_patterns(child.pattern)
            elif isinstance(child, UnionPattern):
                for alternative in child.alternatives:
                    yield from self._all_patterns(alternative)


# --------------------------------------------------------------------- #
# Public entry points
# --------------------------------------------------------------------- #


def analyze_query(query, graph=None, endpoints=None) -> list[Diagnostic]:
    """Statically analyze a query (text or parsed AST) into diagnostics.

    ``graph`` enables cardinality cost lints; ``endpoints`` enables
    federation source checks.  Diagnostics are ordered by source position,
    then severity, then code.  Every run and every diagnostic is counted in
    :mod:`repro.obs` (``sparql.analysis.runs`` / ``sparql.analysis.diagnostics``).
    """
    from repro import obs

    if isinstance(query, str):
        from repro.sparql.parser import parse_query

        query = parse_query(query)
    diagnostics = QueryAnalyzer(query, graph=graph, endpoints=endpoints).analyze()
    obs.inc("sparql.analysis.runs")
    for diagnostic in diagnostics:
        obs.inc(
            "sparql.analysis.diagnostics",
            code=diagnostic.code,
            severity=diagnostic.severity,
        )
    return diagnostics


def check_query(query, graph=None, endpoints=None) -> list[Diagnostic]:
    """Strict-mode gate: analyze and raise on error-level diagnostics.

    Returns the full diagnostic list (warnings included) when the query is
    acceptable; raises :class:`~repro.errors.QueryAnalysisError` carrying
    the diagnostics otherwise.
    """
    diagnostics = analyze_query(query, graph=graph, endpoints=endpoints)
    errors = [diagnostic for diagnostic in diagnostics if diagnostic.is_error]
    if errors:
        raise QueryAnalysisError([diagnostic.format() for diagnostic in errors],
                                 diagnostics=diagnostics)
    return diagnostics


__all__ = [
    "CODES",
    "Diagnostic",
    "QueryAnalyzer",
    "analyze_query",
    "certain_vars",
    "check_query",
    "possible_vars",
]
