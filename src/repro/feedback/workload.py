"""Federated query workloads: feedback through real queries.

The paper's deployment story (Section 3.2) is that users never see links —
they see *answers to federated queries* and approve/reject those. The
experiments shortcut this by sampling links directly (Section 7.1); this
module builds the full loop: it generates plausible federated SELECT queries
over a dataset pair (each query joins an attribute of a left entity with an
attribute reachable only through a sameAs link), executes them on the
federation engine, and routes the oracle's per-answer verdicts to ALEX.

This is how the repository demonstrates that query-level feedback and
link-level feedback drive the same learning process (see
``benchmarks/bench_workload_feedback.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.engine import AlexEngine
from repro.core.parallel import PartitionedAlex
from repro.errors import ConfigError
from repro.federation.executor import FederatedEngine
from repro.feedback.oracle import FeedbackOracle
from repro.feedback.session import QueryFeedbackSession
from repro.links import Link, LinkSet
from repro.rdf.graph import Graph
from repro.rdf.terms import URIRef

Engine = AlexEngine | PartitionedAlex


@dataclass(frozen=True)
class WorkloadQuery:
    """One generated federated query and the entity that seeds it."""

    text: str
    seed_entity: URIRef


class QueryWorkloadGenerator:
    """Generates entity-centric federated queries over a dataset pair.

    Each query asks for the cross-dataset attributes of one left-side
    entity: ``SELECT ?left_value ?right_value WHERE { <entity> <p_left>
    ?left_value . <entity> <p_right> ?right_value . }`` — answerable only
    through a sameAs link for ``<entity>``, exactly the query shape of the
    paper's NBA-MVP example.
    """

    def __init__(self, left: Graph, right: Graph, seed: int = 0):
        self.left = left
        self.right = right
        self.rng = random.Random(seed)
        self._left_entities = sorted(left.entities(), key=str)
        self._right_predicates = sorted(right.predicates(), key=lambda p: p.value)
        if not self._left_entities:
            raise ConfigError("the left dataset has no entities to query about")
        if not self._right_predicates:
            raise ConfigError("the right dataset has no predicates to query")

    def generate(self, focus: URIRef | None = None) -> WorkloadQuery:
        """One query; ``focus`` pins the seed entity (else random)."""
        entity = focus if focus is not None else self.rng.choice(self._left_entities)
        left_predicates = sorted(self.left.predicates(subject=entity), key=lambda p: p.value)
        if not left_predicates:
            raise ConfigError(f"entity {entity} has no attributes")
        left_predicate = self.rng.choice(left_predicates)
        right_predicate = self.rng.choice(self._right_predicates)
        text = (
            "SELECT ?leftValue ?rightValue WHERE {\n"
            f"  <{entity}> <{left_predicate}> ?leftValue .\n"
            f"  <{entity}> <{right_predicate}> ?rightValue .\n"
            "}"
        )
        return WorkloadQuery(text=text, seed_entity=entity)

    def batch(self, count: int) -> list[WorkloadQuery]:
        return [self.generate() for _ in range(count)]


class WorkloadSession:
    """Drives ALEX with generated federated queries until the feedback
    budget of an episode is spent, then improves the policy — the
    query-level analogue of :class:`~repro.feedback.session.FeedbackSession`.
    """

    def __init__(
        self,
        alex: Engine,
        federation: FederatedEngine,
        generator: QueryWorkloadGenerator,
        oracle: FeedbackOracle,
        seed: int = 0,
    ):
        self.alex = alex
        self.federation = federation
        self.generator = generator
        self.oracle = oracle
        self.rng = random.Random(seed)
        self.query_session = QueryFeedbackSession(alex, federation, oracle)
        self.queries_issued = 0
        self.queries_answered = 0

    def _linked_entities(self) -> list[URIRef]:
        """Left entities that currently have a candidate link — queries
        about them can produce cross-dataset answers."""
        entities = {link.left for link in self.alex.candidates}
        return sorted(entities, key=str)

    def run_episode(self, feedback_budget: int, max_queries: int | None = None) -> int:
        """Issue queries until ``feedback_budget`` feedback items were
        produced (or ``max_queries`` issued); then end the episode.

        Returns the number of feedback items produced. Queries are biased
        toward entities that have candidate links — queries about unlinked
        entities return no cross-dataset answers and produce no feedback,
        mirroring how real users gravitate to queries that work.
        """
        if feedback_budget < 1:
            raise ConfigError("feedback_budget must be >= 1")
        produced = 0
        issued = 0
        budget_queries = max_queries if max_queries is not None else feedback_budget * 10
        while produced < feedback_budget and issued < budget_queries:
            linked = self._linked_entities()
            focus = self.rng.choice(linked) if linked and self.rng.random() < 0.8 else None
            workload_query = self.generator.generate(focus)
            issued += 1
            self.queries_issued += 1
            items = self.query_session.submit_query(workload_query.text)
            if items:
                self.queries_answered += 1
            produced += items
        self.alex.end_episode()
        return produced

    def run(self, episodes: int, feedback_budget: int) -> int:
        """Run several episodes; returns total feedback items produced."""
        total = 0
        for _ in range(episodes):
            if self.alex.stopped:
                break
            total += self.run_episode(feedback_budget)
        return total
