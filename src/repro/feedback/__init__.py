"""Simulated user feedback: oracles and sessions driving ALEX."""

from repro.feedback.crowd import MajorityVoteOracle
from repro.feedback.oracle import FeedbackOracle, GroundTruthOracle, NoisyOracle
from repro.feedback.session import FeedbackSession, QueryFeedbackSession
from repro.feedback.workload import QueryWorkloadGenerator, WorkloadQuery, WorkloadSession

__all__ = [
    "FeedbackOracle",
    "FeedbackSession",
    "GroundTruthOracle",
    "MajorityVoteOracle",
    "NoisyOracle",
    "QueryFeedbackSession",
    "QueryWorkloadGenerator",
    "WorkloadQuery",
    "WorkloadSession",
]
