"""Feedback sessions: driving ALEX with simulated user feedback.

:class:`FeedbackSession` reproduces the paper's evaluation loop: sample a
random link from the current candidate set, obtain the oracle's verdict,
hand it to the engine, and close episodes / improve the policy every
``episode_size`` items until convergence or the episode budget runs out.
Per-episode link quality is recorded through a caller-supplied callback
(usually :class:`repro.evaluation.tracker.QualityTracker`).

:class:`QueryFeedbackSession` routes feedback the way the deployed system
would — through federated query answers: it executes queries, lets the
oracle judge each link-derived answer row, and converts row verdicts into
per-link feedback (Section 3.2).
"""

from __future__ import annotations

import random
import time
from typing import Callable, Protocol

from repro import obs
from repro.obs import trace
from repro.core.engine import AlexEngine
from repro.core.episode import EpisodeStats
from repro.core.parallel import PartitionedAlex
from repro.errors import ConfigError
from repro.federation.executor import FederatedEngine
from repro.feedback.oracle import FeedbackOracle
from repro.links import Link, LinkSet

#: Engines drivable by a session (single or partitioned).
Engine = AlexEngine | PartitionedAlex

#: Called at each episode boundary with (episode_stats, candidates).
EpisodeCallback = Callable[[EpisodeStats, LinkSet], None]


class FeedbackSession:
    """Random-candidate feedback loop (the paper's experimental driver)."""

    def __init__(
        self,
        engine: Engine,
        oracle: FeedbackOracle,
        seed: int = 0,
        on_episode_end: EpisodeCallback | None = None,
    ):
        self.engine = engine
        self.oracle = oracle
        self.rng = random.Random(seed)
        self.on_episode_end = on_episode_end
        self.total_feedback = 0
        self.elapsed_seconds = 0.0

    def _candidate_pool(self) -> list[Link]:
        pool = list(self.engine.candidates)
        pool.sort(key=lambda link: (link.left.value, link.right.value))
        return pool

    def run_episode(self, episode_size: int) -> EpisodeStats:
        """Collect one episode of feedback, then improve the policy."""
        if episode_size < 1:
            raise ConfigError(f"episode_size must be >= 1, got {episode_size}")
        started = time.perf_counter()
        # The trace span groups every engine audit event of this episode
        # under one trace id; a no-op handle when no tracer is installed.
        with obs.span("episode"), trace.span(
            "alex.episode.run", index=self.engine.episodes_completed + 1
        ):
            pool = self._candidate_pool()
            for _ in range(episode_size):
                if not pool:
                    break
                link = pool[self.rng.randrange(len(pool))]
                verdict = self.oracle.judge(link)
                discovered = self.engine.process_feedback(link, verdict)
                self.total_feedback += 1
                obs.inc("session.feedback.items")
                if verdict is False or discovered:
                    # The pool changed: negative feedback removed the link;
                    # positive feedback may have added links worth sampling.
                    pool = self._candidate_pool()
            stats = self.engine.end_episode()
        self.elapsed_seconds += time.perf_counter() - started
        if self.on_episode_end is not None:
            self.on_episode_end(stats, self.engine.candidates)
        return stats

    def run(self, episode_size: int, max_episodes: int | None = None) -> int:
        """Run episodes until the engine stops; returns episodes run."""
        episodes = 0
        budget = max_episodes if max_episodes is not None else self._config_max_episodes()
        while not self.engine.stopped and episodes < budget:
            self.run_episode(episode_size)
            episodes += 1
        return episodes

    def _config_max_episodes(self) -> int:
        if isinstance(self.engine, AlexEngine):
            return self.engine.config.max_episodes
        return self.engine.config.max_episodes


class QueryFeedbackSession:
    """Feedback through federated query answers, as deployed (Figure 1).

    Each call to :meth:`submit_query` executes a federated SELECT; for each
    answer row derived through at least one candidate link, the oracle's
    verdict on the row becomes feedback on every link the row used. The
    verdict for a row is the conjunction of its links' correctness — an
    answer built on any wrong link is a wrong answer.
    """

    def __init__(
        self,
        alex: Engine,
        federation: FederatedEngine,
        oracle: FeedbackOracle,
    ):
        self.alex = alex
        self.federation = federation
        self.oracle = oracle
        self.answers_judged = 0

    def submit_query(self, query_text: str) -> int:
        """Run a query and feed back on its link-derived answers.

        Returns the number of feedback items produced.
        """
        result = self.federation.select(query_text)
        items = 0
        for row in result.cross_dataset_rows():
            # deterministic link order (frozenset iteration is hash-salted)
            row_links = sorted(
                row.links_used, key=lambda l: (l.left.value, l.right.value)
            )
            row_correct = all(self.oracle.judge(link) for link in row_links)
            self.answers_judged += 1
            obs.inc("session.answers.judged")
            for link in row_links:
                # Per the paper: feedback on the answer is interpreted as
                # feedback on the link(s) used to produce it.
                verdict = row_correct if row_correct else self.oracle.judge(link)
                self.alex.process_feedback(link, verdict)
                items += 1
        return items
