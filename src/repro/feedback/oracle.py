"""Feedback oracles: simulated users judging links.

The paper's evaluation generates feedback by sampling a random candidate
link and comparing it against the ground truth (Section 7.1, "Generating
Feedback"); Appendix C studies a 10%-incorrect variant. Both oracles live
here. In a deployment these would be real users approving/rejecting
federated query answers — see :mod:`repro.feedback.session` for the
query-level route.
"""

from __future__ import annotations

import random
from typing import Iterable, Protocol

from repro.errors import ConfigError
from repro.links import Link, LinkSet


class FeedbackOracle(Protocol):
    """Anything that can judge a link."""

    def judge(self, link: Link) -> bool:
        """True = approve (link is correct), False = reject."""
        ...


class GroundTruthOracle:
    """Judges links by exact membership in the ground-truth link set."""

    def __init__(self, ground_truth: LinkSet | Iterable[Link]):
        self.ground_truth = (
            ground_truth if isinstance(ground_truth, LinkSet) else LinkSet(ground_truth)
        )

    def judge(self, link: Link) -> bool:
        return link in self.ground_truth


class NoisyOracle:
    """Wraps an oracle and flips each judgement with probability
    ``error_rate`` (Appendix C uses 0.1)."""

    def __init__(self, inner: FeedbackOracle, error_rate: float, seed: int = 0):
        if not (0.0 <= error_rate < 1.0):
            raise ConfigError(f"error_rate must be in [0, 1), got {error_rate}")
        self.inner = inner
        self.error_rate = error_rate
        self.rng = random.Random(seed)

    def judge(self, link: Link) -> bool:
        verdict = self.inner.judge(link)
        if self.rng.random() < self.error_rate:
            return not verdict
        return verdict
