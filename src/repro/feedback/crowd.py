"""Crowd feedback: aggregating judgements from several imperfect users.

The paper (Section 6.3) suggests refining feedback "obtained from a large
number of users (e.g., using techniques from [16])" — McCann et al.'s
community-based matching. :class:`MajorityVoteOracle` simulates that setup:
``panel_size`` users with independent error rates judge each link, and the
majority verdict wins. With odd panels and error rates below 0.5 the
aggregate error rate drops exponentially with the panel size (Condorcet),
which :mod:`benchmarks.bench_crowd_feedback` measures against ALEX quality.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import ConfigError
from repro.feedback.oracle import FeedbackOracle
from repro.links import Link


class MajorityVoteOracle:
    """A panel of noisy users; the majority verdict is returned.

    ``error_rates`` gives each panelist's probability of judging wrongly;
    passing a single float replicates it across ``panel_size`` users.
    """

    def __init__(
        self,
        inner: FeedbackOracle,
        panel_size: int = 3,
        error_rates: float | Sequence[float] = 0.1,
        seed: int = 0,
    ):
        if panel_size < 1 or panel_size % 2 == 0:
            raise ConfigError(f"panel_size must be a positive odd number, got {panel_size}")
        if isinstance(error_rates, (int, float)):
            rates = [float(error_rates)] * panel_size
        else:
            rates = [float(rate) for rate in error_rates]
        if len(rates) != panel_size:
            raise ConfigError(
                f"need {panel_size} error rates, got {len(rates)}"
            )
        for rate in rates:
            if not (0.0 <= rate < 0.5):
                raise ConfigError(
                    f"per-user error rates must be in [0, 0.5) for majority "
                    f"voting to help, got {rate}"
                )
        self.inner = inner
        self.error_rates = rates
        self.rng = random.Random(seed)
        self.votes_cast = 0

    def judge(self, link: Link) -> bool:
        truth = self.inner.judge(link)
        approvals = 0
        for rate in self.error_rates:
            vote = truth if self.rng.random() >= rate else not truth
            self.votes_cast += 1
            if vote:
                approvals += 1
        return approvals * 2 > len(self.error_rates)

    def effective_error_rate(self, samples: int = 10000, seed: int = 1) -> float:
        """Monte-Carlo estimate of the panel's aggregate error rate."""
        rng = random.Random(seed)
        errors = 0
        for _ in range(samples):
            approvals = 0
            for rate in self.error_rates:
                if rng.random() >= rate:
                    approvals += 1
            if approvals * 2 <= len(self.error_rates):
                errors += 1
        return errors / samples
