"""Benchmark harness for feature-space construction.

Measures the naive quadratic scoring path against the prepared-entity fast
path (and optionally the multi-process build) on generated bundles of
increasing size, proves parity between the paths on every run, and emits a
machine-readable record file (``BENCH_space.json``) so speedups are tracked
in-repo rather than asserted in prose.

This module is a library: it never prints. ``repro bench`` (and the
``tools/bench.py`` wrapper) render :func:`render_report` and write the JSON.
Wall-clock numbers are environment-dependent by nature, so CI only checks
parity and schema — the committed ``BENCH_space.json`` documents a reference
machine (see ``docs/performance.md``).
"""

from __future__ import annotations

import json
import platform
import time
from typing import Any

from repro import obs
from repro.datasets import PERSON_PROFILE, PairSpec, generate_pair
from repro.features.feature_set import DEFAULT_THETA
from repro.features.space import FeatureSpace
from repro.rdf.entity import Entity, entities_of
from repro.similarity.prepared import clear_caches

#: Schema identifier of the emitted payload.
BENCH_FORMAT = "repro-bench/1"

#: Default output file, at the repo root by convention.
DEFAULT_OUT = "BENCH_space.json"

#: Generated bundles, smallest first. The acceptance gate reads the last
#: (largest) one; ``--quick`` keeps only the first for CI smoke runs.
BUNDLE_SPECS: tuple[PairSpec, ...] = (
    PairSpec(
        name="space-small",
        left_name="left",
        right_name="right",
        profiles=(PERSON_PROFILE,),
        n_shared=60,
        n_left_only=20,
        n_right_only=20,
        seed=11,
    ),
    PairSpec(
        name="space-medium",
        left_name="left",
        right_name="right",
        profiles=(PERSON_PROFILE,),
        n_shared=150,
        n_left_only=50,
        n_right_only=50,
        seed=11,
    ),
    PairSpec(
        name="space-large",
        left_name="left",
        right_name="right",
        profiles=(PERSON_PROFILE,),
        n_shared=400,
        n_left_only=133,
        n_right_only=133,
        seed=11,
    ),
)


def parity_mismatches(reference: FeatureSpace, candidate: FeatureSpace) -> int:
    """Number of links whose presence or feature scores differ.

    Zero means the two spaces are exactly equal: the same admitted links and,
    for each, bit-identical feature sets.
    """
    links_a = set(reference.links())
    links_b = set(candidate.links())
    mismatches = len(links_a ^ links_b)
    for link in links_a & links_b:
        if reference.feature_set(link) != candidate.feature_set(link):
            mismatches += 1
    return mismatches


def _cache_hit_rate(snapshot: dict) -> float | None:
    hits = obs.counter_total(snapshot, "similarity.cache.hits")
    misses = obs.counter_total(snapshot, "similarity.cache.misses")
    total = hits + misses
    if total <= 0:
        return None
    return hits / total


def _histogram_sum(snapshot: dict, name: str) -> float:
    """Total seconds recorded under one timer name (all label variants)."""
    return sum(h["sum"] for h in snapshot.get("histograms", ()) if h["name"] == name)


def _phase_breakdown(snapshot: dict) -> dict[str, float]:
    """Per-phase wall seconds of one build: ship (encode + decode both
    directions), score (blocking + scoring), merge (delta decode + union +
    freeze). Worker-side timers merge into the same names via the returned
    obs snapshots, so the breakdown spans both sides of the pool."""
    return {
        "ship": round(_histogram_sum(snapshot, "space.build.ship"), 6),
        "score": round(
            _histogram_sum(snapshot, "space.build.score")
            + _histogram_sum(snapshot, "space.build.block"),
            6,
        ),
        "merge": round(
            _histogram_sum(snapshot, "space.build.merge")
            + _histogram_sum(snapshot, "space.build.freeze"),
            6,
        ),
    }


def _timed_build(
    left: list[Entity],
    right: list[Entity],
    theta: float,
    fast: bool,
    workers: int,
) -> tuple[FeatureSpace, float, dict]:
    """One cold build under an isolated obs registry."""
    clear_caches()
    with obs.use_registry(obs.Registry("bench")) as registry:
        start = time.perf_counter()
        space = FeatureSpace.build(left, right, theta, fast=fast, workers=workers)
        wall = time.perf_counter() - start
    return space, wall, registry.snapshot()


def _timed_build_mp(
    left: list[Entity],
    right: list[Entity],
    theta: float,
    workers: int,
) -> tuple[FeatureSpace, float, float, dict, list]:
    """Cold + steady-state multi-process builds on the persistent pool.

    The cold build restarts the pool (fresh worker processes, cleared
    caches) and measures the first build end to end — spawn cost included.
    The steady build immediately rebuilds on the now-warm pool, which is
    the number that matters for a long-lived engine: workers already exist
    and their interned term tables and score memos are hot, so repeated
    builds of live (churning) datasets skip respawn and most re-derivation.
    Returns ``(space, steady_wall, cold_wall, steady_snapshot, stats)``.
    """
    from repro.core.parallel_mp import build_space_parallel
    from repro.core.workers import shared_pool

    pool = shared_pool(workers)
    pool.restart()
    clear_caches()
    with obs.use_registry(obs.Registry("bench")):
        start = time.perf_counter()
        build_space_parallel(left, right, theta=theta, fast=True, workers=workers, pool=pool)
        cold_wall = time.perf_counter() - start
    stats: list = []
    with obs.use_registry(obs.Registry("bench")) as registry:
        start = time.perf_counter()
        space = build_space_parallel(
            left, right, theta=theta, fast=True, workers=workers, pool=pool, stats_out=stats
        )
        steady_wall = time.perf_counter() - start
    return space, steady_wall, cold_wall, registry.snapshot(), stats


def _record(
    mode: str,
    dataset: str,
    left: list[Entity],
    right: list[Entity],
    space: FeatureSpace,
    wall: float,
    snapshot: dict,
    workers: int,
) -> dict[str, Any]:
    pairs = space.total_pairs_considered
    return {
        "op": "space.build",
        "mode": mode,
        "dataset": dataset,
        "n_left": len(left),
        "n_right": len(right),
        "pairs_considered": pairs,
        "pairs_scanned": int(obs.counter_total(snapshot, "space.pairs.scanned")),
        "wall_seconds": round(wall, 6),
        "pairs_per_second": round(pairs / wall, 1) if wall > 0 else None,
        "cache_hit_rate": _cache_hit_rate(snapshot),
        "workers": workers,
        "space_size": space.size,
        "phases": _phase_breakdown(snapshot),
    }


def run_bench(
    quick: bool = False,
    workers: int = 0,
    theta: float = DEFAULT_THETA,
) -> dict[str, Any]:
    """Run the construction benchmark and return the payload.

    Each bundle is built as naive and fast (cold caches, isolated obs
    registries) and — when ``workers`` > 1 — as fast multi-process at every
    sweep point in {2, 4, …, workers}. Multi-process builds run on the
    persistent worker pool and record two numbers: ``cold_wall_seconds``
    (fresh pool, empty caches — spawn cost included) and ``wall_seconds``
    (steady state: an immediate rebuild on the warm pool, the cost a
    long-lived engine pays per build). Single-process records stay
    cold-per-build, matching every previous bench file; the protocol
    asymmetry is deliberate and documented in ``docs/performance.md``.

    Every fast/fast-mp build is parity-checked against the naive build of
    the same bundle. ``payload["speedup"]`` is naive/fast wall time on the
    largest bundle; ``payload["speedup_mp"]`` is fast/fast-mp (steady) on
    the largest bundle at the highest worker count.
    """
    specs = BUNDLE_SPECS[:1] if quick else BUNDLE_SPECS
    sweep = sorted({w for w in (2, 4, workers) if 2 <= w <= workers}) if workers > 1 else []
    records: list[dict[str, Any]] = []
    mismatches = 0
    checked = 0
    speedup = None
    speedup_mp = None
    for spec in specs:
        pair = generate_pair(spec)
        left = list(entities_of(pair.left))
        right = list(entities_of(pair.right))
        naive, naive_wall, naive_snap = _timed_build(left, right, theta, False, 1)
        fast, fast_wall, fast_snap = _timed_build(left, right, theta, True, 1)
        records.append(_record("naive", spec.name, left, right, naive, naive_wall, naive_snap, 1))
        records.append(_record("fast", spec.name, left, right, fast, fast_wall, fast_snap, 1))
        checked += 1
        mismatches += parity_mismatches(naive, fast)
        if fast_wall > 0:
            speedup = round(naive_wall / fast_wall, 2)  # last spec = largest
        for point in sweep:
            mp_space, mp_wall, cold_wall, mp_snap, stats = _timed_build_mp(
                left, right, theta, point
            )
            record = _record(
                "fast-mp", spec.name, left, right, mp_space, mp_wall, mp_snap, point
            )
            record["cold_wall_seconds"] = round(cold_wall, 6)
            record["partitions"] = [
                {
                    "name": s.name,
                    "pairs_considered": s.pairs_considered,
                    "pairs_admitted": s.pairs_admitted,
                    "bytes_shipped": s.bytes_shipped,
                    "wall_seconds": round(s.wall_seconds, 6),
                }
                for s in stats
            ]
            records.append(record)
            checked += 1
            mismatches += parity_mismatches(naive, mp_space)
            if mp_wall > 0:
                speedup_mp = round(fast_wall / mp_wall, 2)  # last = largest, most workers
    if sweep:
        from repro.core.workers import shutdown_shared_pool

        shutdown_shared_pool()
    return {
        "format": BENCH_FORMAT,
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "theta": theta,
        "quick": quick,
        "workers_sweep": sweep,
        "parity": {"checked": checked, "ok": mismatches == 0, "mismatches": mismatches},
        "speedup": speedup,
        "speedup_mp": speedup_mp,
        "records": records,
    }


def write_payload(payload: dict[str, Any], path: str = DEFAULT_OUT) -> None:
    """Write the payload as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_report(payload: dict[str, Any]) -> str:
    """Human-readable table of a :func:`run_bench` payload."""
    lines = [
        f"feature-space construction bench (θ={payload['theta']}, "
        f"python {payload['python']})",
        f"{'dataset':<14} {'mode':<8} {'workers':>7} {'pairs':>10} "
        f"{'wall s':>8} {'pairs/s':>12} {'hit rate':>9} {'size':>7}",
    ]
    for record in payload["records"]:
        rate = record["cache_hit_rate"]
        cold = record.get("cold_wall_seconds")
        lines.append(
            f"{record['dataset']:<14} {record['mode']:<8} {record['workers']:>7} "
            f"{record['pairs_considered']:>10} {record['wall_seconds']:>8.3f} "
            f"{record['pairs_per_second']:>12.0f} "
            f"{(f'{rate:.1%}' if rate is not None else '-'):>9} "
            f"{record['space_size']:>7}"
            + (f"  (cold {cold:.3f}s)" if cold is not None else "")
        )
    parity = payload["parity"]
    lines.append(
        f"parity: {'OK' if parity['ok'] else 'FAILED'} "
        f"({parity['checked']} builds checked, {parity['mismatches']} mismatches)"
    )
    if payload["speedup"] is not None:
        lines.append(f"speedup (largest bundle, fast vs naive, 1 process): {payload['speedup']}x")
    if payload.get("speedup_mp") is not None:
        lines.append(
            "speedup (largest bundle, fast-mp steady-state on the persistent "
            f"pool vs fast cold): {payload['speedup_mp']}x"
        )
    return "\n".join(lines)
