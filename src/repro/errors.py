"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base type. Subsystems raise the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class RDFError(ReproError):
    """Base class for errors in the RDF substrate."""


class TermError(RDFError):
    """An RDF term was constructed or used incorrectly."""


class ParseError(RDFError):
    """A serialization (N-Triples, Turtle, SPARQL) failed to parse.

    Carries the line/column of the failure when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class DataValidationError(RDFError):
    """Static data validation rejected a graph or link set (strict mode).

    ``diagnostics`` carries every
    :class:`~repro.rdf.validate.DataDiagnostic` the validator produced,
    warnings included, so callers can render the full report.
    """

    def __init__(self, problems, diagnostics=None):
        if isinstance(problems, str):
            problems = [problems]
        super().__init__("data validation rejected the input: " + "; ".join(problems))
        self.diagnostics = list(diagnostics) if diagnostics is not None else []


class QueryError(ReproError):
    """Base class for SPARQL query errors."""


class QuerySyntaxError(QueryError, ParseError):
    """The SPARQL query text is malformed."""


class QueryEvaluationError(QueryError):
    """A well-formed query could not be evaluated (e.g. bad FILTER types)."""


class QueryAnalysisError(QueryError):
    """Static analysis rejected a query (strict mode).

    ``diagnostics`` carries every
    :class:`~repro.sparql.analysis.Diagnostic` the analyzer produced,
    warnings included, so callers can render the full report.
    """

    def __init__(self, problems, diagnostics=None):
        if isinstance(problems, str):
            problems = [problems]
        super().__init__("static analysis rejected the query: " + "; ".join(problems))
        self.diagnostics = list(diagnostics) if diagnostics is not None else []


class FederationError(ReproError):
    """A federated query could not be planned or executed.

    ``trace_id`` carries the active trace id at raise time (None when
    tracing is off), so a failed federated query can be joined back to its
    ``federation.query.execute`` audit trail.
    """

    def __init__(self, message: str = "", trace_id: str | None = None):
        super().__init__(message)
        if trace_id is None:
            # Lazy import: errors is imported by obs.trace itself.
            from repro.obs import trace

            trace_id = trace.current_trace_id()
        self.trace_id = trace_id


class SimilarityError(ReproError):
    """A similarity function was applied to unsupported operands."""


class FeatureSpaceError(ReproError):
    """The feature space was queried or built inconsistently."""


class LinkingError(ReproError):
    """An automatic linking algorithm (e.g. PARIS) failed."""


class PolicyError(ReproError):
    """The reinforcement-learning policy was used inconsistently."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class DatasetError(ReproError):
    """A dataset could not be generated or loaded."""


class ObsError(ReproError):
    """An observability instrument was declared or merged inconsistently."""
