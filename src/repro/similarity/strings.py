"""String similarity metrics, all returning scores in [0, 1].

These are the workhorses behind the paper's generic similarity function
(Section 4.1): feature values are similarity scores between attribute
values, and for textual attributes those scores come from here.
"""

from __future__ import annotations

import re
from typing import Mapping

_TOKEN_RE = re.compile(r"[A-Za-z0-9]+")


def normalize(text: str) -> str:
    """Case-fold and collapse whitespace; the canonical form all metrics use."""
    return " ".join(text.lower().split())


def tokens(text: str) -> list[str]:
    """Alphanumeric tokens of the normalized text."""
    return _TOKEN_RE.findall(text.lower())


def levenshtein_distance(a: str, b: str) -> int:
    """Classic edit distance with a two-row dynamic program."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) > len(b):
        a, b = b, a
    previous = list(range(len(a) + 1))
    for j, char_b in enumerate(b, start=1):
        current = [j]
        for i, char_a in enumerate(a, start=1):
            insert_cost = current[i - 1] + 1
            delete_cost = previous[i] + 1
            substitute_cost = previous[i - 1] + (char_a != char_b)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """1 − normalized edit distance."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity: transposition-aware common-character ratio."""
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    window = max(len_a, len_b) // 2 - 1
    window = max(window, 0)
    matches_a = [False] * len_a
    matches_b = [False] * len_b
    matches = 0
    for i, char in enumerate(a):
        start = max(0, i - window)
        end = min(i + window + 1, len_b)
        for j in range(start, end):
            if matches_b[j] or b[j] != char:
                continue
            matches_a[i] = True
            matches_b[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    k = 0
    for i in range(len_a):
        if not matches_a[i]:
            continue
        while not matches_b[k]:
            k += 1
        if a[i] != b[k]:
            transpositions += 1
        k += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler: Jaro boosted by a shared prefix of up to 4 chars."""
    jaro = jaro_similarity(a, b)
    prefix = 0
    for char_a, char_b in zip(a[:4], b[:4]):
        if char_a != char_b:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def token_jaccard_similarity(a: str, b: str) -> float:
    """Jaccard overlap of the token sets."""
    set_a, set_b = set(tokens(a)), set(tokens(b))
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


def _trigrams(text: str) -> set[str]:
    padded = f"  {text} "
    return {padded[i:i + 3] for i in range(len(padded) - 2)}


def trigrams(text: str) -> set[str]:
    """Padded character trigrams of the normalized text (the sets
    :func:`trigram_dice_similarity` compares; exposed for prepared-entity
    caching)."""
    return _trigrams(normalize(text))


def trigram_dice_similarity(a: str, b: str) -> float:
    """Dice coefficient over padded character trigrams."""
    norm_a, norm_b = normalize(a), normalize(b)
    if norm_a == norm_b:
        return 1.0
    if not norm_a or not norm_b:
        return 0.0
    grams_a, grams_b = _trigrams(norm_a), _trigrams(norm_b)
    return 2.0 * len(grams_a & grams_b) / (len(grams_a) + len(grams_b))


# --------------------------------------------------------------------- #
# θ-aware upper bounds
#
# Cheap, provable ceilings on the expensive metrics: when a bound is
# already below the threshold θ (or below the best score seen so far in a
# max-reduction) the metric itself never needs to run. Every bound is
# ≥ the true score for the same inputs, so skipping on the bound keeps the
# admitted results bit-identical to the unfiltered computation.
# --------------------------------------------------------------------- #


def _char_counts(text: str) -> dict[str, int]:
    counts: dict[str, int] = {}
    for char in text:
        counts[char] = counts.get(char, 0) + 1
    return counts


def _common_char_count(counts_a: Mapping[str, int], counts_b: Mapping[str, int]) -> int:
    """Size of the character multiset intersection (caps Jaro matches)."""
    if len(counts_a) > len(counts_b):
        counts_a, counts_b = counts_b, counts_a
    common = 0
    for char, count in counts_a.items():
        other = counts_b.get(char, 0)
        common += count if count < other else other
    return common


def jaro_winkler_bound_from_stats(
    len_a: int,
    len_b: int,
    common_chars: int,
    shared_prefix: int,
    prefix_weight: float = 0.1,
) -> float:
    """Upper bound on Jaro-Winkler from length/character statistics.

    Jaro is ``(m/|a| + m/|b| + (m−t)/m) / 3`` with ``m`` the number of
    matches; ``m`` can never exceed the character multiset intersection,
    and ``(m−t)/m ≤ 1``, so substituting the intersection size bounds Jaro
    from above. The Winkler boost is monotone in Jaro for a fixed shared
    prefix, so applying the *actual* shared prefix (cheap to read off the
    first four characters) to the Jaro bound keeps the result an upper
    bound on the full metric.
    """
    if common_chars <= 0:
        # jaro_similarity returns 1.0 for equal strings (incl. both empty)
        # and 0.0 whenever there are no matches.
        return 1.0 if len_a == 0 and len_b == 0 else 0.0
    matches = min(common_chars, len_a, len_b)
    jaro_bound = (matches / len_a + matches / len_b + 1.0) / 3.0
    if jaro_bound >= 1.0:
        return 1.0
    return jaro_bound + shared_prefix * prefix_weight * (1.0 - jaro_bound)


def shared_prefix_length(a: str, b: str, limit: int = 4) -> int:
    """Length of the common prefix of ``a`` and ``b``, capped at ``limit``."""
    prefix = 0
    for char_a, char_b in zip(a[:limit], b[:limit]):
        if char_a != char_b:
            break
        prefix += 1
    return prefix


def jaro_winkler_upper_bound(a: str, b: str) -> float:
    """Upper bound on :func:`jaro_winkler_similarity` for the same inputs."""
    if a == b:
        return 1.0
    return jaro_winkler_bound_from_stats(
        len(a), len(b), _common_char_count(_char_counts(a), _char_counts(b)),
        shared_prefix_length(a, b),
    )


def token_jaccard_bound_from_sizes(size_a: int, size_b: int) -> float:
    """Upper bound on token Jaccard from the two token-set sizes alone:
    ``|A∩B|/|A∪B| ≤ min/max`` (and two empty sets score exactly 1.0)."""
    if size_a == 0 and size_b == 0:
        return 1.0
    if size_a == 0 or size_b == 0:
        return 0.0
    return min(size_a, size_b) / max(size_a, size_b)


def token_jaccard_upper_bound(a: str, b: str) -> float:
    """Upper bound on :func:`token_jaccard_similarity` for the same inputs."""
    return token_jaccard_bound_from_sizes(len(set(tokens(a))), len(set(tokens(b))))


def levenshtein_upper_bound(a: str, b: str) -> float:
    """Length-ratio upper bound on :func:`levenshtein_similarity`:
    edit distance is at least ``|len(a) − len(b)|``."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - abs(len(a) - len(b)) / longest


def string_similarity_upper_bound(a: str, b: str) -> float:
    """Upper bound on the composite :func:`string_similarity`."""
    norm_a, norm_b = normalize(a), normalize(b)
    if norm_a == norm_b:
        return 1.0
    if not norm_a or not norm_b:
        return 0.0
    return max(
        jaro_winkler_upper_bound(norm_a, norm_b),
        token_jaccard_upper_bound(norm_a, norm_b),
    )


def string_similarity(a: str, b: str) -> float:
    """The composite string score used for feature values.

    Combines normalized-exact, Jaro-Winkler, and token overlap: exact match
    short-circuits to 1.0; otherwise the max of Jaro-Winkler (good for
    typos/short strings) and token Jaccard (good for word reorderings and
    long titles), which keeps the score meaningful across value styles.
    """
    norm_a, norm_b = normalize(a), normalize(b)
    if norm_a == norm_b:
        return 1.0
    if not norm_a or not norm_b:
        return 0.0
    return max(
        jaro_winkler_similarity(norm_a, norm_b),
        token_jaccard_similarity(norm_a, norm_b),
    )
