"""Type-aware similarity functions in [0, 1] for RDF attribute values."""

from repro.similarity.generic import (
    best_object_similarity,
    literal_similarity,
    object_similarity,
    uri_similarity,
)
from repro.similarity.numbers import (
    boolean_similarity,
    date_similarity,
    numeric_similarity,
    year_similarity,
)
from repro.similarity.strings import (
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    normalize,
    string_similarity,
    token_jaccard_similarity,
    tokens,
    trigram_dice_similarity,
)
from repro.similarity.vectors import TfIdfModel, soft_token_similarity

__all__ = [
    "TfIdfModel",
    "best_object_similarity",
    "soft_token_similarity",
    "boolean_similarity",
    "date_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "literal_similarity",
    "normalize",
    "numeric_similarity",
    "object_similarity",
    "string_similarity",
    "token_jaccard_similarity",
    "tokens",
    "trigram_dice_similarity",
    "uri_similarity",
    "year_similarity",
]
