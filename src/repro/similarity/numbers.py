"""Numeric, date, and boolean similarity, each in [0, 1]."""

from __future__ import annotations

import math
from datetime import date, datetime


def numeric_similarity(a: float, b: float) -> float:
    """Relative-difference similarity: 1 − |a−b| / max(|a|, |b|).

    Equal values (including both zero) score 1.0; values of opposite sign or
    wildly different magnitude approach 0. This matches the intuition the
    paper relies on for attributes like birth years and counts: values a few
    percent apart are "close", an order of magnitude apart are not.
    """
    if a == b:
        return 1.0
    if math.isnan(a) or math.isnan(b):
        return 0.0
    denominator = max(abs(a), abs(b))
    if denominator == 0.0:
        return 1.0
    score = 1.0 - abs(a - b) / denominator
    return max(0.0, min(1.0, score))


def year_similarity(a: int, b: int, scale: float = 10.0) -> float:
    """Similarity of two calendar years with exponential decay.

    Years differ on an absolute scale (1984 vs 1985 is close; relative
    difference would call them nearly identical to 984 vs 985 too), so a
    dedicated decay with a configurable ``scale`` (years at which the score
    drops to 1/e) behaves better than :func:`numeric_similarity`.
    """
    return math.exp(-abs(a - b) / scale)


def date_similarity(a: date | datetime, b: date | datetime, scale_days: float = 365.0) -> float:
    """Exponential-decay similarity on the day gap between two dates."""
    day_a = a.date() if isinstance(a, datetime) else a
    day_b = b.date() if isinstance(b, datetime) else b
    gap_days = abs((day_a - day_b).days)
    return math.exp(-gap_days / scale_days)


def boolean_similarity(a: bool, b: bool) -> float:
    """1.0 when equal, 0.0 otherwise."""
    return 1.0 if a == b else 0.0
