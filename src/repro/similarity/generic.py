"""The generic, type-aware similarity function of Section 4.1.

The paper: "ALEX uses a generic similarity function that depends on the type
of the attributes to be compared (string, integer, float, date, etc.)".
:func:`object_similarity` dispatches on the Python types obtained from the
literals' XSD datatypes; mixed types fall back to string comparison of the
lexical forms, and URI objects compare by local name (two entities pointing
at the "same" resource under different namespaces still score high).
"""

from __future__ import annotations

from datetime import date, datetime

from repro.rdf.terms import Literal, Term, URIRef
from repro.similarity.numbers import (
    boolean_similarity,
    date_similarity,
    numeric_similarity,
    year_similarity,
)
from repro.similarity.strings import string_similarity


def literal_similarity(a: Literal, b: Literal) -> float:
    """Similarity of two literals using their typed Python values."""
    value_a, value_b = a.to_python(), b.to_python()
    if isinstance(value_a, bool) and isinstance(value_b, bool):
        return boolean_similarity(value_a, value_b)
    if isinstance(value_a, (int, float)) and isinstance(value_b, (int, float)):
        # Calendar years get absolute-scale treatment.
        if _looks_like_year(value_a) and _looks_like_year(value_b):
            return year_similarity(int(value_a), int(value_b))
        return numeric_similarity(float(value_a), float(value_b))
    if isinstance(value_a, (date, datetime)) and isinstance(value_b, (date, datetime)):
        return date_similarity(value_a, value_b)
    return string_similarity(a.lexical, b.lexical)


def uri_similarity(a: URIRef, b: URIRef) -> float:
    """URI objects compare by exact match, else local-name string score."""
    if a == b:
        return 1.0
    return string_similarity(_humanize(a.local_name), _humanize(b.local_name))


def object_similarity(a: Term, b: Term) -> float:
    """The generic score in [0,1] between two RDF object terms."""
    if isinstance(a, Literal) and isinstance(b, Literal):
        return literal_similarity(a, b)
    if isinstance(a, URIRef) and isinstance(b, URIRef):
        return uri_similarity(a, b)
    # Literal vs URI: compare lexical form against humanized local name.
    if isinstance(a, Literal) and isinstance(b, URIRef):
        return string_similarity(a.lexical, _humanize(b.local_name))
    if isinstance(a, URIRef) and isinstance(b, Literal):
        return string_similarity(_humanize(a.local_name), b.lexical)
    return 0.0


def best_object_similarity(objects_a, objects_b) -> float:
    """Max pairwise similarity between two object collections.

    Multi-valued attributes (e.g. several labels) count as similar when
    their best pairing is similar.
    """
    best = 0.0
    for obj_a in objects_a:
        for obj_b in objects_b:
            score = object_similarity(obj_a, obj_b)
            if score > best:
                best = score
                if best >= 1.0:
                    return 1.0
    return best


def _looks_like_year(value) -> bool:
    return isinstance(value, int) and 1000 <= value <= 2999


def humanize_local_name(local_name: str) -> str:
    """Public alias of :func:`_humanize` (the prepared-entity layer needs
    the exact same text the slow path compares)."""
    return _humanize(local_name)


def _humanize(local_name: str) -> str:
    """Turn ``LeBron_James`` / ``lebronJames`` into space-separated words."""
    spaced = local_name.replace("_", " ").replace("-", " ")
    out: list[str] = []
    for index, char in enumerate(spaced):
        if (
            char.isupper()
            and index > 0
            and spaced[index - 1].islower()
        ):
            out.append(" ")
        out.append(char)
    return "".join(out)
