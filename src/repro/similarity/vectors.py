"""Vector-space text similarity: TF-IDF cosine and soft token matching.

Short values (names, labels) are well served by edit-distance metrics; long
values (abstracts, descriptions) need term weighting. :class:`TfIdfModel`
builds document frequencies over a corpus of texts and scores cosine
similarity between TF-IDF vectors; :func:`soft_token_similarity` is a
corpus-free middle ground that matches tokens fuzzily (Jaro-Winkler ≥ a
threshold counts as a match), handling typos inside multi-token values.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable

from repro.errors import SimilarityError
from repro.similarity.strings import jaro_winkler_similarity, tokens


class TfIdfModel:
    """TF-IDF weights learned from a corpus, scoring cosine similarity."""

    def __init__(self, corpus: Iterable[str]):
        self._document_frequency: Counter[str] = Counter()
        self._documents = 0
        for text in corpus:
            self._documents += 1
            for token in set(tokens(text)):
                self._document_frequency[token] += 1
        if self._documents == 0:
            raise SimilarityError("TfIdfModel requires a non-empty corpus")

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency; unseen tokens get the
        maximum weight (they are maximally discriminative)."""
        frequency = self._document_frequency.get(token, 0)
        return math.log((1 + self._documents) / (1 + frequency)) + 1.0

    def vector(self, text: str) -> dict[str, float]:
        """The TF-IDF vector of ``text`` (term frequency × idf)."""
        counts = Counter(tokens(text))
        total = sum(counts.values())
        if total == 0:
            return {}
        return {
            token: (count / total) * self.idf(token)
            for token, count in counts.items()
        }

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity of the two texts' TF-IDF vectors, in [0, 1]."""
        vector_a, vector_b = self.vector(a), self.vector(b)
        if not vector_a or not vector_b:
            return 1.0 if not vector_a and not vector_b else 0.0
        dot = sum(
            weight * vector_b.get(token, 0.0) for token, weight in vector_a.items()
        )
        norm_a = math.sqrt(sum(weight * weight for weight in vector_a.values()))
        norm_b = math.sqrt(sum(weight * weight for weight in vector_b.values()))
        if norm_a == 0.0 or norm_b == 0.0:
            return 0.0
        return min(1.0, dot / (norm_a * norm_b))

    @property
    def document_count(self) -> int:
        return self._documents


def soft_token_similarity(a: str, b: str, match_threshold: float = 0.9) -> float:
    """Fuzzy token overlap: tokens pair up when their Jaro-Winkler score
    reaches ``match_threshold``; the result is the best-pairing Dice score.

    'Lebron Jmaes' vs 'LeBron James' scores ~1.0 here, while plain token
    Jaccard scores 0 (no exact token matches).
    """
    tokens_a, tokens_b = tokens(a), tokens(b)
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    available = list(tokens_b)
    matches = 0.0
    for token_a in tokens_a:
        best_index = -1
        best_score = 0.0
        for index, token_b in enumerate(available):
            score = jaro_winkler_similarity(token_a, token_b)
            if score > best_score:
                best_score = score
                best_index = index
        if best_index >= 0 and best_score >= match_threshold:
            matches += best_score
            available.pop(best_index)
    return 2.0 * matches / (len(tokens_a) + len(tokens_b))
