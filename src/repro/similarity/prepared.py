"""Prepared entities: precomputed similarity inputs plus a score memo cache.

The naive similarity kernel re-derives everything from raw lexical forms for
every (entity, entity) pair: normalization, token sets, typed values. During
feature-space construction each entity participates in many pairs, so the
same derivations run thousands of times. This module computes them **once**
per entity (:class:`PreparedEntity` / :class:`PreparedTerm`), adds a bounded
memo cache on value-pair scores keyed by normalized lexical forms (literals
repeat heavily across entities — years, cities, person names), and applies
θ-aware upper bounds (see :mod:`repro.similarity.strings`) that skip the
expensive string metrics when the score provably cannot matter.

Invariant: for every feature the θ-filter admits, the fast path produces a
score **bit-identical** to the naive path — the prepared forms feed the very
same metric functions, the cache only stores their outputs, and a bound-based
skip happens only when the skipped score could not change the admitted
result. ``tests/test_perf_fastpath.py`` enforces this end to end.
"""

from __future__ import annotations

import struct
from array import array
from datetime import date, datetime

from repro import obs
from repro.rdf.entity import Entity
from repro.rdf.terms import BNode, Literal, Term, URIRef
from repro.similarity.generic import humanize_local_name
from repro.similarity.numbers import (
    boolean_similarity,
    date_similarity,
    numeric_similarity,
    year_similarity,
)
from repro.similarity.strings import (
    _common_char_count,
    _trigrams,
    jaro_winkler_bound_from_stats,
    normalize,
    shared_prefix_length,
    token_jaccard_bound_from_sizes,
    tokens,
)

#: Default bound on the value-pair score memo cache (entries, not bytes).
DEFAULT_SCORE_CACHE_SIZE = 1 << 18

#: Default bound on the per-term preparation cache.
DEFAULT_TERM_CACHE_SIZE = 1 << 16


class PreparedText:
    """One string's precomputed similarity inputs.

    ``norm`` is the canonical form every metric compares; ``tokens`` and
    ``char_counts`` feed the Jaccard score and the Jaro-Winkler upper bound.
    Trigram sets are derived lazily (nothing in the composite score needs
    them, but soft-TFIDF / Dice consumers reuse the prepared form).
    """

    __slots__ = ("norm", "length", "tokens", "char_counts", "char_positions", "_trigrams")

    def __init__(self, raw: str):
        self.norm = normalize(raw)
        self.length = len(self.norm)
        self.tokens = frozenset(tokens(self.norm))
        positions: dict[str, list[int]] = {}
        for index, char in enumerate(self.norm):
            if char in positions:
                positions[char].append(index)
            else:
                positions[char] = [index]
        #: char → sorted occurrence indexes; drives the prepared Jaro kernel
        self.char_positions = positions
        self.char_counts = {char: len(occ) for char, occ in positions.items()}
        self._trigrams: frozenset[str] | None = None

    @property
    def trigrams(self) -> frozenset[str]:
        if self._trigrams is None:
            self._trigrams = frozenset(_trigrams(self.norm))
        return self._trigrams

    def __repr__(self):
        return f"PreparedText({self.norm!r})"


#: Term categories mirroring the dispatch of ``object_similarity``.
_KIND_LITERAL = 0
_KIND_URI = 1
_KIND_OTHER = 2  # blank nodes etc. — the generic function scores these 0.0


class PreparedTerm:
    """One RDF object term with its typed value and string forms precomputed."""

    __slots__ = ("term", "kind", "value", "is_bool", "is_num", "is_year", "is_date", "text")

    def __init__(self, term: Term):
        self.term = term
        self.is_bool = self.is_num = self.is_year = self.is_date = False
        self.value = None
        if isinstance(term, Literal):
            self.kind = _KIND_LITERAL
            value = term.to_python()
            self.value = value
            self.is_bool = isinstance(value, bool)
            self.is_num = isinstance(value, (int, float))
            self.is_year = isinstance(value, int) and 1000 <= value <= 2999
            self.is_date = isinstance(value, (date, datetime))
            self.text = PreparedText(term.lexical)
        elif isinstance(term, URIRef):
            self.kind = _KIND_URI
            self.text = PreparedText(humanize_local_name(term.local_name))
        else:
            self.kind = _KIND_OTHER
            self.text = PreparedText("")

    def __repr__(self):
        return f"PreparedTerm({self.term!r})"


class PreparedEntity:
    """An :class:`~repro.rdf.entity.Entity` with every object term prepared."""

    __slots__ = ("entity", "uri", "arity", "attributes", "attr_items")

    def __init__(self, entity: Entity):
        self.entity = entity
        self.uri = entity.uri
        self.arity = entity.arity
        self.attributes = {
            predicate: prepare_objects(objects)
            for predicate, objects in entity.attributes.items()
        }
        #: items() materialized once — the matrix loop iterates it per pair
        self.attr_items = tuple(self.attributes.items())

    def __repr__(self):
        return f"<PreparedEntity {self.uri} with {self.arity} predicates>"


# --------------------------------------------------------------------- #
# Caches and their statistics
# --------------------------------------------------------------------- #

_term_cache: dict[Term, PreparedTerm] = {}
_term_cache_max = DEFAULT_TERM_CACHE_SIZE

#: Attribute tuples interned by their raw terms, so equal-valued attributes
#: of different entities share one prepared tuple object — which is what
#: lets the best-pairing memo below key by identity.
_objects_intern: dict[tuple[Term, ...], tuple[PreparedTerm, ...]] = {}
_objects_intern_max = DEFAULT_TERM_CACHE_SIZE

_score_cache: dict[tuple[str, str], float] = {}
_score_cache_max = DEFAULT_SCORE_CACHE_SIZE

#: Memo of best_prepared_similarity over interned attribute tuples, keyed by
#: the tuples themselves (identity hash — cheap, and keeps them alive so the
#: key can never dangle) plus θ. Repeated attribute combinations — constant
#: rdf:type values, pool values like cities and teams — resolve in one probe.
_best_cache: dict[tuple[tuple[PreparedTerm, ...], tuple[PreparedTerm, ...], float], float] = {}
_best_cache_max = DEFAULT_SCORE_CACHE_SIZE

_stats = {"hits": 0, "misses": 0, "attr_hits": 0, "attr_misses": 0, "skipped": 0}


def configure_score_cache(maxsize: int) -> None:
    """Bound the value-pair and attribute-pair score caches (0 disables)."""
    global _score_cache_max, _best_cache_max
    _score_cache_max = _best_cache_max = max(0, int(maxsize))
    while len(_score_cache) > _score_cache_max:
        _score_cache.pop(next(iter(_score_cache)))
    while len(_best_cache) > _best_cache_max:
        _best_cache.pop(next(iter(_best_cache)))


def clear_caches() -> None:
    """Drop all prepared-term and score cache entries (stats stay)."""
    _term_cache.clear()
    _objects_intern.clear()
    _score_cache.clear()
    _best_cache.clear()


def cache_info() -> dict:
    """Current cache sizes and unflushed hit/miss/skip tallies."""
    return {
        "score_entries": len(_score_cache),
        "score_max": _score_cache_max,
        "attr_entries": len(_best_cache),
        "attr_max": _best_cache_max,
        "term_entries": len(_term_cache),
        "term_max": _term_cache_max,
        **_stats,
    }


def flush_similarity_stats() -> None:
    """Publish accumulated cache/prefilter tallies as obs counters.

    The hot loop counts locally (an obs counter lookup per value pair would
    dominate the savings) and the space builder flushes once per build, so
    ``similarity.cache.{hits,misses}`` (labelled by cache layer) and
    ``similarity.prefilter.skipped`` appear in the snapshot of whichever
    registry is current at flush time.
    """
    if _stats["hits"]:
        obs.inc("similarity.cache.hits", _stats["hits"], layer="value")
    if _stats["misses"]:
        obs.inc("similarity.cache.misses", _stats["misses"], layer="value")
    if _stats["attr_hits"]:
        obs.inc("similarity.cache.hits", _stats["attr_hits"], layer="attribute")
    if _stats["attr_misses"]:
        obs.inc("similarity.cache.misses", _stats["attr_misses"], layer="attribute")
    if _stats["skipped"]:
        obs.inc("similarity.prefilter.skipped", _stats["skipped"])
    for key in list(_stats):
        _stats[key] = 0


def prepare_term(term: Term) -> PreparedTerm:
    """Prepared view of one object term, interned across entities."""
    prepared = _term_cache.get(term)
    if prepared is None:
        prepared = PreparedTerm(term)
        if len(_term_cache) >= _term_cache_max:
            _term_cache.pop(next(iter(_term_cache)))
        _term_cache[term] = prepared
    return prepared


def prepare_objects(objects: tuple[Term, ...]) -> tuple[PreparedTerm, ...]:
    """Prepared view of one attribute's object tuple, interned by value."""
    prepared = _objects_intern.get(objects)
    if prepared is None:
        prepared = tuple(prepare_term(obj) for obj in objects)
        if len(_objects_intern) >= _objects_intern_max:
            _objects_intern.pop(next(iter(_objects_intern)))
        _objects_intern[objects] = prepared
    return prepared


def prepare_entity(entity: Entity) -> PreparedEntity:
    """Prepared view of one entity (terms interned via :func:`prepare_term`)."""
    return PreparedEntity(entity)


# --------------------------------------------------------------------- #
# Scoring
# --------------------------------------------------------------------- #


def _prepared_jaro_winkler(
    text_a: PreparedText, text_b: PreparedText, shared_prefix: int
) -> float:
    """Jaro-Winkler over prepared texts, bit-identical to the generic metric.

    The generic ``jaro_similarity`` scans a window of ``b`` for every char of
    ``a``; this kernel replays the same greedy matching through ``b``'s
    precomputed char→positions lists with one advancing pointer per char.
    A position is passed over only when it is consumed by a match or falls
    permanently below the (monotonically advancing) window, so the matched
    (i, j) set — and with it the match and transposition counts — is exactly
    the generic algorithm's. The final expressions reuse the generic
    functions' operand order, so the floats are identical too.
    """
    norm_a, norm_b = text_a.norm, text_b.norm
    len_a, len_b = text_a.length, text_b.length
    window = max(len_a, len_b) // 2 - 1
    if window < 0:
        window = 0
    positions_b = text_b.char_positions
    pointers: dict[str, int] = {}
    matched_chars: list[str] = []
    matched_js: list[int] = []
    for i, char in enumerate(norm_a):
        occurrences = positions_b.get(char)
        if occurrences is None:
            continue
        pointer = pointers.get(char, 0)
        limit = len(occurrences)
        low = i - window
        while pointer < limit and occurrences[pointer] < low:
            pointer += 1
        if pointer < limit and occurrences[pointer] <= i + window:
            matched_js.append(occurrences[pointer])
            matched_chars.append(char)
            pointer += 1
        pointers[char] = pointer
    matches = len(matched_js)
    if matches == 0:
        jaro = 0.0
    else:
        matched_js.sort()
        transpositions = 0
        for char, j in zip(matched_chars, matched_js):
            if norm_b[j] != char:
                transpositions += 1
        transpositions //= 2
        jaro = (
            matches / len_a + matches / len_b + (matches - transpositions) / matches
        ) / 3.0
    return jaro + shared_prefix * 0.1 * (1.0 - jaro)


def _token_jaccard(tokens_a: frozenset[str], tokens_b: frozenset[str]) -> float:
    # Mirrors token_jaccard_similarity on prebuilt sets, including the
    # both-empty → 1.0 convention.
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)


def _string_score(text_a: PreparedText, text_b: PreparedText, floor: float) -> float | None:
    """Composite string score from prepared forms, memoized and θ-bounded.

    Returns the exact ``string_similarity`` value, or ``None`` when a cheap
    upper bound proves the score is below ``floor`` (in which case it cannot
    change any admitted feature — see the module docstring).
    """
    norm_a, norm_b = text_a.norm, text_b.norm
    if norm_a == norm_b:
        return 1.0
    if not norm_a or not norm_b:
        return 0.0
    key = (norm_a, norm_b)
    cached = _score_cache.get(key)
    if cached is not None:
        _stats["hits"] += 1
        return cached
    prefix = shared_prefix_length(norm_a, norm_b)
    jw_bound = jaro_winkler_bound_from_stats(
        text_a.length,
        text_b.length,
        _common_char_count(text_a.char_counts, text_b.char_counts),
        prefix,
    )
    if floor > 0.0 and jw_bound < floor:
        if token_jaccard_bound_from_sizes(len(text_a.tokens), len(text_b.tokens)) < floor:
            _stats["skipped"] += 1
            return None
    _stats["misses"] += 1
    jaccard = _token_jaccard(text_a.tokens, text_b.tokens)
    if jw_bound <= jaccard:
        # max(jw, jaccard) == jaccard exactly — Jaro never needs to run
        score = jaccard
    else:
        jw = _prepared_jaro_winkler(text_a, text_b, prefix)
        score = jw if jw > jaccard else jaccard
    if _score_cache_max > 0:
        if len(_score_cache) >= _score_cache_max:
            _score_cache.pop(next(iter(_score_cache)))
        _score_cache[key] = score
    return score


def _pair_score(a: PreparedTerm, b: PreparedTerm, floor: float) -> float | None:
    """Exact ``object_similarity`` of two prepared terms, or ``None`` when a
    bound proves the score is below ``floor``."""
    if a.kind == _KIND_LITERAL and b.kind == _KIND_LITERAL:
        # Typed branches are cheap; compute them directly (dispatch order
        # mirrors literal_similarity exactly, including bool ⊂ int).
        if a.is_bool and b.is_bool:
            return boolean_similarity(a.value, b.value)
        if a.is_num and b.is_num:
            if a.is_year and b.is_year:
                return year_similarity(int(a.value), int(b.value))
            return numeric_similarity(float(a.value), float(b.value))
        if a.is_date and b.is_date:
            return date_similarity(a.value, b.value)
        return _string_score(a.text, b.text, floor)
    if a.kind == _KIND_URI and b.kind == _KIND_URI:
        if a.term == b.term:
            return 1.0
        return _string_score(a.text, b.text, floor)
    if a.kind == _KIND_OTHER or b.kind == _KIND_OTHER:
        return 0.0
    # Literal vs URI (either order): lexical form against humanized name.
    return _string_score(a.text, b.text, floor)


def prepared_object_similarity(a: PreparedTerm, b: PreparedTerm) -> float:
    """Exact generic similarity of two prepared terms (no θ shortcuts);
    bit-identical to ``object_similarity(a.term, b.term)``."""
    score = _pair_score(a, b, 0.0)
    assert score is not None  # floor 0.0 never triggers a bound skip
    return score


def best_prepared_similarity(
    objects_a: tuple[PreparedTerm, ...],
    objects_b: tuple[PreparedTerm, ...],
    theta: float = 0.0,
) -> float:
    """Max pairwise similarity between two prepared object collections.

    Matches ``best_object_similarity`` exactly whenever the result is ≥ θ;
    below θ the returned value may be an underestimate (the caller drops
    sub-θ scores either way), which is what lets the upper bounds skip work.
    The result is memoized per (interned tuple pair, θ): it is a pure
    function of its inputs, so replaying it from the memo is exact.
    """
    key = (objects_a, objects_b, theta)
    cached = _best_cache.get(key)
    if cached is not None:
        _stats["attr_hits"] += 1
        return cached
    return _best_uncached(objects_a, objects_b, theta, key)


# --------------------------------------------------------------------- #
# Wire format: dictionary-encoded partition shipping
# --------------------------------------------------------------------- #
#
# Partitions cross the process boundary to the worker pool as flat arrays —
# one interned string table, one u32 ID stream, one f64 stream — never as
# pickled entity objects. Each distinct lexical form is shipped once no
# matter how many attributes repeat it (KB literals repeat heavily: years,
# cities, type URIs), each distinct term once, and the structural streams
# are pure integers. The decoder rebuilds value-equal `Term`/`Entity`
# objects, so every worker-side cache in this module (term intern, objects
# intern, score memo) behaves exactly as it does in-process — which is what
# keeps the multi-process build bit-identical to the single-process one.

_WIRE_MAGIC = b"RPRW1\n"
_WIRE_HEADER = struct.Struct("<4I")

#: Wire term kinds (independent of the scoring _KIND_* categories above).
_WIRE_URI = 0
_WIRE_BNODE = 1
_WIRE_LITERAL = 2


def wire_pack(strings: list[str], ints: array, floats: array) -> bytes:
    """Pack the three wire streams into one flat byte blob.

    Layout: magic, ``<4I`` header (string count, utf8 byte count, int count,
    float count), u32 per-string byte lengths, the utf8 block, the u32 int
    stream, the f64 float stream. Little-endian throughout, so a blob is
    valid across any fork/spawn boundary on one machine and across
    same-endianness machines.
    """
    utf8 = [s.encode("utf-8") for s in strings]
    lengths = array("I", [len(b) for b in utf8])
    text = b"".join(utf8)
    if ints.typecode != "I" or floats.typecode != "d":
        raise ValueError("wire streams must be array('I') and array('d')")
    parts = [
        _WIRE_MAGIC,
        _WIRE_HEADER.pack(len(strings), len(text), len(ints), len(floats)),
        lengths.tobytes(),
        text,
        ints.tobytes(),
        floats.tobytes(),
    ]
    return b"".join(parts)


def wire_unpack(blob: bytes) -> tuple[list[str], array, array]:
    """Inverse of :func:`wire_pack`; validates magic and stream sizes."""
    if not blob.startswith(_WIRE_MAGIC):
        raise ValueError("not a repro wire blob (bad magic)")
    offset = len(_WIRE_MAGIC)
    n_strings, n_text, n_ints, n_floats = _WIRE_HEADER.unpack_from(blob, offset)
    offset += _WIRE_HEADER.size
    lengths = array("I")
    lengths.frombytes(blob[offset : offset + 4 * n_strings])
    offset += 4 * n_strings
    strings: list[str] = []
    for length in lengths:
        strings.append(blob[offset : offset + length].decode("utf-8"))
        offset += length
    if offset != len(_WIRE_MAGIC) + _WIRE_HEADER.size + 4 * n_strings + n_text:
        raise ValueError("wire blob string block size mismatch")
    ints = array("I")
    ints.frombytes(blob[offset : offset + 4 * n_ints])
    offset += 4 * n_ints
    floats = array("d")
    floats.frombytes(blob[offset : offset + 8 * n_floats])
    offset += 8 * n_floats
    if offset != len(blob) or len(ints) != n_ints or len(floats) != n_floats:
        raise ValueError("wire blob truncated or oversized")
    return strings, ints, floats


class WireWriter:
    """Builds the dictionary-encoded streams: interned strings and terms,
    a flat u32 stream, and a flat f64 stream."""

    def __init__(self):
        self._strings: list[str] = []
        self._string_ids: dict[str, int] = {}
        #: fixed-width term table, 4 u32 per term: kind plus 3 operands
        self._terms = array("I")
        self._term_ids: dict[Term, int] = {}
        self.ints = array("I")
        self.floats = array("d")

    def string_id(self, text: str) -> int:
        sid = self._string_ids.get(text)
        if sid is None:
            sid = len(self._strings)
            self._string_ids[text] = sid
            self._strings.append(text)
        return sid

    def term_id(self, term: Term) -> int:
        """Dictionary ID of a term, appending it to the term table once."""
        tid = self._term_ids.get(term)
        if tid is not None:
            return tid
        if isinstance(term, URIRef):
            record = (_WIRE_URI, self.string_id(term.value), 0, 0)
        elif isinstance(term, BNode):
            record = (_WIRE_BNODE, self.string_id(term.id), 0, 0)
        elif isinstance(term, Literal):
            # +1 shift so 0 can mean "absent" for datatype/language
            datatype = 0 if term.datatype is None else self.string_id(term.datatype) + 1
            language = 0 if term.language is None else self.string_id(term.language) + 1
            record = (_WIRE_LITERAL, self.string_id(term.lexical), datatype, language)
        else:
            raise ValueError(f"cannot wire-encode term type {type(term).__name__}")
        tid = len(self._term_ids)
        self._term_ids[term] = tid
        self._terms.extend(record)
        return tid

    def to_bytes(self) -> bytes:
        """One blob: [n_terms, term table, payload ints] + floats."""
        ints = array("I", [len(self._term_ids)])
        ints.extend(self._terms)
        ints.extend(self.ints)
        return wire_pack(self._strings, ints, self.floats)


class WireReader:
    """Cursor over a :class:`WireWriter` blob; terms decode lazily."""

    def __init__(self, blob: bytes):
        self._strings, self._ints, self.floats = wire_unpack(blob)
        n_terms = self._ints[0]
        self._term_table_end = 1 + 4 * n_terms
        self._term_cache: list[Term | None] = [None] * n_terms
        self._cursor = self._term_table_end
        self._float_cursor = 0

    def read_int(self) -> int:
        value = self._ints[self._cursor]
        self._cursor += 1
        return value

    def read_float(self) -> float:
        value = self.floats[self._float_cursor]
        self._float_cursor += 1
        return value

    @property
    def exhausted(self) -> bool:
        return self._cursor == len(self._ints) and self._float_cursor == len(self.floats)

    def term(self, tid: int) -> Term:
        """Decode term ``tid`` (memoized, so shared terms stay shared)."""
        term = self._term_cache[tid]
        if term is None:
            base = 1 + 4 * tid
            kind, a, b, c = self._ints[base : base + 4]
            if kind == _WIRE_URI:
                term = URIRef(self._strings[a])
            elif kind == _WIRE_BNODE:
                term = BNode(self._strings[a])
            elif kind == _WIRE_LITERAL:
                term = Literal(
                    self._strings[a],
                    datatype=None if b == 0 else self._strings[b - 1],
                    language=None if c == 0 else self._strings[c - 1],
                )
            else:
                raise ValueError(f"unknown wire term kind {kind}")
            self._term_cache[tid] = term
        return term


def encode_entities(entities: list[Entity]) -> bytes:
    """Dictionary-encode a partition of entities into one flat byte blob.

    This is the only representation in which entities may cross the process
    boundary to the worker pool (enforced by ``tests/test_core_workers.py``).
    """
    writer = WireWriter()
    ints = writer.ints
    ints.append(len(entities))
    for entity in entities:
        ints.append(writer.term_id(entity.uri))
        ints.append(len(entity.attributes))
        for predicate, objects in entity.attributes.items():
            ints.append(writer.term_id(predicate))
            ints.append(len(objects))
            for obj in objects:
                ints.append(writer.term_id(obj))
    return writer.to_bytes()


def decode_entities(blob: bytes) -> list[Entity]:
    """Inverse of :func:`encode_entities`: value-equal ``Entity`` objects."""
    reader = WireReader(blob)
    entities: list[Entity] = []
    for _ in range(reader.read_int()):
        uri = reader.term(reader.read_int())
        attributes: dict[Term, tuple[Term, ...]] = {}
        for _ in range(reader.read_int()):
            predicate = reader.term(reader.read_int())
            objects = tuple(reader.term(reader.read_int()) for _ in range(reader.read_int()))
            attributes[predicate] = objects
        entities.append(Entity(uri, attributes))
    return entities


def _best_uncached(
    objects_a: tuple[PreparedTerm, ...],
    objects_b: tuple[PreparedTerm, ...],
    theta: float,
    key: tuple,
) -> float:
    """Memo-miss body of :func:`best_prepared_similarity`."""
    _stats["attr_misses"] += 1
    if len(objects_a) == 1 and len(objects_b) == 1:
        # the common single-valued case skips the loop scaffolding entirely
        score = _pair_score(objects_a[0], objects_b[0], theta)
        best = score if score is not None else 0.0
    else:
        best = 0.0
        for obj_a in objects_a:
            for obj_b in objects_b:
                floor = best if best > theta else theta
                score = _pair_score(obj_a, obj_b, floor)
                if score is not None and score > best:
                    best = score
                    if best >= 1.0:
                        break
            if best >= 1.0:
                break
    if _best_cache_max > 0:
        if len(_best_cache) >= _best_cache_max:
            _best_cache.pop(next(iter(_best_cache)))
        _best_cache[key] = best
    return best
