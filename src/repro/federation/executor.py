"""The federated query engine: bound joins across endpoints, sameAs-aware.

Evaluation model (after FedX):

1. **Source selection** — each triple pattern is assigned its relevant
   endpoints (predicate probes).
2. **Join ordering** — patterns are greedily reordered so that each next
   pattern shares a variable with the already-joined prefix and has the most
   bound positions (avoids cartesian blowups).
3. **Bound joins with sameAs rewriting** — patterns are evaluated
   pattern-at-a-time. When a bound term is a URI that has counterparts in
   the candidate :class:`~repro.links.LinkSet`, the engine also probes the
   endpoint with each counterpart; any match obtained through a counterpart
   records the traversed link in the solution's provenance.

The provenance is what ALEX consumes: feedback on an answer row becomes
feedback on ``row.links_used``.
"""

from __future__ import annotations

import time
from typing import Iterable

from repro import obs
from repro.obs import accounting, slowlog, trace
from repro.errors import FederationError
from repro.federation.endpoint import Endpoint
from repro.federation.provenance import FederatedResult, ProvenancedSolution
from repro.federation.source_selection import (
    SourceAssignment,
    exclusive_groups,
    select_sources,
)
from repro.links import Link, LinkSet
from repro.rdf.graph import Graph
from repro.rdf.terms import Term, URIRef
from repro.sparql.ast import (
    BGP,
    Filter,
    GroupGraphPattern,
    SelectQuery,
    TriplePattern,
    Var,
)
from repro.sparql.eval import (
    Solution,
    _filter_passes,
    _order_key_for,
    eval_expression,
    match_pattern,
)
from repro.sparql.prepared import prepare


class FederatedEngine:
    """Answers SELECT queries over several endpoints joined by sameAs links.

    ``group_exclusive=True`` (default) ships runs of consecutive patterns
    that only one endpoint can answer as a single subquery to that endpoint
    (FedX's exclusive groups), cutting request counts; disable it to measure
    the effect (see ``benchmarks/bench_ablation_exclusive_groups.py``).
    """

    def __init__(
        self,
        endpoints: Iterable[Endpoint],
        links: LinkSet | None = None,
        group_exclusive: bool = True,
        strict: bool = False,
        pool_workers: int | None = None,
    ):
        self.endpoints = list(endpoints)
        if not self.endpoints:
            raise FederationError("a federation needs at least one endpoint")
        self.links = links if links is not None else LinkSet()
        self.group_exclusive = group_exclusive
        #: ``strict=True`` statically analyzes every query (including
        #: endpoint source checks) before planning and raises
        #: :class:`~repro.errors.QueryAnalysisError` on error-level
        #: diagnostics. Default behaviour is unchanged.
        self.strict = strict
        #: ``pool_workers`` ≥ 2 fans bound joins with many input solutions
        #: out to the persistent worker pool (see
        #: :mod:`repro.federation.parallel` for the parity contract);
        #: ``None``/1 keeps execution fully in-process.
        self.pool_workers = pool_workers
        #: endpoint name → (graph version, wire blob); lets repeat queries
        #: over an unchanged federation skip graph re-encoding.
        self._wire_cache: dict[str, tuple[int, bytes]] = {}

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def select(self, query_text: str) -> FederatedResult:
        """Parse (through the shared plan cache) and execute a federated
        SELECT query."""
        parsed = prepare(query_text).plan
        if not isinstance(parsed, SelectQuery):
            raise FederationError("federated execution supports SELECT queries only")
        return self.execute(parsed)

    def execute(self, query: SelectQuery) -> FederatedResult:
        """Execute a parsed SELECT query across the federation.

        When a tracer is installed the execution runs inside a
        ``federation.query.execute`` span; the span's trace id is stamped
        onto the returned result and each of its rows, correlating the
        executor → endpoint → engine event chain.
        """
        obs.inc("federation.queries")
        slog = slowlog.active()
        stats = None
        requests_before = bytes_before = 0.0
        started = 0.0
        if accounting.enabled() or slog is not None:
            stats = accounting.QueryStats("federated")
            stats.plan_cache_hit = accounting.consume_plan_cache_note()
            requests_before = sum(e.request_count for e in self.endpoints)
            bytes_before = obs.counter_total(obs.snapshot(), "pool.bytes.shipped")
            started = time.perf_counter()
        with obs.timer("federation.query.seconds"), trace.span(
            "federation.query.execute", endpoints=len(self.endpoints)
        ) as span:
            if self.strict:
                from repro.sparql.analysis import check_query

                check_query(query, endpoints=self.endpoints)
            result = self._execute(query, stats=stats)
            if span.trace_id is not None:
                result.trace_id = span.trace_id
                for row in result.rows:
                    row.trace_id = span.trace_id
        if stats is not None:
            stats.wall_seconds = time.perf_counter() - started
            stats.rows_out = len(result)
            stats.endpoint_requests = int(
                sum(e.request_count for e in self.endpoints) - requests_before
            )
            stats.bytes_shipped = (
                obs.counter_total(obs.snapshot(), "pool.bytes.shipped") - bytes_before
            )
            result.stats = stats
            if slog is not None:
                label = "SELECT " + " ".join(
                    "?" + v.name for v in query.projected()
                )
                slog.record(
                    "federated", label, stats.wall_seconds, detail=stats.to_dict()
                )
        return result

    def _execute(
        self, query: SelectQuery, stats: accounting.QueryStats | None = None
    ) -> FederatedResult:
        phase_started = time.perf_counter() if stats is not None else 0.0
        bgp, filters = self._flatten_where(query.where)
        ordered = _order_patterns(bgp.patterns)
        assignments = select_sources(BGP(ordered), self.endpoints)
        if stats is not None:
            stats.note_phase("source_select", time.perf_counter() - phase_started)

        solutions: list[ProvenancedSolution] = [ProvenancedSolution({})]
        if self.group_exclusive:
            for group in exclusive_groups(assignments):
                if len(group) > 1:
                    solutions = self._bound_join_group(group, solutions, stats=stats)
                else:
                    solutions = self._bound_join(group[0], solutions, stats=stats)
                if not solutions:
                    break
        else:
            for assignment in assignments:
                solutions = self._bound_join(assignment, solutions, stats=stats)
                if not solutions:
                    break

        if filters:
            solutions = [
                sol
                for sol in solutions
                if all(_filter_passes(f.expression, sol.bindings) for f in filters)
            ]

        projected = query.projected()
        if query.is_aggregated:
            rows = self._aggregate(query, solutions)
        else:
            rows = [
                ProvenancedSolution(
                    {v: sol.bindings[v] for v in projected if v in sol.bindings},
                    sol.links_used,
                )
                for sol in solutions
            ]
        if query.distinct:
            rows = _distinct(rows)
        for condition in reversed(query.order_by):
            def key(row: ProvenancedSolution, cond=condition):
                try:
                    value = eval_expression(cond.expression, row.bindings)
                except Exception:
                    value = None
                return _order_key_for(value)

            rows.sort(key=key, reverse=condition.descending)
        if query.offset:
            rows = rows[query.offset:]
        if query.limit is not None:
            rows = rows[: query.limit]
        return FederatedResult(projected, rows)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _aggregate(
        self, query: SelectQuery, solutions: list[ProvenancedSolution]
    ) -> list[ProvenancedSolution]:
        """GROUP BY + aggregates over federated solutions.

        Each output group carries the union of its member rows' link
        provenance: feedback on an aggregate answer concerns every link
        that contributed to it.
        """
        from repro.sparql.aggregates import evaluate_aggregate, group_solutions

        plain = [sol.bindings for sol in solutions]
        provenance_of = {}
        for sol in solutions:
            key = tuple(sorted((v.name, t.n3()) for v, t in sol.bindings.items()))
            provenance_of.setdefault(key, frozenset())
            provenance_of[key] |= sol.links_used
        rows: list[ProvenancedSolution] = []
        for key_bindings, members in group_solutions(plain, query.group_by):
            bindings = dict(key_bindings)
            links: frozenset[Link] = frozenset()
            for member in members:
                member_key = tuple(sorted((v.name, t.n3()) for v, t in member.items()))
                links |= provenance_of.get(member_key, frozenset())
            for aggregate in query.aggregates:
                value = evaluate_aggregate(aggregate, members)
                if value is not None:
                    bindings[aggregate.alias] = value
            rows.append(ProvenancedSolution(bindings, links))
        return rows

    def _flatten_where(self, where: GroupGraphPattern) -> tuple[BGP, list[Filter]]:
        """The federated subset supports one conjunctive BGP plus FILTERs."""
        bgp = BGP()
        filters: list[Filter] = []
        for child in where.children:
            if isinstance(child, BGP):
                bgp.patterns.extend(child.patterns)
            elif isinstance(child, Filter):
                if _contains_exists(child.expression):
                    raise FederationError(
                        "EXISTS/NOT EXISTS filters are not supported in "
                        "federated queries"
                    )
                filters.append(child)
            elif isinstance(child, GroupGraphPattern):
                inner_bgp, inner_filters = self._flatten_where(child)
                bgp.patterns.extend(inner_bgp.patterns)
                filters.extend(inner_filters)
            else:
                raise FederationError(
                    f"federated execution does not support {type(child).__name__} patterns"
                )
        if not bgp.patterns:
            raise FederationError("federated query has an empty WHERE clause")
        return bgp, filters

    def _counterpart_choices(self, term: Term) -> list[tuple[Term, frozenset[Link]]]:
        """The term itself plus its sameAs counterparts, each with the link
        that justifies the substitution."""
        return _counterpart_choices(self.links, term)

    def _fanout_pool(self, solutions: list[ProvenancedSolution]):
        """The worker pool to fan this join out on, or None for in-process."""
        if self.pool_workers is None or self.pool_workers < 2:
            return None
        from repro.federation.parallel import FANOUT_MIN_SOLUTIONS

        if len(solutions) < FANOUT_MIN_SOLUTIONS:
            return None
        from repro.core.workers import shared_pool

        return shared_pool(self.pool_workers)

    def _bound_join(
        self,
        assignment: SourceAssignment,
        solutions: list[ProvenancedSolution],
        stats: "accounting.QueryStats | None" = None,
    ) -> list[ProvenancedSolution]:
        pattern = assignment.pattern
        obs.observe("federation.bound_join.input_solutions", len(solutions))
        join_started = time.perf_counter() if stats is not None else 0.0
        pool = self._fanout_pool(solutions)
        if pool is not None:
            from repro.federation.parallel import fan_out_bound_join

            candidates = fan_out_bound_join(
                [pattern], False, assignment.endpoints, self.links,
                solutions, pool, self._wire_cache,
            )
        else:
            candidates = (
                found
                for solution in solutions
                for found in _iter_bound_join(pattern, assignment.endpoints, self.links, solution)
            )
        out: list[ProvenancedSolution] = []
        _dedup_extend(out, candidates)
        if stats is not None:
            seconds = time.perf_counter() - join_started
            strategy = "bound-join-fanout" if pool is not None else "bound-join"
            stats.note_strategy(strategy, len(solutions), len(out), seconds)
            stats.note_phase("join", seconds)
        return out

    def _bound_join_group(
        self,
        group: list[SourceAssignment],
        solutions: list[ProvenancedSolution],
        stats: "accounting.QueryStats | None" = None,
    ) -> list[ProvenancedSolution]:
        """Ship a whole exclusive group to its single endpoint at once.

        sameAs rewriting applies to terms bound *before* the group (variables
        carrying entities from other datasets); bindings produced inside the
        group are endpoint-local and need no rewriting. The counterpart
        choice for a variable is made once per solution, consistently across
        all of the group's patterns.
        """
        endpoint = group[0].endpoints[0]
        patterns = [assignment.pattern for assignment in group]
        obs.observe("federation.bound_join.input_solutions", len(solutions))
        join_started = time.perf_counter() if stats is not None else 0.0
        pool = self._fanout_pool(solutions)
        if pool is not None:
            from repro.federation.parallel import fan_out_bound_join

            candidates = fan_out_bound_join(
                patterns, True, [endpoint], self.links,
                solutions, pool, self._wire_cache,
            )
        else:
            candidates = (
                found
                for solution in solutions
                for found in _iter_bound_join_group(patterns, endpoint, self.links, solution)
            )
        out: list[ProvenancedSolution] = []
        _dedup_extend(out, candidates)
        if stats is not None:
            seconds = time.perf_counter() - join_started
            strategy = "bound-join-fanout" if pool is not None else "bound-join-group"
            stats.note_strategy(strategy, len(solutions), len(out), seconds)
            stats.note_phase("join", seconds)
        return out


def _solution_key(bindings: Solution) -> tuple:
    """Canonical dedup key for a merged binding set."""
    return tuple(sorted((v.name, t.n3()) for v, t in bindings.items()))


def _dedup_extend(out: list[ProvenancedSolution], candidates) -> None:
    """Append each first-seen ``(bindings, links, rewrote)`` candidate as a
    :class:`ProvenancedSolution`, counting accepted sameAs rewrites.

    Shared by the in-process path (candidates stream straight from the
    iterators below) and the fan-out gather (chunk-locally deduped
    candidates arrive in chunk order, so first-seen here matches what the
    sequential pass would have kept).
    """
    seen: set[tuple] = set()
    for merged, links, rewrote in candidates:
        key = (_solution_key(merged), links)
        if key not in seen:
            seen.add(key)
            if rewrote:
                obs.inc("federation.sameas.rewrites_hit")
            out.append(ProvenancedSolution(merged, links))


def _counterpart_choices(
    links: LinkSet, term: Term
) -> list[tuple[Term, frozenset[Link]]]:
    """The term itself plus its sameAs counterparts, each with the link
    that justifies the substitution. Module-level so pool workers share the
    exact executor logic."""
    choices: list[tuple[Term, frozenset[Link]]] = [(term, frozenset())]
    if isinstance(term, URIRef):
        # sorted: counterpart sets iterate in hash order, which varies
        # per process and would make answer (and thus feedback) order
        # nondeterministic
        for right in sorted(links.by_left(term), key=str):
            choices.append((right, frozenset({Link(term, right)})))
        for left in sorted(links.by_right(term), key=str):
            choices.append((left, frozenset({Link(left, term)})))
    if len(choices) > 1:
        obs.inc("federation.sameas.rewrites_attempted", len(choices) - 1)
    return choices


def _iter_bound_join(
    pattern: TriplePattern,
    endpoints: list[Endpoint],
    links: LinkSet,
    solution: ProvenancedSolution,
):
    """One solution's bound-join body: yield every ``(merged_bindings,
    links_used, rewrote)`` candidate, pre-dedup. Runs identically in-process
    and inside a pool worker."""
    bound_subject = _resolve(pattern.subject, solution.bindings)
    bound_object = _resolve(pattern.object, solution.bindings)
    subject_choices = (
        _counterpart_choices(links, bound_subject)
        if bound_subject is not None
        else [(None, frozenset())]
    )
    object_choices = (
        _counterpart_choices(links, bound_object)
        if bound_object is not None
        else [(None, frozenset())]
    )
    for endpoint in endpoints:
        for subject_term, subject_links in subject_choices:
            for object_term, object_links in object_choices:
                rewritten = _rewrite_pattern(pattern, subject_term, object_term)
                probe = _strip_bound_vars(rewritten, solution.bindings)
                for extension in endpoint.match(probe, [{}]):
                    merged = dict(solution.bindings)
                    merged.update(extension)
                    used = solution.links_used | subject_links | object_links
                    yield merged, used, bool(subject_links or object_links)


def _iter_bound_join_group(
    patterns: list[TriplePattern],
    endpoint: Endpoint,
    links: LinkSet,
    solution: ProvenancedSolution,
):
    """One solution's exclusive-group body; same contract as
    :func:`_iter_bound_join`."""
    # Every distinct pre-bound term in subject/object positions gets
    # its list of counterpart choices.
    bound_terms: list[Term] = []
    for pattern in patterns:
        for position in (pattern.subject, pattern.object):
            term = _resolve(position, solution.bindings)
            if term is not None and term not in bound_terms:
                bound_terms.append(term)
    choice_lists = [_counterpart_choices(links, term) for term in bound_terms]
    for combination in _product(choice_lists):
        substitution = {
            original: chosen
            for original, (chosen, _) in zip(bound_terms, combination)
        }
        used: frozenset[Link] = solution.links_used
        rewrote = False
        for _, choice_links in combination:
            used |= choice_links
            rewrote = rewrote or bool(choice_links)
        rewritten = [
            _substitute_pattern(pattern, solution.bindings, substitution)
            for pattern in patterns
        ]
        for extension in endpoint.match_group(rewritten, [{}]):
            merged = dict(solution.bindings)
            merged.update(extension)
            yield merged, used, rewrote


def _product(choice_lists: list[list]) -> Iterable[tuple]:
    """Cartesian product that yields one empty tuple for empty input."""
    import itertools

    return itertools.product(*choice_lists)


def _substitute_pattern(
    pattern: TriplePattern, bindings: Solution, substitution: dict
) -> TriplePattern:
    """Lower bound variables to their (possibly counterpart-substituted)
    terms; leave free variables in place."""

    def lower(term):
        if isinstance(term, Var):
            bound = bindings.get(term)
            if bound is None:
                return term
            return substitution.get(bound, bound)
        return substitution.get(term, term)

    return TriplePattern(lower(pattern.subject), lower(pattern.predicate), lower(pattern.object))


def _contains_exists(expression) -> bool:
    """Does the FILTER expression tree contain an EXISTS node?"""
    from repro.sparql.ast import BooleanOp, Comparison, ExistsExpr, FunctionCall, Not

    if isinstance(expression, ExistsExpr):
        return True
    if isinstance(expression, Not):
        return _contains_exists(expression.operand)
    if isinstance(expression, (BooleanOp, Comparison)):
        return _contains_exists(expression.left) or _contains_exists(expression.right)
    if isinstance(expression, FunctionCall):
        return any(_contains_exists(argument) for argument in expression.args)
    return False


def _resolve(term, bindings: Solution) -> Term | None:
    if isinstance(term, Var):
        return bindings.get(term)
    return term


def _rewrite_pattern(
    pattern: TriplePattern, subject_term: Term | None, object_term: Term | None
) -> TriplePattern:
    """Substitute concrete (possibly counterpart) terms into a pattern."""
    return TriplePattern(
        subject_term if subject_term is not None else pattern.subject,
        pattern.predicate,
        object_term if object_term is not None else pattern.object,
    )


def _strip_bound_vars(pattern: TriplePattern, bindings: Solution) -> TriplePattern:
    """Replace bound variables that were *not* substituted (predicates) with
    their terms so the endpoint probe is fully bound where possible."""
    def lower(term):
        if isinstance(term, Var) and term in bindings:
            return bindings[term]
        return term

    return TriplePattern(lower(pattern.subject), lower(pattern.predicate), lower(pattern.object))


def _order_patterns(patterns: list[TriplePattern]) -> list[TriplePattern]:
    """Greedy join order: start with the most-bound pattern, then repeatedly
    pick the pattern sharing variables with the joined prefix that has the
    fewest free variables."""
    if not patterns:
        return []

    def bound_score(pattern: TriplePattern, known: set[Var]) -> tuple[int, int]:
        free = [t for t in (pattern.subject, pattern.predicate, pattern.object)
                if isinstance(t, Var) and t not in known]
        shared = len(pattern.variables() & known)
        return (shared, -len(free))

    remaining = list(patterns)
    known: set[Var] = set()
    ordered: list[TriplePattern] = []
    first = max(remaining, key=lambda p: -len(p.variables()))
    remaining.remove(first)
    ordered.append(first)
    known |= first.variables()
    while remaining:
        best = max(remaining, key=lambda p: bound_score(p, known))
        remaining.remove(best)
        ordered.append(best)
        known |= best.variables()
    return ordered


#: Stable public alias — the facade exports the executor under this name.
FederatedExecutor = FederatedEngine


def _distinct(rows: list[ProvenancedSolution]) -> list[ProvenancedSolution]:
    seen: set[tuple] = set()
    unique: list[ProvenancedSolution] = []
    for row in rows:
        key = tuple(sorted((v.name, t.n3()) for v, t in row.bindings.items()))
        if key not in seen:
            seen.add(key)
            unique.append(row)
    return unique
