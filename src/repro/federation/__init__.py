"""Federated query processing over linked RDF datasets (FedX-style)."""

from repro.federation.endpoint import Endpoint
from repro.federation.executor import FederatedEngine, FederatedExecutor
from repro.federation.provenance import FederatedResult, ProvenancedSolution
from repro.federation.source_selection import SourceAssignment, exclusive_groups, select_sources

__all__ = [
    "Endpoint",
    "FederatedEngine",
    "FederatedExecutor",
    "FederatedResult",
    "ProvenancedSolution",
    "SourceAssignment",
    "exclusive_groups",
    "select_sources",
]
