"""Per-pattern source selection, in the style of FedX.

Before execution, the planner asks each endpoint whether it could match each
triple pattern (predicate-membership probe, mirroring FedX's cached ASK
queries). Patterns answerable by exactly one endpoint are *exclusive* and can
be grouped; patterns answerable by several must be evaluated against each.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.obs import trace
from repro.errors import FederationError
from repro.federation.endpoint import Endpoint
from repro.sparql.ast import BGP, TriplePattern, Var, get_position


@dataclass(frozen=True)
class SourceAssignment:
    """Which endpoints are relevant for one triple pattern."""

    pattern: TriplePattern
    endpoints: tuple[Endpoint, ...]

    @property
    def exclusive(self) -> bool:
        return len(self.endpoints) == 1


def select_sources(bgp: BGP, endpoints: list[Endpoint]) -> list[SourceAssignment]:
    """Assign relevant endpoints to every pattern of ``bgp``.

    The endpoints of each assignment are ordered by endpoint name, so the
    federation plan (and therefore answer and feedback order) does not
    depend on endpoint registration order or the process hash seed.

    Raises :class:`FederationError` when a pattern matches no endpoint at
    all — such a query can only ever return the empty result, and surfacing
    it loudly (with the pattern's source position, diagnostic ALEX-W110)
    catches schema typos early.
    """
    if not endpoints:
        raise FederationError("no endpoints registered")
    assignments: list[SourceAssignment] = []
    for pattern in bgp.patterns:
        relevant = tuple(
            sorted(
                (ep for ep in endpoints if ep.can_answer(pattern)),
                key=lambda ep: (ep.name, id(ep)),
            )
        )
        if not relevant:
            obs.inc("federation.source_selection.unmatched_patterns")
            line, _column = get_position(pattern)
            location = f" (line {line})" if line is not None else ""
            names = ", ".join(sorted(ep.name for ep in endpoints))
            raise FederationError(
                f"[ALEX-W110] no endpoint ({names}) can answer pattern: "
                f"{pattern}{location}; the federated query could only return "
                "an empty result — check the predicate IRI for typos"
            )
        tracer = trace.active()
        if tracer is not None:
            tracer.event(
                "federation.source.select",
                pattern=str(pattern),
                selected=[ep.name for ep in relevant],
                probed=len(endpoints),
                exclusive=len(relevant) == 1,
                rationale="predicate-membership probe"
                if not isinstance(pattern.predicate, Var)
                else "variable predicate: every non-empty endpoint",
            )
        assignments.append(SourceAssignment(pattern, relevant))
    return assignments


def exclusive_groups(assignments: list[SourceAssignment]) -> list[list[SourceAssignment]]:
    """Group *consecutive* exclusive patterns with the same single source.

    FedX ships exclusive groups to their endpoint as one subquery; we keep
    the same grouping to minimize round trips (visible in request counters).
    """
    groups: list[list[SourceAssignment]] = []
    current: list[SourceAssignment] = []
    for assignment in assignments:
        if (
            assignment.exclusive
            and current
            and current[-1].exclusive
            and current[-1].endpoints[0] is assignment.endpoints[0]
        ):
            current.append(assignment)
        else:
            if current:
                groups.append(current)
            current = [assignment]
    if current:
        groups.append(current)
    return groups
