"""Federated bound-join fan-out on the persistent worker pool.

A bound join evaluates each incoming solution independently: resolve the
pattern's bound positions, enumerate sameAs counterpart substitutions,
probe the endpoint, merge the extensions. With thousands of intermediate
solutions that per-solution loop is the federated executor's hot path, and
it is embarrassingly parallel — so :func:`fan_out_bound_join` splits the
solution list into contiguous chunks and runs each chunk on the shared
:mod:`repro.core.workers` pool.

Endpoint graphs and the candidate link set cross the process boundary
dictionary-encoded (the flat-array wire format of
:mod:`repro.similarity.prepared`), never as pickled graph/entity objects;
workers memoize decoded blobs by digest, so a federation's graphs ship
once per worker lifetime however many queries fan out.

Parity contract: the fanned-out join produces exactly the sequential
join's solution *set* (same bindings, same link provenance, same request
counts — workers dedup locally, the parent dedups globally in chunk order)
but may order rows differently within an unordered query, because a
reconstructed graph can enumerate matches in a different order. ORDER BY
queries are unaffected. Fan-out is opt-in via
``FederatedEngine(pool_workers=N)``.
"""

from __future__ import annotations

import hashlib

from repro import obs
from repro.core.workers import WorkerPool
from repro.federation.endpoint import Endpoint
from repro.links import Link, LinkSet
from repro.rdf.graph import Graph
from repro.similarity.prepared import WireReader, WireWriter
from repro.sparql.ast import TriplePattern

#: Below this many input solutions the process hop costs more than the join.
FANOUT_MIN_SOLUTIONS = 8


# --------------------------------------------------------------------- #
# Graph and link-set wire codecs
# --------------------------------------------------------------------- #


def encode_graph(graph: Graph) -> bytes:
    """Dictionary-encode a graph: term table + one (s, p, o) ID triple per
    statement. Statement order is not preserved (a graph is a set)."""
    writer = WireWriter()
    ints = writer.ints
    triples = list(graph.triples())
    ints.append(len(triples))
    for s, p, o in triples:
        ints.append(writer.term_id(s))
        ints.append(writer.term_id(p))
        ints.append(writer.term_id(o))
    return writer.to_bytes()


def decode_graph(blob: bytes, name: str = "") -> Graph:
    """Inverse of :func:`encode_graph` (same triples, fresh indexes)."""
    reader = WireReader(blob)
    graph = Graph(name=name)
    for _ in range(reader.read_int()):
        s = reader.term(reader.read_int())
        p = reader.term(reader.read_int())
        o = reader.term(reader.read_int())
        graph.add((s, p, o))
    return graph


def encode_links(links: frozenset[Link]) -> bytes:
    """Dictionary-encode a link set (sorted, so equal sets encode equal)."""
    writer = WireWriter()
    ordered = sorted(links, key=lambda link: (link.left.value, link.right.value))
    writer.ints.append(len(ordered))
    for link in ordered:
        writer.ints.append(writer.term_id(link.left))
        writer.ints.append(writer.term_id(link.right))
    return writer.to_bytes()


def decode_links(blob: bytes) -> LinkSet:
    reader = WireReader(blob)
    links = LinkSet()
    for _ in range(reader.read_int()):
        left = reader.term(reader.read_int())
        right = reader.term(reader.read_int())
        links.add(Link(left, right))
    return links


# --------------------------------------------------------------------- #
# Worker-side decoded-blob memos (worker processes are single-threaded)
# --------------------------------------------------------------------- #

_graph_cache: dict[bytes, Graph] = {}
_links_cache: dict[bytes, LinkSet] = {}
_FED_CACHE_MAX = 16


def _cached(cache: dict, blob: bytes, decode, *args):
    digest = hashlib.sha1(blob).digest()
    value = cache.get(digest)
    if value is None:
        value = decode(blob, *args)
        if len(cache) >= _FED_CACHE_MAX:
            cache.pop(next(iter(cache)))
        cache[digest] = value
    return value


def _match_chunk(
    endpoint_blobs: list[tuple[str, bytes]],
    links_blob: bytes,
    patterns: list[TriplePattern],
    grouped: bool,
    solutions: list,
    name: str,
) -> tuple[list, dict[str, int], dict]:
    """Worker body: bound-join one chunk of solutions.

    Returns ``(candidates, request_counts, obs_snapshot)`` where candidates
    are ``(merged_bindings, links_used, rewrote)`` tuples after chunk-local
    dedup (the parent dedups globally, in chunk order).
    """
    from repro.federation.executor import (
        _iter_bound_join,
        _iter_bound_join_group,
        _solution_key,
    )

    with obs.use_registry(obs.Registry(name)) as registry:
        endpoints = [
            Endpoint(_cached(_graph_cache, blob, decode_graph, ep_name), name=ep_name)
            for ep_name, blob in endpoint_blobs
        ]
        links = _cached(_links_cache, links_blob, decode_links)
        candidates: list = []
        seen: set = set()
        for solution in solutions:
            if grouped:
                found = _iter_bound_join_group(patterns, endpoints[0], links, solution)
            else:
                found = _iter_bound_join(patterns[0], endpoints, links, solution)
            for merged, used, rewrote in found:
                key = (_solution_key(merged), used)
                if key not in seen:
                    seen.add(key)
                    candidates.append((merged, used, rewrote))
        requests = {endpoint.name: endpoint.request_count for endpoint in endpoints}
        return candidates, requests, registry.snapshot()


# --------------------------------------------------------------------- #
# Parent-side fan-out
# --------------------------------------------------------------------- #


def fan_out_bound_join(
    patterns: list[TriplePattern],
    grouped: bool,
    endpoints: list[Endpoint],
    links: LinkSet,
    solutions: list,
    pool: WorkerPool,
    blob_cache: dict[str, tuple[int, bytes]],
) -> list:
    """Run one bound join across the pool; candidates come back in chunk
    order (chunk-locally deduped) for the caller's global dedup pass.

    ``blob_cache`` memoizes each endpoint's encoded graph by name and graph
    version so repeated queries over an unchanged federation re-ship the
    same blob bytes without re-encoding.
    """
    with obs.timer("federation.fanout.ship"):
        endpoint_blobs = []
        for endpoint in endpoints:
            version = endpoint.graph.version
            cached = blob_cache.get(endpoint.name)
            if cached is None or cached[0] != version:
                cached = (version, encode_graph(endpoint.graph))
                blob_cache[endpoint.name] = cached
            endpoint_blobs.append((endpoint.name, cached[1]))
        links_blob = encode_links(links.snapshot())
        obs.inc(
            "pool.bytes.shipped",
            sum(len(blob) for _, blob in endpoint_blobs) + len(links_blob),
        )
    n_chunks = max(1, min(pool.size, len(solutions)))
    chunk_size = (len(solutions) + n_chunks - 1) // n_chunks
    chunks = [solutions[i:i + chunk_size] for i in range(0, len(solutions), chunk_size)]
    tasks = [
        (endpoint_blobs, links_blob, patterns, grouped, chunk, f"fanout-{index}")
        for index, chunk in enumerate(chunks)
    ]
    results = pool.run_tasks(_match_chunk, tasks, label="federation")
    obs.inc("federation.fanout.chunks", len(chunks))
    candidates: list = []
    request_totals: dict[str, int] = {}
    for chunk_candidates, requests, snapshot in results:
        obs.merge(snapshot)
        candidates.extend(chunk_candidates)
        for ep_name, count in requests.items():
            request_totals[ep_name] = request_totals.get(ep_name, 0) + count
    for endpoint in endpoints:
        endpoint.request_count += request_totals.get(endpoint.name, 0)
    return candidates
