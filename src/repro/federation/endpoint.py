"""A SPARQL endpoint abstraction over a local graph.

In the paper's architecture each RDF dataset sits behind its own SPARQL
endpoint and a federated engine (FedX) spans them. Here an
:class:`Endpoint` simulates a remote endpoint: all access goes through the
query-shaped interface (pattern matching, ASK probes), request counters
record traffic, and the set of predicates served is exposed for
source selection exactly like FedX's ASK-based source pruning.
"""

from __future__ import annotations

from typing import Iterator

from repro import obs
from repro.obs import trace
from repro.rdf.graph import Graph
from repro.rdf.terms import Term
from repro.rdf.triples import Triple
from repro.sparql.ast import SelectQuery, TriplePattern, Var
from repro.sparql.eval import QueryResult, Solution, match_pattern
from repro.sparql.prepared import prepare


class Endpoint:
    """One federation member: a named dataset with request accounting."""

    def __init__(self, graph: Graph, name: str | None = None):
        self.graph = graph
        self.name = name if name is not None else (graph.name or "endpoint")
        self.request_count = 0
        self._predicates: frozenset[Term] | None = None

    def _record_request(self, kind: str) -> None:
        self.request_count += 1
        obs.inc("federation.requests", endpoint=self.name, kind=kind)
        tracer = trace.active()
        if tracer is not None:
            # Inside a federation.query.execute span this inherits the
            # query's trace id, correlating request to query.
            tracer.event("federation.endpoint.request", endpoint=self.name, kind=kind)

    # -- capability probing (source selection) ----------------------------- #

    @property
    def predicates(self) -> frozenset[Term]:
        """The predicates this endpoint serves (cached)."""
        if self._predicates is None:
            self._predicates = frozenset(self.graph.predicates())
        return self._predicates

    def invalidate_capabilities(self) -> None:
        """Drop the predicate cache after graph mutation."""
        self._predicates = None

    def can_answer(self, pattern: TriplePattern) -> bool:
        """ASK-style probe: could this endpoint match ``pattern`` at all?"""
        self._record_request("ask")
        if not isinstance(pattern.predicate, Var):
            return pattern.predicate in self.predicates
        return len(self.graph) > 0

    # -- query interface ------------------------------------------------------ #

    def match(self, pattern: TriplePattern, solutions: list[Solution]) -> Iterator[Solution]:
        """Bound-join entry point: extend ``solutions`` with local matches."""
        self._record_request("match")
        yield from match_pattern(self.graph, pattern, solutions)

    def match_group(
        self, patterns: list[TriplePattern], solutions: list[Solution]
    ) -> Iterator[Solution]:
        """Evaluate several patterns as ONE subquery (an exclusive group).

        The whole conjunction joins locally and costs a single request —
        FedX's exclusive-group optimization.
        """
        self._record_request("group")
        streams: Iterator[Solution] = iter(solutions)
        for pattern in patterns:
            streams = match_pattern(self.graph, pattern, streams)
        yield from streams

    def select(self, query_text: str) -> QueryResult:
        """Run a full SELECT locally (used by examples and tests)."""
        self._record_request("select")
        prepared = prepare(query_text)
        if not isinstance(prepared.plan, SelectQuery):
            raise TypeError("Endpoint.select requires a SELECT query")
        return prepared.execute(self.graph)

    def contains(self, triple: Triple) -> bool:
        self._record_request("contains")
        return triple in self.graph

    def __repr__(self):
        return f"<Endpoint {self.name!r} ({len(self.graph)} triples)>"
