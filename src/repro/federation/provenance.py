"""Provenance of federated answers: which links produced which rows.

The crux of ALEX's feedback loop (paper Section 3.2): when a user approves or
rejects a *query answer*, the system must translate that into feedback on the
*links* that produced the answer. :class:`ProvenancedSolution` pairs a
solution with the set of links it traversed, and :class:`FederatedResult`
exposes rows together with their provenance so a UI (or our feedback
simulator) can route per-answer feedback to per-link feedback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.links import Link
from repro.rdf.terms import Term
from repro.sparql.ast import Var
from repro.sparql.eval import Solution


@dataclass
class ProvenancedSolution:
    """One solution plus the sameAs links used to derive it.

    ``trace_id`` correlates the row with the ``federation.query.execute``
    trace that produced it (None when tracing was off) — the hook that lets
    per-answer feedback be joined back to the query's audit trail.
    """

    bindings: Solution
    links_used: frozenset[Link] = frozenset()
    trace_id: str | None = None

    def extend(self, bindings: Solution, extra_links: frozenset[Link] = frozenset()) -> "ProvenancedSolution":
        return ProvenancedSolution(bindings, self.links_used | extra_links)

    def get(self, var: Var) -> Term | None:
        return self.bindings.get(var)


class FederatedResult:
    """Rows of a federated SELECT, each carrying its link provenance."""

    def __init__(
        self,
        variables: list[Var],
        rows: list[ProvenancedSolution],
        trace_id: str | None = None,
    ):
        self.variables = variables
        self.rows = rows
        #: Trace id of the executing ``federation.query.execute`` span,
        #: or None when tracing was disabled.
        self.trace_id = trace_id
        #: Per-query resource accounting (:class:`repro.obs.QueryStats`)
        #: when accounting or the slowlog is enabled; None otherwise.
        self.stats = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[ProvenancedSolution]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def as_tuples(self) -> list[tuple]:
        return [tuple(row.bindings.get(v) for v in self.variables) for row in self.rows]

    def links_used(self) -> frozenset[Link]:
        """Union of links used across all rows."""
        out: frozenset[Link] = frozenset()
        for row in self.rows:
            out |= row.links_used
        return out

    def cross_dataset_rows(self) -> list[ProvenancedSolution]:
        """Rows whose derivation crossed a link — the ones eligible for
        link feedback in ALEX."""
        return [row for row in self.rows if row.links_used]

    def __repr__(self):
        crossed = sum(1 for row in self.rows if row.links_used)
        return f"<FederatedResult {len(self.rows)} rows ({crossed} link-derived)>"
