"""Benchmark harness for the SPARQL engine.

Times the dictionary-encoded hash-join executor against the preserved
pre-1.6 reference evaluator (:mod:`repro.sparql.reference`) on seeded
synthetic social graphs, across four query classes — join-heavy BGPs,
OPTIONAL-heavy left joins, aggregation, and property paths — proving
result parity (identical solution multisets) on every measured query, and
emits a machine-readable record file (``BENCH_sparql.json``) so the
speedup is tracked in-repo rather than asserted in prose.

Three modes per query:

* ``reference`` — the pre-1.6 term-space nested-loop evaluator;
* ``engine`` — the ID-space executor, fresh parse each run;
* ``prepared`` — the ID-space executor through a reused
  :class:`~repro.sparql.prepared.PreparedQuery` (cached plan + memoized
  join order), the production path.

This module is a library: it never prints. ``repro bench --suite sparql``
renders :func:`render_report` and writes the JSON. Wall-clock numbers are
environment-dependent by nature, so CI only checks parity and schema —
the committed ``BENCH_sparql.json`` documents a reference machine (see
``docs/performance.md``).
"""

from __future__ import annotations

import json
import platform
import random
import time
from collections import Counter
from typing import Any

from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef, XSD_INTEGER
from repro.rdf.triples import Triple
from repro.sparql.prepared import PreparedQuery
from repro.sparql.reference import ref_query

#: Schema identifier of the emitted payload (shared with BENCH_space.json).
BENCH_FORMAT = "repro-bench/1"

#: Default output file, at the repo root by convention.
DEFAULT_OUT = "BENCH_sparql.json"

EX = "http://bench.example.org/"
PREFIX = f"PREFIX ex: <{EX}> "

#: Graph sizes (number of people), smallest first. The headline speedup is
#: measured on the last (largest) one; ``--quick`` keeps only the first.
GRAPH_SIZES: tuple[int, ...] = (50, 150, 400)

#: Best-of-N timing repeats per (query, mode).
REPEATS = 3

#: (class, name, query text) — every class the acceptance gate tracks.
QUERIES: tuple[tuple[str, str, str], ...] = (
    (
        "join",
        "two-hop",
        "SELECT ?a ?c WHERE { ?a ex:knows ?b . ?b ex:knows ?c }",
    ),
    (
        "join",
        "distinct-two-hop",
        "SELECT DISTINCT ?a ?c WHERE { ?a ex:knows ?b . ?b ex:knows ?c }",
    ),
    (
        "join",
        "triangle-team",
        "SELECT ?a ?b WHERE { ?a ex:knows ?b . ?a ex:team ?t . ?b ex:team ?t }",
    ),
    (
        "join",
        "triangle-closure",
        "SELECT ?a ?b WHERE { ?a ex:knows ?b . ?b ex:knows ?c . ?c ex:knows ?a }",
    ),
    (
        "join",
        "three-hop-named",
        "SELECT ?a ?n WHERE { ?a ex:knows ?b . ?b ex:knows ?c . ?c ex:name ?n }",
    ),
    (
        "optional",
        "two-optionals",
        "SELECT ?a ?n ?g WHERE { ?a ex:knows ?b "
        "OPTIONAL { ?a ex:name ?n } OPTIONAL { ?a ex:age ?g } }",
    ),
    (
        "optional",
        "optional-join",
        "SELECT ?a ?n WHERE { ?a ex:knows ?b OPTIONAL { ?b ex:knows ?c . ?c ex:name ?n } }",
    ),
    (
        "aggregate",
        "degree-per-team",
        "SELECT ?t (COUNT(?a) AS ?n) WHERE { ?a ex:team ?t . ?a ex:knows ?b } "
        "GROUP BY ?t ORDER BY ?t",
    ),
    (
        "path",
        "reachable",
        f"SELECT ?x WHERE {{ <{EX}p0> ex:knows+ ?x }}",
    ),
)


def build_graph(people: int, seed: int = 17) -> Graph:
    """A seeded synthetic social graph: knows/name/age/team edges."""
    rng = random.Random(seed)
    graph = Graph(name=f"bench-{people}")
    teams = [URIRef(EX + f"team{i}") for i in range(max(3, people // 25))]
    nodes = [URIRef(EX + f"p{i}") for i in range(people)]
    knows = URIRef(EX + "knows")
    name = URIRef(EX + "name")
    age = URIRef(EX + "age")
    team = URIRef(EX + "team")
    for i, node in enumerate(nodes):
        if rng.random() < 0.9:
            graph.add(Triple(node, name, Literal(f"Person {i}")))
        if rng.random() < 0.8:
            graph.add(
                Triple(node, age, Literal(str(rng.randint(18, 70)), datatype=XSD_INTEGER))
            )
        graph.add(Triple(node, team, rng.choice(teams)))
        for _ in range(rng.randint(1, 6)):
            graph.add(Triple(node, knows, rng.choice(nodes)))
    return graph


def _canonical(result) -> Counter:
    """Solution multiset, independent of row and variable order."""
    return Counter(
        tuple(sorted((v.name, t.n3()) for v, t in row.items())) for row in result.rows
    )


def _best_of(runs: int, action) -> tuple[float, Any]:
    best = None
    value = None
    for _ in range(runs):
        start = time.perf_counter()
        value = action()
        wall = time.perf_counter() - start
        if best is None or wall < best:
            best = wall
    return best, value


def run_bench(quick: bool = False, repeats: int = REPEATS) -> dict[str, Any]:
    """Run the SPARQL benchmark and return the payload.

    Every (graph, query) pair is evaluated by all three modes; the
    reference and engine results are parity-checked as multisets on every
    run. ``payload["speedup"]`` is the total reference/engine wall-time
    ratio over the *join* class on the largest graph — the number the
    acceptance gate tracks.
    """
    sizes = GRAPH_SIZES[:1] if quick else GRAPH_SIZES
    records: list[dict[str, Any]] = []
    mismatches = 0
    checked = 0
    join_reference = 0.0
    join_engine = 0.0
    for people in sizes:
        graph = build_graph(people)
        largest = people == sizes[-1]
        for klass, name, text in QUERIES:
            full = PREFIX + text
            prepared = PreparedQuery(full)  # bypass the global cache on purpose
            ref_wall, ref_result = _best_of(repeats, lambda: ref_query(graph, full))
            engine_wall, engine_result = _best_of(
                repeats, lambda: PreparedQuery(full).execute(graph)
            )
            prepared_wall, prepared_result = _best_of(
                repeats, lambda: prepared.execute(graph)
            )
            checked += 1
            if _canonical(ref_result) != _canonical(engine_result):
                mismatches += 1
            if _canonical(ref_result) != _canonical(prepared_result):
                mismatches += 1
            if largest and klass == "join":
                join_reference += ref_wall
                join_engine += engine_wall
            records.append(
                {
                    "op": "sparql.query",
                    "class": klass,
                    "query": name,
                    "people": people,
                    "triples": len(graph),
                    "rows": len(ref_result.rows),
                    "reference_seconds": round(ref_wall, 6),
                    "engine_seconds": round(engine_wall, 6),
                    "prepared_seconds": round(prepared_wall, 6),
                    "speedup": round(ref_wall / engine_wall, 2)
                    if engine_wall > 0
                    else None,
                }
            )
    speedup = (
        round(join_reference / join_engine, 2) if join_engine > 0 else None
    )
    return {
        "format": BENCH_FORMAT,
        "suite": "sparql",
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "quick": quick,
        "repeats": repeats,
        "parity": {"checked": checked, "ok": mismatches == 0, "mismatches": mismatches},
        "speedup": speedup,
        "records": records,
    }


def write_payload(payload: dict[str, Any], path: str = DEFAULT_OUT) -> None:
    """Write the payload as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def render_report(payload: dict[str, Any]) -> str:
    """Human-readable table of a :func:`run_bench` payload."""
    lines = [
        f"sparql engine bench (python {payload['python']}, "
        f"best of {payload['repeats']})",
        f"{'class':<10} {'query':<16} {'people':>6} {'rows':>7} "
        f"{'ref s':>9} {'engine s':>9} {'prep s':>9} {'speedup':>8}",
    ]
    for record in payload["records"]:
        speedup = record["speedup"]
        lines.append(
            f"{record['class']:<10} {record['query']:<16} {record['people']:>6} "
            f"{record['rows']:>7} {record['reference_seconds']:>9.4f} "
            f"{record['engine_seconds']:>9.4f} {record['prepared_seconds']:>9.4f} "
            f"{(f'{speedup}x' if speedup is not None else '-'):>8}"
        )
    parity = payload["parity"]
    lines.append(
        f"parity: {'OK' if parity['ok'] else 'FAILED'} "
        f"({parity['checked']} queries checked, {parity['mismatches']} mismatches)"
    )
    if payload["speedup"] is not None:
        lines.append(
            f"speedup (join class, largest graph, reference vs engine): "
            f"{payload['speedup']}x"
        )
    return "\n".join(lines)


__all__ = [
    "BENCH_FORMAT",
    "DEFAULT_OUT",
    "GRAPH_SIZES",
    "QUERIES",
    "build_graph",
    "render_report",
    "run_bench",
    "write_payload",
]
