"""Dictionary encoding of RDF terms: term <-> integer ID interning.

A :class:`TermDictionary` assigns each distinct term a small non-negative
integer the first time it is seen and answers both directions of the
mapping in O(1). :class:`~repro.rdf.graph.Graph` interns every term at
load time and keeps its SPO/POS/OSP indexes purely over these IDs, so
joins, dedup, and set probes compare machine ints instead of hashing term
objects — the classic dictionary-encoded triple-store layout.

IDs are dense (0, 1, 2, ...) in first-seen order and *stable across
persistence*: :meth:`to_dict` serializes terms in ID order and
:meth:`from_dict` reassigns the identical IDs, so any structure that
stores raw IDs (the graph indexes, or an advanced caller using
:meth:`Graph.triples_ids`) round-trips unchanged.

The dictionary is append-only by design — terms are never removed, even
when the last triple mentioning them is. That keeps IDs stable for the
lifetime of a graph (and any shared :class:`~repro.rdf.dataset.Dataset`)
at the cost of a little memory on heavily-mutated graphs.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import RDFError
from repro.rdf.terms import BNode, Literal, Term, URIRef

#: Versioned format tag on :meth:`TermDictionary.to_dict` payloads.
DICTIONARY_FORMAT = "repro-dictionary/1"


class TermDictionary:
    """A bidirectional, append-only term <-> int interning table."""

    __slots__ = ("_terms", "_ids")

    def __init__(self) -> None:
        self._terms: list[Term] = []  # ID -> term
        self._ids: dict[Term, int] = {}  # term -> ID

    def encode(self, term: Term) -> int:
        """The ID for ``term``, interning it on first sight."""
        term_id = self._ids.get(term)
        if term_id is None:
            if not isinstance(term, Term):
                raise RDFError(
                    f"only RDF terms can be interned, got {type(term).__name__}"
                )
            term_id = len(self._terms)
            self._terms.append(term)
            self._ids[term] = term_id
        return term_id

    def lookup(self, term: Term) -> int | None:
        """The ID for ``term`` if already interned, else None (no interning)."""
        return self._ids.get(term)

    def decode(self, term_id: int) -> Term:
        """The term for ``term_id``; raises on unknown IDs."""
        try:
            return self._terms[term_id]
        except IndexError:
            raise RDFError(f"unknown term id {term_id}") from None

    def terms(self) -> Iterator[Term]:
        """All interned terms in ID order."""
        return iter(self._terms)

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: Term) -> bool:
        return term in self._ids

    def __repr__(self):
        return f"<TermDictionary {len(self._terms)} terms>"

    # ------------------------------------------------------------------ #
    # Persistence — IDs are stable across a to_dict/from_dict round trip
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """JSON-serializable payload; term order encodes the IDs."""
        return {
            "format": DICTIONARY_FORMAT,
            "terms": [_term_to_json(term) for term in self._terms],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TermDictionary":
        """Rebuild a dictionary, reassigning the exact serialized IDs."""
        if payload.get("format") != DICTIONARY_FORMAT:
            raise RDFError(
                f"unsupported dictionary format: {payload.get('format')!r}"
            )
        dictionary = cls()
        for entry in payload["terms"]:
            dictionary.encode(_term_from_json(entry))
        return dictionary


def _term_to_json(term: Term) -> list:
    if isinstance(term, URIRef):
        return ["u", term.value]
    if isinstance(term, BNode):
        return ["b", term.id]
    if isinstance(term, Literal):
        return ["l", term.lexical, term.datatype, term.language]
    raise RDFError(f"cannot serialize term of type {type(term).__name__}")


def _term_from_json(entry: list) -> Term:
    kind = entry[0]
    if kind == "u":
        return URIRef(entry[1])
    if kind == "b":
        return BNode(entry[1])
    if kind == "l":
        return Literal(entry[1], datatype=entry[2], language=entry[3])
    raise RDFError(f"unknown serialized term kind {kind!r}")
