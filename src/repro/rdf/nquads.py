"""N-Quads parsing and serialization.

N-Quads is N-Triples with an optional fourth term naming the graph. One
file can therefore carry a whole federation snapshot: the member datasets as
named graphs and the candidate links in the default graph.
"""

from __future__ import annotations

import io
from typing import IO, Iterable, Iterator

from repro.rdf.dataset import Dataset, Quad
from repro.rdf.ntriples import _LineScanner
from repro.rdf.terms import URIRef


def parse_line(line: str, line_no: int = 1) -> Quad | None:
    """Parse one N-Quads line; returns None for blank/comment lines."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    scanner = _LineScanner(stripped, line_no)
    subject = scanner.read_subject()
    scanner.skip_ws()
    predicate = scanner.read_uri()
    scanner.skip_ws()
    obj = scanner.read_object()
    scanner.skip_ws()
    graph_name: URIRef | None = None
    if scanner.peek() == "<":
        graph_name = scanner.read_uri()
        scanner.skip_ws()
    scanner.expect(".")
    scanner.skip_ws()
    if not scanner.at_end():
        raise scanner.error("trailing characters after '.'")
    return Quad(subject, predicate, obj, graph_name)


def parse(source: str | IO[str]) -> Iterator[Quad]:
    """Parse N-Quads text or a stream, yielding quads."""
    stream = io.StringIO(source) if isinstance(source, str) else source
    for line_no, line in enumerate(stream, start=1):
        quad = parse_line(line, line_no)
        if quad is not None:
            yield quad


def load(source: str | IO[str], name: str = "") -> Dataset:
    """Parse N-Quads into a fresh :class:`~repro.rdf.dataset.Dataset`."""
    dataset = Dataset(name=name)
    dataset.add_all(parse(source))
    return dataset


def load_file(path: str, name: str = "") -> Dataset:
    with open(path, encoding="utf-8") as handle:
        return load(handle, name=name or path)


def serialize(quads: Iterable[Quad], sort: bool = True) -> str:
    """Render quads as N-Quads text (sorted for deterministic output)."""
    lines = []
    for quad in quads:
        graph_part = f" {quad.graph_name.n3()}" if quad.graph_name is not None else ""
        lines.append(
            f"{quad.subject.n3()} {quad.predicate.n3()} {quad.object.n3()}{graph_part} ."
        )
    if sort:
        lines.sort()
    return "\n".join(lines) + ("\n" if lines else "")


def dump_file(dataset: Dataset, path: str) -> int:
    """Write a dataset to ``path``; returns the number of quads written."""
    text = serialize(dataset.quads())
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return len(dataset)
