"""A practical Turtle subset: parser and serializer.

Supported syntax — enough for hand-authored fixtures and readable dumps:

* ``@prefix p: <uri> .`` declarations and CURIEs (``foaf:name``)
* ``a`` as shorthand for ``rdf:type``
* predicate lists with ``;`` and object lists with ``,``
* quoted literals with language tags and ``^^`` datatypes
* numeric, boolean shorthand literals
* ``#`` comments and blank nodes (``_:x``)
* anonymous blank nodes ``[ p o ; … ]`` and collections ``( a b c )``
  (expanded to rdf:first/rdf:rest lists)

Not supported (raises :class:`~repro.errors.ParseError`): multi-line
``\"\"\"`` literals and ``@base``.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.errors import ParseError
from repro.rdf.graph import Graph
from repro.rdf.namespaces import RDF, NamespaceManager
from repro.rdf.terms import BNode, Literal, URIRef, XSD_BOOLEAN, XSD_DECIMAL, XSD_DOUBLE, XSD_INTEGER
from repro.rdf.triples import Triple

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<uri><[^<>"{}|^`\\\s]*>)
  | (?P<literal>"(?:[^"\\]|\\.)*")
  | (?P<prefix_decl>@prefix\b)
  | (?P<langtag>@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*)
  | (?P<dtsep>\^\^)
  | (?P<bnode>_:[A-Za-z0-9_]+)
  | (?P<boolean>\b(?:true|false)\b)
  | (?P<double>[+-]?(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?|[+-]?\d+[eE][+-]?\d+)
  | (?P<integer>[+-]?\d+)
  | (?P<curie>[A-Za-z][\w.-]*:[\w.-]*|:[\w.-]+)
  | (?P<a_kw>\ba\b)
  | (?P<punct>[;,.\[\]()])
  | (?P<ws>\s+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)

_UNESCAPES = {"\\\\": "\\", '\\"': '"', "\\n": "\n", "\\r": "\r", "\\t": "\t"}
_UNESCAPE_RE = re.compile(r'\\[\\"nrt]|\\u[0-9a-fA-F]{4}')


def _unescape(text: str) -> str:
    def repl(match: re.Match) -> str:
        token = match.group(0)
        return _UNESCAPES.get(token, chr(int(token[2:], 16)) if len(token) > 2 else token)

    return _UNESCAPE_RE.sub(repl, text)


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"_Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    line = 1
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        value = match.group(0)
        if kind == "ws":
            line += value.count("\n")
            continue
        if kind == "comment":
            continue
        if kind == "bad":
            raise ParseError(f"unexpected character {value!r}", line=line)
        tokens.append(_Token(kind, value, line))
    return tokens


class _TurtleParser:
    def __init__(self, text: str, manager: NamespaceManager | None = None):
        self.tokens = _tokenize(text)
        self.pos = 0
        self.manager = manager or NamespaceManager()

    # -- token helpers -------------------------------------------------- #

    def _peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return token

    def _expect_punct(self, char: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.text != char:
            raise ParseError(f"expected {char!r}, found {token.text!r}", line=token.line)

    # -- grammar -------------------------------------------------------- #

    def parse(self) -> Iterator[Triple]:
        while self._peek() is not None:
            token = self._peek()
            if token.kind == "prefix_decl":
                self._parse_prefix()
            else:
                yield from self._parse_statement()

    def _parse_prefix(self) -> None:
        self._next()  # @prefix
        name_token = self._next()
        if name_token.kind != "curie" or not name_token.text.endswith(":"):
            raise ParseError(
                f"expected 'prefix:' after @prefix, found {name_token.text!r}",
                line=name_token.line,
            )
        prefix = name_token.text[:-1]
        uri_token = self._next()
        if uri_token.kind != "uri":
            raise ParseError("expected <uri> in @prefix", line=uri_token.line)
        self.manager.bind(prefix, uri_token.text[1:-1])
        self._expect_punct(".")

    def _parse_statement(self) -> Iterator[Triple]:
        self._pending: list[Triple] = []
        subject = self._parse_term(position="subject")
        self._parse_predicate_object_list(subject, terminator=".")
        token = self._next()
        if token.kind != "punct" or token.text != ".":
            raise ParseError(f"expected '.', found {token.text!r}", line=token.line)
        yield from self._pending

    def _parse_predicate_object_list(self, subject, terminator: str) -> None:
        """``p o (, o)* (; p o ...)*`` — triples accumulate in _pending."""
        while True:
            predicate = self._parse_term(position="predicate")
            while True:
                obj = self._parse_term(position="object")
                self._pending.append(Triple.create(subject, predicate, obj))
                nxt = self._peek()
                if nxt is not None and nxt.kind == "punct" and nxt.text == ",":
                    self._next()
                    continue
                break
            nxt = self._peek()
            if nxt is not None and nxt.kind == "punct" and nxt.text == ";":
                self._next()
                after = self._peek()
                # allow a trailing ';' before the terminator
                if after is not None and after.kind == "punct" and after.text == terminator:
                    return
                continue
            return

    def _parse_bnode_property_list(self) -> BNode:
        """``[ p o ; ... ]`` — mints a blank node carrying the properties."""
        node = BNode()
        nxt = self._peek()
        if nxt is not None and nxt.kind == "punct" and nxt.text == "]":
            self._next()
            return node
        self._parse_predicate_object_list(node, terminator="]")
        token = self._next()
        if token.kind != "punct" or token.text != "]":
            raise ParseError(f"expected ']', found {token.text!r}", line=token.line)
        return node

    def _parse_collection(self):
        """``( item* )`` — an rdf:first/rdf:rest list; empty is rdf:nil."""
        items = []
        while True:
            nxt = self._peek()
            if nxt is None:
                raise ParseError("unterminated collection (missing ')')")
            if nxt.kind == "punct" and nxt.text == ")":
                self._next()
                break
            items.append(self._parse_term(position="object"))
        if not items:
            return RDF.nil
        head = BNode()
        node = head
        for index, item in enumerate(items):
            self._pending.append(Triple.create(node, RDF.first, item))
            if index + 1 < len(items):
                rest = BNode()
                self._pending.append(Triple.create(node, RDF.rest, rest))
                node = rest
            else:
                self._pending.append(Triple.create(node, RDF.rest, RDF.nil))
        return head

    def _parse_term(self, position: str):
        nxt = self._peek()
        if nxt is not None and nxt.kind == "punct" and nxt.text in "[(":
            if position == "predicate":
                raise ParseError("blank node lists cannot be predicates", line=nxt.line)
            self._next()
            if nxt.text == "[":
                return self._parse_bnode_property_list()
            return self._parse_collection()
        token = self._next()
        if token.kind == "uri":
            return URIRef(_unescape(token.text[1:-1]))
        if token.kind == "curie":
            curie = token.text
            if curie.startswith(":"):
                curie = "" + curie  # default prefix form ':name'
                try:
                    return self.manager.namespace("").term(curie[1:])
                except Exception:
                    raise ParseError(f"default prefix unbound for {token.text!r}", line=token.line)
            try:
                return self.manager.expand(curie)
            except Exception as exc:
                raise ParseError(str(exc), line=token.line) from exc
        if token.kind == "a_kw":
            if position != "predicate":
                raise ParseError("'a' is only valid as a predicate", line=token.line)
            return RDF.type
        if position == "predicate":
            raise ParseError(f"invalid predicate {token.text!r}", line=token.line)
        if token.kind == "bnode":
            return BNode(token.text[2:])
        if position == "subject":
            # literals (quoted, numeric, boolean shorthand) cannot be subjects
            raise ParseError(f"invalid subject {token.text!r}", line=token.line)
        if token.kind == "literal":
            lexical = _unescape(token.text[1:-1])
            nxt = self._peek()
            if nxt is not None and nxt.kind == "langtag":
                self._next()
                return Literal(lexical, language=nxt.text[1:])
            if nxt is not None and nxt.kind == "dtsep":
                self._next()
                dt_token = self._next()
                if dt_token.kind == "uri":
                    return Literal(lexical, datatype=dt_token.text[1:-1])
                if dt_token.kind == "curie":
                    return Literal(lexical, datatype=self.manager.expand(dt_token.text).value)
                raise ParseError("expected datatype after ^^", line=dt_token.line)
            return Literal(lexical)
        if token.kind == "integer":
            return Literal(token.text, datatype=XSD_INTEGER)
        if token.kind == "double":
            return Literal(token.text, datatype=XSD_DOUBLE)
        if token.kind == "boolean":
            return Literal(token.text, datatype=XSD_BOOLEAN)
        raise ParseError(f"unexpected token {token.text!r} as {position}", line=token.line)


def parse(text: str, manager: NamespaceManager | None = None) -> Iterator[Triple]:
    """Parse Turtle text, yielding triples."""
    yield from _TurtleParser(text, manager).parse()


def load(text: str, name: str = "", manager: NamespaceManager | None = None) -> Graph:
    """Parse Turtle text into a fresh :class:`Graph`."""
    return Graph(name=name, triples=parse(text, manager))


def serialize(graph: Graph, manager: NamespaceManager | None = None) -> str:
    """Render a graph as Turtle, grouping by subject with ``;`` / ``,``."""
    manager = manager or NamespaceManager()

    def term_text(term) -> str:
        if isinstance(term, URIRef):
            if term == RDF.type:
                return "a"
            compact = manager.compact(term)
            return compact if compact is not None else term.n3()
        return term.n3()

    used_prefixes: set[str] = set()

    def note_prefix(text: str) -> str:
        if ":" in text and not text.startswith(("<", '"', "_")) and text != "a":
            used_prefixes.add(text.split(":", 1)[0])
        return text

    body_lines: list[str] = []
    for subject in sorted(graph.entities(), key=lambda s: str(s)):
        pred_parts: list[str] = []
        by_pred = sorted(
            {p for p, _ in graph.predicate_objects(subject)}, key=lambda p: p.value
        )
        for pred in by_pred:
            objects = sorted(graph.objects(subject, pred), key=lambda o: o.n3())
            objs_text = ", ".join(note_prefix(term_text(o)) for o in objects)
            pred_parts.append(f"{note_prefix(term_text(pred))} {objs_text}")
        subject_text = note_prefix(term_text(subject)) if isinstance(subject, URIRef) else subject.n3()
        body_lines.append(subject_text + " " + " ;\n    ".join(pred_parts) + " .")

    header = [
        f"@prefix {prefix}: <{manager.namespace(prefix).base}> ."
        for prefix in sorted(used_prefixes)
        if prefix in manager
    ]
    sections = []
    if header:
        sections.append("\n".join(header))
    sections.append("\n\n".join(body_lines))
    return "\n\n".join(sections) + "\n"
