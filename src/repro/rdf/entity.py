"""Entity views: the attribute-centric reading of an RDF subject.

The paper represents an entity as a set of attributes — (predicate, object)
pairs (Section 4.1). :class:`Entity` wraps one subject of a
:class:`~repro.rdf.graph.Graph` and exposes exactly that view, which is what
the similarity matrix and feature-set builders consume.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef
from repro.rdf.triples import Object, Predicate, Subject


class Entity:
    """A snapshot of one subject's attributes.

    ``attributes`` maps each predicate to the tuple of its objects. The
    snapshot is taken at construction; later graph mutation does not affect
    an existing view (deliberate: feature sets must be stable within an
    episode).
    """

    __slots__ = ("uri", "attributes")

    def __init__(self, uri: Subject, attributes: Mapping[Predicate, tuple[Object, ...]]):
        self.uri = uri
        self.attributes = dict(attributes)

    @classmethod
    def from_graph(cls, graph: Graph, uri: Subject) -> "Entity":
        """Materialize the attribute view of ``uri`` from ``graph``."""
        attrs: dict[Predicate, list[Object]] = {}
        for pred, obj in graph.predicate_objects(uri):
            attrs.setdefault(pred, []).append(obj)
        return cls(uri, {p: tuple(sorted(objs, key=_object_sort_key)) for p, objs in attrs.items()})

    @property
    def predicates(self) -> tuple[Predicate, ...]:
        return tuple(self.attributes.keys())

    @property
    def arity(self) -> int:
        """Number of distinct predicates (the *n*/*m* of Section 4.1)."""
        return len(self.attributes)

    def objects(self, predicate: Predicate) -> tuple[Object, ...]:
        return self.attributes.get(predicate, ())

    def literal_values(self, predicate: Predicate) -> tuple[Literal, ...]:
        return tuple(o for o in self.objects(predicate) if isinstance(o, Literal))

    def pairs(self) -> Iterator[tuple[Predicate, Object]]:
        for pred, objs in self.attributes.items():
            for obj in objs:
                yield pred, obj

    def __contains__(self, predicate: Predicate) -> bool:
        return predicate in self.attributes

    def __len__(self) -> int:
        return sum(len(objs) for objs in self.attributes.values())

    def __eq__(self, other):
        return (
            isinstance(other, Entity)
            and self.uri == other.uri
            and self.attributes == other.attributes
        )

    def __hash__(self):
        return hash(("Entity", self.uri))

    def __repr__(self):
        return f"<Entity {self.uri} with {self.arity} predicates>"


def _object_sort_key(obj: Object) -> tuple[int, str]:
    """Deterministic ordering across mixed term types."""
    if isinstance(obj, URIRef):
        return (0, obj.value)
    if isinstance(obj, Literal):
        return (1, obj.lexical)
    return (2, str(obj))


def entities_of(graph: Graph) -> Iterator[Entity]:
    """Yield the attribute view of every subject in ``graph``."""
    for uri in graph.entities():
        yield Entity.from_graph(graph, uri)
