"""Static analysis over RDF data: ``repro.rdf.validate``.

The query side of the input surface got a static analyzer in
:mod:`repro.sparql.analysis`; this module gives the *data* side — graphs,
datasets, and ``owl:sameAs`` link sets — the same treatment. ALEX's premise
is that automatically generated links are noisy; validating a dataset and
its candidate links *before* spending RL episodes on them turns silent
garbage-in into ordered :class:`DataDiagnostic` records with stable
``ALEX-D***`` codes.

Rules come in three tiers, each computed in a single pass over its input
(term and graph tiers share one pass over the triples; the link tier is one
pass over the links plus a union-find):

* **term tier (D1xx)** — ill-typed literals (lexical form outside the
  declared XSD datatype's lexical space), language tags that are not BCP 47
  well-formed, relative IRIs, literal-as-subject artifacts from lenient
  parsing, IRIs with empty local names (Turtle round-trips of undeclared
  prefixes);
* **graph tier (D2xx)** — a predicate used with both literal and resource
  objects, inferred functional-predicate violations, orphan blank nodes,
  terms that collide with reserved ``rdf:``/``rdfs:``/``owl:``/``xsd:``
  vocabulary;
* **link tier (D3xx)** — the paper-specific payoff: sameAs cycles and
  asymmetric duplicates (union-find), one-to-many conflicts violating the
  1:1 partition assumption, endpoints absent from their dataset, links
  scored below θ, links already blacklisted by the engine.

Entry points mirror the query analyzer: :func:`validate_graph` /
:func:`validate_dataset` / :func:`validate_links` return ordered
diagnostics; :func:`check_graph` / :func:`check_links` raise
:class:`~repro.errors.DataValidationError` on error-level findings.
:meth:`repro.core.engine.AlexEngine.preflight` wires the link tier into the
engine. Every run and diagnostic is counted in :mod:`repro.obs`
(``rdf.validate.runs`` / ``rdf.validate.diagnostics{code,severity}``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from datetime import date, datetime
from typing import Callable, Iterable

from repro.diagnostics import SEVERITY_RANK, Diagnostic, register_codes
from repro.errors import DataValidationError
from repro.links import Link, LinkSet
from repro.rdf.graph import Graph
from repro.rdf.namespaces import OWL, RDF, RDFS, XSD_NS
from repro.rdf.terms import (
    XSD_BOOLEAN,
    XSD_DATE,
    XSD_DATETIME,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_FLOAT,
    XSD_GYEAR,
    XSD_INT,
    XSD_INTEGER,
    XSD_LONG,
    BNode,
    Literal,
    URIRef,
)
from repro.rdf.triples import Triple

#: Stable diagnostic code table: code -> (severity, summary).
#: Codes are append-only; a released code never changes meaning.
CODES: dict[str, tuple[str, str]] = {
    # -- term tier ----------------------------------------------------- #
    "ALEX-D101": ("error", "literal lexical form does not conform to its XSD datatype"),
    "ALEX-D102": ("warning", "language tag is not BCP 47 well-formed"),
    "ALEX-D103": ("warning", "relative IRI (missing scheme)"),
    "ALEX-D104": ("error", "literal used as triple subject (lenient-parsing artifact)"),
    "ALEX-D105": ("warning", "IRI has an empty local name (undeclared-prefix round-trip artifact)"),
    # -- graph tier ---------------------------------------------------- #
    "ALEX-D201": ("warning", "predicate used with both literal and resource objects"),
    "ALEX-D202": ("warning", "inferred functional predicate has multi-valued subjects"),
    "ALEX-D203": ("warning", "orphan blank node (referenced but never described)"),
    "ALEX-D204": ("warning", "term collides with reserved rdf:/rdfs:/owl:/xsd: vocabulary"),
    # -- link tier ----------------------------------------------------- #
    "ALEX-D301": ("warning", "link closes a sameAs cycle (endpoints already connected)"),
    "ALEX-D302": ("warning", "asymmetric sameAs entry (link present in both directions)"),
    "ALEX-D303": ("warning", "one-to-many sameAs conflict (violates the 1:1 partition assumption)"),
    "ALEX-D304": ("error", "link endpoint is absent from its dataset"),
    "ALEX-D305": ("error", "link scored below the configured theta"),
    "ALEX-D306": ("error", "link is on the engine blacklist"),
}

register_codes(CODES, "rdf.validate")

#: The tier a code belongs to, by its hundreds digit.
TIERS = ("term", "graph", "link")


@dataclass(frozen=True)
class DataDiagnostic(Diagnostic):
    """A diagnostic located by *subject* (a term, triple, or link in N3
    syntax) rather than by source position.

    ``graph`` names the containing graph when validating a dataset;
    ``link`` carries the offending :class:`~repro.links.Link` for
    diagnostics that identify exactly one link (used by engine quarantine).
    """

    subject: str | None = None
    graph: str | None = None
    link: Link | None = None

    def format(self) -> str:
        location = ""
        if self.graph:
            location = f"[{self.graph}] "
        text = f"{location}{self.code} {self.severity}: {self.message}"
        if self.subject:
            text += f" — {self.subject}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict:
        data = super().to_dict()
        del data["line"], data["column"]
        data["subject"] = self.subject
        data["graph"] = self.graph
        return data


def _sort_key(diagnostic: DataDiagnostic) -> tuple:
    return (
        SEVERITY_RANK.get(diagnostic.severity, 3),
        diagnostic.code,
        diagnostic.graph or "",
        diagnostic.subject or "",
        diagnostic.message,
    )


# --------------------------------------------------------------------- #
# Term tier: lexical spaces, language tags, IRIs
# --------------------------------------------------------------------- #

_INTEGER_RE = re.compile(r"^[+-]?\d+$")
_DECIMAL_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)$")
_DOUBLE_RE = re.compile(r"^[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?$")
_GYEAR_RE = re.compile(r"^-?\d{4,}$")
_SCHEME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9+.\-]*:")


def _valid_date(text: str) -> bool:
    try:
        date.fromisoformat(text)
    except ValueError:
        return False
    return True


def _valid_datetime(text: str) -> bool:
    try:
        datetime.fromisoformat(text)
    except ValueError:
        return False
    return True


#: datatype URI -> predicate over the lexical form.
_LEXICAL_CHECKS: dict[str, Callable[[str], bool]] = {
    XSD_INTEGER: lambda t: _INTEGER_RE.match(t) is not None,
    XSD_INT: lambda t: _INTEGER_RE.match(t) is not None,
    XSD_LONG: lambda t: _INTEGER_RE.match(t) is not None,
    XSD_DECIMAL: lambda t: _DECIMAL_RE.match(t) is not None,
    XSD_DOUBLE: lambda t: _DOUBLE_RE.match(t) is not None,
    XSD_FLOAT: lambda t: _DOUBLE_RE.match(t) is not None,
    XSD_BOOLEAN: lambda t: t in ("true", "false", "1", "0"),
    XSD_DATE: _valid_date,
    XSD_DATETIME: _valid_datetime,
    XSD_GYEAR: lambda t: _GYEAR_RE.match(t) is not None,
}


def _lang_tag_well_formed(tag: str) -> bool:
    """BCP 47 well-formedness, simplified: every hyphen-separated subtag is
    1–8 characters (the :class:`~repro.rdf.terms.Literal` constructor already
    guarantees the alphabet)."""
    return all(1 <= len(subtag) <= 8 for subtag in tag.split("-"))


# Reserved-vocabulary collision detection (D204): a term inside one of the
# four core namespaces whose local name is not part of that vocabulary is
# almost always a typo (owl:sameAS) — data written against it silently
# matches nothing.
_RDF_LOCALS = frozenset({
    "type", "Property", "Statement", "subject", "predicate", "object", "value",
    "first", "rest", "nil", "List", "langString", "XMLLiteral", "HTML", "JSON",
    "Bag", "Seq", "Alt",
})
_RDFS_LOCALS = frozenset({
    "Resource", "Class", "Literal", "Datatype", "subClassOf", "subPropertyOf",
    "domain", "range", "label", "comment", "seeAlso", "isDefinedBy", "member",
    "Container", "ContainerMembershipProperty",
})
_OWL_LOCALS = frozenset({
    "sameAs", "differentFrom", "AllDifferent", "distinctMembers", "Thing",
    "Nothing", "Class", "ObjectProperty", "DatatypeProperty",
    "AnnotationProperty", "OntologyProperty", "FunctionalProperty",
    "InverseFunctionalProperty", "TransitiveProperty", "SymmetricProperty",
    "AsymmetricProperty", "ReflexiveProperty", "IrreflexiveProperty",
    "inverseOf", "equivalentClass", "equivalentProperty", "disjointWith",
    "propertyDisjointWith", "unionOf", "intersectionOf", "complementOf",
    "oneOf", "Restriction", "onProperty", "allValuesFrom", "someValuesFrom",
    "hasValue", "hasSelf", "minCardinality", "maxCardinality", "cardinality",
    "Ontology", "imports", "versionInfo", "versionIRI", "deprecated",
    "DeprecatedClass", "DeprecatedProperty", "priorVersion",
    "backwardCompatibleWith", "incompatibleWith", "NamedIndividual",
})
_XSD_LOCALS = frozenset({
    "string", "boolean", "decimal", "integer", "int", "long", "short", "byte",
    "nonNegativeInteger", "nonPositiveInteger", "negativeInteger",
    "positiveInteger", "unsignedLong", "unsignedInt", "unsignedShort",
    "unsignedByte", "float", "double", "date", "dateTime", "time", "duration",
    "gYear", "gYearMonth", "gMonth", "gMonthDay", "gDay", "hexBinary",
    "base64Binary", "anyURI", "normalizedString", "token", "language",
})
_RESERVED = (
    (RDF.base, _RDF_LOCALS, "rdf"),
    (RDFS.base, _RDFS_LOCALS, "rdfs"),
    (OWL.base, _OWL_LOCALS, "owl"),
    (XSD_NS.base, _XSD_LOCALS, "xsd"),
)
_RDF_MEMBERSHIP_RE = re.compile(r"^_\d+$")


def _reserved_collision(value: str) -> str | None:
    """``prefix:local`` of the reserved vocabulary ``value`` collides with,
    or None when the IRI is fine (outside the core namespaces or a known
    term of its namespace)."""
    for base, locals_, prefix in _RESERVED:
        if value.startswith(base):
            local = value[len(base):]
            if local in locals_:
                return None
            if prefix == "rdf" and _RDF_MEMBERSHIP_RE.match(local):
                return None  # rdf:_1, rdf:_2, ... container membership
            return f"{prefix}:{local}"
    return None


class _GraphValidator:
    """One-pass term- and graph-tier validation over a stream of triples.

    ``feed`` ingests one triple at a time, emitting term-tier diagnostics
    (deduplicated per offending term) and accumulating the aggregates the
    graph tier needs; ``finish`` emits the graph-tier diagnostics. The whole
    run is O(triples), not O(triples × rules).
    """

    #: A predicate is *inferred functional* when at least this many subjects
    #: use it and at least this fraction of them hold exactly one value.
    FUNCTIONAL_MIN_SUBJECTS = 5
    FUNCTIONAL_SINGLE_FRACTION = 0.9

    def __init__(self, graph_label: str | None = None):
        self.graph_label = graph_label
        self.diagnostics: list[DataDiagnostic] = []
        self._seen: set[tuple[str, str]] = set()  # (code, offender) dedup
        self._pred_kinds: dict[URIRef, set[str]] = {}
        self._pred_values: dict[URIRef, dict] = {}  # pred -> subject -> count
        self._bnode_subjects: set[BNode] = set()
        self._bnode_objects: set[BNode] = set()

    def _report(self, code: str, message: str, subject: str,
                hint: str | None = None, dedup: str | None = None) -> None:
        key = (code, dedup if dedup is not None else subject)
        if key in self._seen:
            return
        self._seen.add(key)
        self.diagnostics.append(DataDiagnostic(
            code=code, severity=CODES[code][0], message=message,
            subject=subject, graph=self.graph_label, hint=hint,
        ))

    # -- term tier ------------------------------------------------------ #

    def _check_uri(self, term: URIRef) -> None:
        value = term.value
        if not _SCHEME_RE.match(value):
            self._report(
                "ALEX-D103",
                f"IRI <{value}> is relative (no scheme); linked-data tools "
                "cannot dereference or join on it",
                term.n3(),
                hint="resolve it against the document base before publishing",
            )
        elif value.endswith(("/", "#")):
            self._report(
                "ALEX-D105",
                f"IRI <{value}> has an empty local name — the usual artifact "
                "of expanding an undeclared prefix in a Turtle round-trip",
                term.n3(),
                hint="check the @prefix declarations of the source document",
            )
        collision = _reserved_collision(value)
        if collision is not None:
            self._report(
                "ALEX-D204",
                f"term {collision} is not part of the reserved vocabulary it "
                "sits in; tools treat it as an unknown predicate",
                term.n3(),
                hint="check the local name for typos (e.g. owl:sameAS)",
            )

    def _check_literal(self, literal: Literal) -> None:
        if literal.language is not None and not _lang_tag_well_formed(literal.language):
            self._report(
                "ALEX-D102",
                f"language tag {literal.language!r} is not BCP 47 "
                "well-formed (subtags must be 1-8 characters)",
                literal.n3(),
            )
        datatype = literal.datatype
        if datatype is None:
            return
        checker = _LEXICAL_CHECKS.get(datatype)
        if checker is not None and not checker(literal.lexical):
            self._report(
                "ALEX-D101",
                f"literal {literal.n3()} does not conform to the lexical "
                f"space of <{datatype}>; typed comparisons fall back to "
                "string semantics",
                literal.n3(),
                hint="fix the lexical form or drop the datatype",
            )
        elif checker is None:
            collision = _reserved_collision(datatype)
            if collision is not None:
                self._report(
                    "ALEX-D204",
                    f"datatype {collision} is not part of the reserved "
                    "vocabulary it sits in",
                    literal.n3(),
                    hint="check the datatype local name for typos",
                    dedup=datatype,
                )

    def feed(self, triple: Triple) -> None:
        subject, predicate, obj = triple
        if isinstance(subject, Literal):
            # Cannot enter a Graph (Triple.create rejects it) but raw triple
            # streams from lenient parsers can carry it.
            self._report(
                "ALEX-D104",
                f"literal {subject.n3()} used as a triple subject; RDF "
                "forbids it and most stores drop the statement silently",
                triple.n3(),
            )
        elif isinstance(subject, URIRef):
            self._check_uri(subject)
        elif isinstance(subject, BNode):
            self._bnode_subjects.add(subject)
        if isinstance(predicate, URIRef):
            self._check_uri(predicate)
        if isinstance(obj, URIRef):
            self._check_uri(obj)
        elif isinstance(obj, Literal):
            self._check_literal(obj)
        elif isinstance(obj, BNode):
            self._bnode_objects.add(obj)

        # graph-tier aggregates
        if isinstance(predicate, URIRef):
            kind = "literal" if isinstance(obj, Literal) else "resource"
            self._pred_kinds.setdefault(predicate, set()).add(kind)
            counts = self._pred_values.setdefault(predicate, {})
            counts[subject] = counts.get(subject, 0) + 1

    # -- graph tier ----------------------------------------------------- #

    def finish(self) -> list[DataDiagnostic]:
        for predicate, kinds in self._pred_kinds.items():
            if "literal" in kinds and "resource" in kinds:
                self._report(
                    "ALEX-D201",
                    f"predicate <{predicate.value}> is used with both literal "
                    "and resource objects; joins and similarity features "
                    "treat the two populations inconsistently",
                    predicate.n3(),
                )
        for predicate, counts in self._pred_values.items():
            subjects = len(counts)
            if subjects < self.FUNCTIONAL_MIN_SUBJECTS:
                continue
            multi = [s for s, count in counts.items() if count > 1]
            single_fraction = (subjects - len(multi)) / subjects
            if multi and single_fraction >= self.FUNCTIONAL_SINGLE_FRACTION:
                example = min(multi, key=lambda term: term.n3())
                self._report(
                    "ALEX-D202",
                    f"predicate <{predicate.value}> is single-valued for "
                    f"{subjects - len(multi)} of {subjects} subjects but "
                    f"{len(multi)} subject(s) (e.g. {example.n3()}) hold "
                    "multiple values — likely duplicated statements",
                    predicate.n3(),
                )
        for bnode in self._bnode_objects - self._bnode_subjects:
            self._report(
                "ALEX-D203",
                f"blank node {bnode.n3()} is referenced as an object but has "
                "no outgoing triples; it describes nothing",
                bnode.n3(),
            )
        self.diagnostics.sort(key=_sort_key)
        return self.diagnostics


def _graph_diagnostics(
    triples: Iterable[Triple], graph_label: str | None = None
) -> list[DataDiagnostic]:
    validator = _GraphValidator(graph_label)
    for triple in triples:
        validator.feed(triple)
    return validator.finish()


# --------------------------------------------------------------------- #
# Link tier
# --------------------------------------------------------------------- #


class _UnionFind:
    """Union-find with path compression over term identity."""

    def __init__(self):
        self._parent: dict = {}

    def find(self, item):
        root = item
        while self._parent.setdefault(root, root) != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left, right) -> bool:
        """Merge the two components; False when already connected."""
        root_left, root_right = self.find(left), self.find(right)
        if root_left == root_right:
            return False
        self._parent[root_right] = root_left
        return True


def _present(graph: Graph, entity: URIRef) -> bool:
    return (
        next(graph.triples(subject=entity), None) is not None
        or next(graph.triples(object=entity), None) is not None
    )


def _link_diagnostics(
    links: LinkSet,
    left: Graph | None = None,
    right: Graph | None = None,
    theta: float | None = None,
    blacklist: Iterable[Link] | None = None,
) -> list[DataDiagnostic]:
    diagnostics: list[DataDiagnostic] = []
    blacklisted = set(blacklist) if blacklist is not None else frozenset()

    def report(code: str, message: str, subject: str, link: Link | None = None,
               hint: str | None = None) -> None:
        diagnostics.append(DataDiagnostic(
            code=code, severity=CODES[code][0], message=message,
            subject=subject, link=link, hint=hint,
        ))

    ordered = sorted(links, key=lambda l: (l.left.value, l.right.value))
    components = _UnionFind()
    for link in ordered:
        if link.left == link.right:
            report(
                "ALEX-D301",
                f"link connects {link.left.n3()} to itself; a self-sameAs "
                "carries no information and inflates the candidate count",
                link.n3(), link=link,
            )
        elif link.reversed() in links and link.left.value > link.right.value:
            # Report once per unordered pair, at the lexicographically later
            # entry — that is the redundant one.
            report(
                "ALEX-D302",
                f"link also exists in the opposite direction "
                f"({link.right.n3()} -> {link.left.n3()}); sameAs is "
                "symmetric, the duplicate double-counts feedback",
                link.n3(), link=link,
                hint="keep one canonical direction per pair",
            )
        elif not components.union(link.left, link.right):
            report(
                "ALEX-D301",
                f"link closes a sameAs cycle: {link.left.n3()} and "
                f"{link.right.n3()} are already connected through other "
                "links, so this entry only knots the equivalence classes",
                link.n3(), link=link,
                hint="deduplicate the chain before feeding it to the engine",
            )
        if left is not None and not _present(left, link.left):
            report(
                "ALEX-D304",
                f"left endpoint {link.left.n3()} does not occur in the left "
                "dataset; the link can never be confirmed by a query",
                link.n3(), link=link,
            )
        if right is not None and not _present(right, link.right):
            report(
                "ALEX-D304",
                f"right endpoint {link.right.n3()} does not occur in the "
                "right dataset; the link can never be confirmed by a query",
                link.n3(), link=link,
            )
        if theta is not None:
            score = links.score(link)
            if score is not None and score < theta:
                report(
                    "ALEX-D305",
                    f"link score {score:.3f} is below theta={theta:g}; the "
                    "feature filter would never have admitted it",
                    link.n3(), link=link,
                )
        if link in blacklisted:
            report(
                "ALEX-D306",
                "link is on the engine blacklist (already rejected by "
                "feedback) yet still present in the link set",
                link.n3(), link=link,
                hint="drop it or clear the blacklist deliberately",
            )

    # One-to-many conflicts: the paper partitions work under a 1:1
    # assumption between the two datasets.
    for entity in sorted({l.left for l in links}, key=lambda e: e.value):
        counterparts = links.by_left(entity)
        if len(counterparts) > 1:
            names = ", ".join(sorted(c.n3() for c in counterparts)[:3])
            report(
                "ALEX-D303",
                f"left entity {entity.n3()} is linked to "
                f"{len(counterparts)} right entities ({names}{', ...' if len(counterparts) > 3 else ''})",
                entity.n3(),
            )
    for entity in sorted({l.right for l in links}, key=lambda e: e.value):
        counterparts = links.by_right(entity)
        if len(counterparts) > 1:
            names = ", ".join(sorted(c.n3() for c in counterparts)[:3])
            report(
                "ALEX-D303",
                f"right entity {entity.n3()} is linked to "
                f"{len(counterparts)} left entities ({names}{', ...' if len(counterparts) > 3 else ''})",
                entity.n3(),
            )
    diagnostics.sort(key=_sort_key)
    return diagnostics


# --------------------------------------------------------------------- #
# Public entry points
# --------------------------------------------------------------------- #


def _count(diagnostics: list[DataDiagnostic]) -> list[DataDiagnostic]:
    from repro import obs

    obs.inc("rdf.validate.runs")
    for diagnostic in diagnostics:
        obs.inc(
            "rdf.validate.diagnostics",
            code=diagnostic.code,
            severity=diagnostic.severity,
        )
    return diagnostics


def validate_triples(triples: Iterable[Triple]) -> list[DataDiagnostic]:
    """Term- and graph-tier validation over a raw triple stream.

    Unlike :func:`validate_graph` this accepts triples that could never
    enter a :class:`~repro.rdf.graph.Graph` (e.g. literal subjects from a
    lenient parser), which is exactly when D104 fires.
    """
    return _count(_graph_diagnostics(triples))


def validate_graph(graph: Graph) -> list[DataDiagnostic]:
    """Term- and graph-tier validation of one graph, ordered and counted."""
    return _count(_graph_diagnostics(graph.triples()))


def validate_dataset(dataset) -> list[DataDiagnostic]:
    """Validate every graph of a :class:`~repro.rdf.dataset.Dataset`.

    Each named graph (and the default graph) is validated independently;
    diagnostics carry the graph name in ``graph``.
    """
    diagnostics = _graph_diagnostics(dataset.default.triples(), "default")
    for name in dataset.graph_names():
        diagnostics.extend(_graph_diagnostics(dataset.graph(name).triples(), name.value))
    diagnostics.sort(key=_sort_key)
    return _count(diagnostics)


def validate_links(
    links: LinkSet,
    left: Graph | None = None,
    right: Graph | None = None,
    theta: float | None = None,
    blacklist: Iterable[Link] | None = None,
) -> list[DataDiagnostic]:
    """Link-tier validation of a sameAs link set.

    ``left``/``right`` enable endpoint-presence checks (D304), ``theta``
    the score check (D305), and ``blacklist`` the engine-conflict check
    (D306); structural checks (cycles, asymmetric duplicates, one-to-many
    conflicts) always run.
    """
    return _count(_link_diagnostics(links, left, right, theta, blacklist))


def check_graph(graph: Graph) -> list[DataDiagnostic]:
    """Strict gate: validate and raise on error-level diagnostics."""
    diagnostics = validate_graph(graph)
    _raise_on_errors(diagnostics)
    return diagnostics


def check_links(
    links: LinkSet,
    left: Graph | None = None,
    right: Graph | None = None,
    theta: float | None = None,
    blacklist: Iterable[Link] | None = None,
) -> list[DataDiagnostic]:
    """Strict gate: validate a link set and raise on error-level diagnostics."""
    diagnostics = validate_links(links, left, right, theta, blacklist)
    _raise_on_errors(diagnostics)
    return diagnostics


def _raise_on_errors(diagnostics: list[DataDiagnostic]) -> None:
    errors = [diagnostic for diagnostic in diagnostics if diagnostic.is_error]
    if errors:
        raise DataValidationError(
            [diagnostic.format() for diagnostic in errors], diagnostics=diagnostics
        )


__all__ = [
    "CODES",
    "DataDiagnostic",
    "TIERS",
    "check_graph",
    "check_links",
    "validate_dataset",
    "validate_graph",
    "validate_links",
    "validate_triples",
]
