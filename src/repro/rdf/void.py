"""VoID dataset descriptions.

VoID (Vocabulary of Interlinked Datasets) is the W3C vocabulary LOD
publishers use to describe datasets and linksets. A deployment of this
library would publish its improved ``owl:sameAs`` links together with a
VoID description; :func:`void_description` generates one for any graph and
:func:`void_linkset` for a link set between two datasets.
"""

from __future__ import annotations

from repro.links import LinkSet
from repro.rdf.graph import Graph
from repro.rdf.namespaces import Namespace, OWL_SAMEAS, RDF_TYPE
from repro.rdf.stats import graph_statistics
from repro.rdf.terms import Literal, URIRef, XSD_INTEGER
from repro.rdf.triples import Triple

VOID = Namespace("http://rdfs.org/ns/void#")
DCTERMS = Namespace("http://purl.org/dc/terms/")


def void_description(graph: Graph, dataset_uri: str) -> Graph:
    """A VoID description of ``graph``: triple/entity/property counts."""
    stats = graph_statistics(graph)
    subject = URIRef(dataset_uri)
    description = Graph(name=f"void:{graph.name}")
    description.add(Triple(subject, RDF_TYPE, VOID.Dataset))
    if graph.name:
        description.add(Triple(subject, DCTERMS.title, Literal(graph.name)))
    description.add(
        Triple(subject, VOID.triples, Literal(str(stats.triple_count), datatype=XSD_INTEGER))
    )
    description.add(
        Triple(
            subject,
            VOID.distinctSubjects,
            Literal(str(stats.entity_count), datatype=XSD_INTEGER),
        )
    )
    description.add(
        Triple(subject, VOID.properties, Literal(str(stats.predicate_count), datatype=XSD_INTEGER))
    )
    return description


def void_linkset(
    links: LinkSet,
    linkset_uri: str,
    source_dataset_uri: str,
    target_dataset_uri: str,
) -> Graph:
    """A VoID Linkset description of a set of ``owl:sameAs`` links."""
    subject = URIRef(linkset_uri)
    description = Graph(name=f"void:{links.name or 'linkset'}")
    description.add(Triple(subject, RDF_TYPE, VOID.Linkset))
    description.add(Triple(subject, VOID.linkPredicate, OWL_SAMEAS))
    description.add(Triple(subject, VOID.subjectsTarget, URIRef(source_dataset_uri)))
    description.add(Triple(subject, VOID.objectsTarget, URIRef(target_dataset_uri)))
    description.add(
        Triple(subject, VOID.triples, Literal(str(len(links)), datatype=XSD_INTEGER))
    )
    return description


def export_with_void(
    links: LinkSet,
    base_uri: str,
    source_dataset_uri: str,
    target_dataset_uri: str,
) -> Graph:
    """The full publishable artifact: sameAs triples + their VoID metadata."""
    graph = links.to_graph()
    metadata = void_linkset(
        links, base_uri.rstrip("/") + "/linkset", source_dataset_uri, target_dataset_uri
    )
    return graph | metadata
