"""The RDF triple: an immutable (subject, predicate, object) statement."""

from __future__ import annotations

from typing import NamedTuple, Union

from repro.errors import TermError
from repro.rdf.terms import BNode, Literal, Term, URIRef

Subject = Union[URIRef, BNode]
Predicate = URIRef
Object = Union[URIRef, BNode, Literal]


class Triple(NamedTuple):
    """One RDF statement.

    ``subject`` is a URI or blank node, ``predicate`` is always a URI, and
    ``object`` may be any term. Construction validates term positions so a
    malformed triple can never enter a :class:`~repro.rdf.graph.Graph`.
    """

    subject: Subject
    predicate: Predicate
    object: Object

    @classmethod
    def create(cls, subject: Subject, predicate: Predicate, object: Object) -> "Triple":
        """Validating constructor; prefer this over the bare tuple call."""
        if not isinstance(subject, (URIRef, BNode)):
            raise TermError(f"triple subject must be URIRef or BNode, got {type(subject).__name__}")
        if not isinstance(predicate, URIRef):
            raise TermError(f"triple predicate must be URIRef, got {type(predicate).__name__}")
        if not isinstance(object, Term):
            raise TermError(f"triple object must be an RDF term, got {type(object).__name__}")
        return cls(subject, predicate, object)

    def n3(self) -> str:
        """Render in N-Triples syntax, including the terminating dot."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def __repr__(self):
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"
