"""RDF substrate: terms, triples, graphs, namespaces, and serializations."""

from repro.rdf.dataset import Dataset, Quad
from repro.rdf.dictionary import TermDictionary
from repro.rdf.entity import Entity, entities_of
from repro.rdf.graph import Graph
from repro.rdf.namespaces import (
    DC,
    FOAF,
    OWL,
    OWL_SAMEAS,
    RDF,
    RDF_TYPE,
    RDFS,
    RDFS_LABEL,
    SKOS,
    Namespace,
    NamespaceManager,
)
from repro.rdf.stats import GraphStatistics, graph_statistics
from repro.rdf.terms import BNode, Literal, Term, URIRef, infer_literal
from repro.rdf.triples import Triple
from repro.rdf.validate import (
    DataDiagnostic,
    check_graph,
    check_links,
    validate_dataset,
    validate_graph,
    validate_links,
    validate_triples,
)

__all__ = [
    "BNode",
    "DC",
    "DataDiagnostic",
    "Dataset",
    "Entity",
    "FOAF",
    "Graph",
    "GraphStatistics",
    "Literal",
    "Namespace",
    "NamespaceManager",
    "OWL",
    "Quad",
    "OWL_SAMEAS",
    "RDF",
    "RDF_TYPE",
    "RDFS",
    "RDFS_LABEL",
    "SKOS",
    "Term",
    "TermDictionary",
    "Triple",
    "URIRef",
    "check_graph",
    "check_links",
    "entities_of",
    "graph_statistics",
    "infer_literal",
    "validate_dataset",
    "validate_graph",
    "validate_links",
    "validate_triples",
]
