"""Namespace handling and well-known vocabularies.

A :class:`Namespace` mints :class:`~repro.rdf.terms.URIRef` terms via
attribute or item access (``FOAF.name`` or ``FOAF["name"]``); a
:class:`NamespaceManager` maps prefixes to namespaces for CURIE expansion and
compaction in the Turtle and SPARQL front ends.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import RDFError
from repro.rdf.terms import URIRef


class Namespace:
    """A URI prefix that mints terms: ``Namespace("http://x/")["name"]``."""

    __slots__ = ("_base",)

    def __init__(self, base: str):
        if not base:
            raise RDFError("namespace base must not be empty")
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def term(self, name: str) -> URIRef:
        return URIRef(self._base + name)

    def __getitem__(self, name: str) -> URIRef:
        return self.term(name)

    def __getattr__(self, name: str) -> URIRef:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    def __contains__(self, uri: URIRef | str) -> bool:
        value = uri.value if isinstance(uri, URIRef) else uri
        return value.startswith(self._base)

    def __eq__(self, other):
        return isinstance(other, Namespace) and self._base == other._base

    def __hash__(self):
        return hash(("Namespace", self._base))

    def __repr__(self):
        return f"Namespace({self._base!r})"


# Well-known vocabularies used throughout the library.
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD_NS = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
DC = Namespace("http://purl.org/dc/elements/1.1/")
SKOS = Namespace("http://www.w3.org/2004/02/skos/core#")

#: The link predicate at the heart of the paper.
OWL_SAMEAS = OWL.sameAs
RDF_TYPE = RDF.type
RDFS_LABEL = RDFS.label

_DEFAULT_BINDINGS = {
    "rdf": RDF,
    "rdfs": RDFS,
    "owl": OWL,
    "xsd": XSD_NS,
    "foaf": FOAF,
    "dc": DC,
    "skos": SKOS,
}


class NamespaceManager:
    """Bidirectional prefix ↔ namespace registry.

    Expansion (``expand("foaf:name")``) is exact; compaction
    (``compact(uri)``) picks the longest matching namespace base.
    """

    def __init__(self, include_defaults: bool = True):
        self._by_prefix: dict[str, Namespace] = {}
        if include_defaults:
            for prefix, namespace in _DEFAULT_BINDINGS.items():
                self.bind(prefix, namespace)

    def bind(self, prefix: str, namespace: Namespace | str) -> None:
        """Register ``prefix`` for ``namespace``, replacing any prior binding."""
        if isinstance(namespace, str):
            namespace = Namespace(namespace)
        self._by_prefix[prefix] = namespace

    def namespace(self, prefix: str) -> Namespace:
        try:
            return self._by_prefix[prefix]
        except KeyError:
            raise RDFError(f"unbound prefix: {prefix!r}") from None

    def expand(self, curie: str) -> URIRef:
        """Expand a CURIE such as ``foaf:name`` to a full URIRef."""
        if ":" not in curie:
            raise RDFError(f"not a CURIE (missing colon): {curie!r}")
        prefix, local = curie.split(":", 1)
        return self.namespace(prefix).term(local)

    def compact(self, uri: URIRef) -> str | None:
        """Return ``prefix:local`` for ``uri``, or None when no prefix matches."""
        best: tuple[int, str, str] | None = None
        for prefix, namespace in self._by_prefix.items():
            base = namespace.base
            if uri.value.startswith(base) and len(uri.value) > len(base):
                local = uri.value[len(base):]
                # Locals containing separators would not round-trip.
                if "/" in local or "#" in local:
                    continue
                if best is None or len(base) > best[0]:
                    best = (len(base), prefix, local)
        if best is None:
            return None
        return f"{best[1]}:{best[2]}"

    def bindings(self) -> Iterator[tuple[str, Namespace]]:
        return iter(sorted(self._by_prefix.items()))

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._by_prefix

    def __len__(self) -> int:
        return len(self._by_prefix)
