"""An in-memory, dictionary-encoded, indexed RDF triple store.

Every term is interned to an integer ID on entry
(:class:`~repro.rdf.dictionary.TermDictionary`), and :class:`Graph`
maintains three nested-dict indexes (SPO, POS, OSP) *over those IDs* so any
triple pattern — with any combination of bound and wildcard positions — is
answered by direct int-keyed index lookups rather than scans. This is the
substrate under the SPARQL evaluator (which joins directly in ID space),
the federation endpoints, PARIS, and the feature space builder.

The encoding boundary is explicit: the public API speaks
:class:`~repro.rdf.terms.Term` objects in and out, while
:meth:`Graph.triples_ids` and the read-only :attr:`Graph.dictionary`
accessor expose the raw ID layer for advanced callers (the SPARQL hash-join
executor, and eventually features/blocking). The contract is documented in
``docs/architecture.md``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import RDFError
from repro.rdf.dictionary import TermDictionary
from repro.rdf.triples import Object, Predicate, Subject, Triple

#: Versioned format tag on :meth:`Graph.to_dict` payloads.
GRAPH_FORMAT = "repro-graph/1"


class Graph:
    """A set of RDF triples with full pattern-match indexing over term IDs.

    The three indexes cover all eight bound/unbound pattern shapes:

    ========  ==========================
    pattern   served by
    ========  ==========================
    s p o     SPO (membership probe)
    s p ?     SPO
    s ? o     OSP
    s ? ?     SPO
    ? p o     POS
    ? p ?     POS
    ? ? o     OSP
    ? ? ?     iterate SPO
    ========  ==========================

    ``dictionary`` lets several graphs share one interning table (a
    :class:`~repro.rdf.dataset.Dataset` passes the same dictionary to all
    its member graphs so IDs are comparable across them).
    """

    def __init__(
        self,
        name: str = "",
        triples: Iterable[Triple] | None = None,
        dictionary: TermDictionary | None = None,
    ):
        self.name = name
        self._dict = dictionary if dictionary is not None else TermDictionary()
        self._spo: dict[int, dict[int, set[int]]] = {}
        self._pos: dict[int, dict[int, set[int]]] = {}
        self._osp: dict[int, dict[int, set[int]]] = {}
        self._size = 0
        self._version = 0
        if triples is not None:
            self.add_all(triples)

    # ------------------------------------------------------------------ #
    # Encoding boundary
    # ------------------------------------------------------------------ #

    @property
    def dictionary(self) -> TermDictionary:
        """The graph's term dictionary (treat as read-only).

        Callers may :meth:`~repro.rdf.dictionary.TermDictionary.decode` /
        :meth:`~repro.rdf.dictionary.TermDictionary.lookup` freely;
        interning new terms through it is harmless (the dictionary is
        append-only) but does not add any triples.
        """
        return self._dict

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumps on every successful add/remove.

        Cached query artifacts (join orders, endpoint capabilities) key on
        this to detect staleness without hashing the graph.
        """
        return self._version

    def triples_ids(
        self,
        subject_id: int | None = None,
        predicate_id: int | None = None,
        object_id: int | None = None,
    ) -> Iterator[tuple[int, int, int]]:
        """Pattern-match directly in ID space; ``None`` is a wildcard.

        Yields ``(subject_id, predicate_id, object_id)`` tuples. IDs come
        from :attr:`dictionary`; an ID the graph has never stored simply
        matches nothing. This is the advanced-caller fast path — the
        SPARQL executor builds its hash joins on it.
        """
        s, p, o = subject_id, predicate_id, object_id
        if s is not None:
            by_pred = self._spo.get(s)
            if by_pred is None:
                return
            if p is not None:
                objects = by_pred.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield (s, p, o)
                    return
                for obj in objects:
                    yield (s, p, obj)
                return
            if o is not None:
                by_subj = self._osp.get(o)
                if by_subj is None:
                    return
                for pred in by_subj.get(s, ()):
                    yield (s, pred, o)
                return
            for pred, objects in by_pred.items():
                for obj in objects:
                    yield (s, pred, obj)
            return
        if p is not None:
            by_obj = self._pos.get(p)
            if by_obj is None:
                return
            if o is not None:
                for subj in by_obj.get(o, ()):
                    yield (subj, p, o)
                return
            for obj, subjects in by_obj.items():
                for subj in subjects:
                    yield (subj, p, obj)
            return
        if o is not None:
            by_subj = self._osp.get(o)
            if by_subj is None:
                return
            for subj, preds in by_subj.items():
                for pred in preds:
                    yield (subj, pred, o)
            return
        for subj, by_pred in self._spo.items():
            for pred, objects in by_pred.items():
                for obj in objects:
                    yield (subj, pred, obj)

    def count_ids(
        self,
        subject_id: int | None = None,
        predicate_id: int | None = None,
        object_id: int | None = None,
    ) -> int:
        """Count ID-space matches; cheap (index sizes) for every shape."""
        s, p, o = subject_id, predicate_id, object_id
        if s is None and p is None and o is None:
            return self._size
        if s is not None:
            by_pred = self._spo.get(s)
            if by_pred is None:
                return 0
            if p is not None:
                objects = by_pred.get(p)
                if objects is None:
                    return 0
                if o is not None:
                    return 1 if o in objects else 0
                return len(objects)
            if o is not None:
                return len(self._osp.get(o, {}).get(s, ()))
            return sum(len(objects) for objects in by_pred.values())
        if p is not None:
            by_obj = self._pos.get(p)
            if by_obj is None:
                return 0
            if o is not None:
                return len(by_obj.get(o, ()))
            return sum(len(subjects) for subjects in by_obj.values())
        by_subj = self._osp.get(o, {})
        return sum(len(preds) for preds in by_subj.values())

    def _encode_pattern(self, term) -> int | None:
        """Pattern position -> ID, or -1 when the term is absent (no match).

        ``None`` stays ``None`` (wildcard). Uses :meth:`TermDictionary.lookup`
        so read-side pattern matching never grows the dictionary.
        """
        if term is None:
            return None
        term_id = self._dict.lookup(term)
        return -1 if term_id is None else term_id

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add(self, triple: Triple) -> bool:
        """Add a triple. Returns True if the triple was new."""
        s, p, o = Triple.create(*triple)
        encode = self._dict.encode
        si, pi, oi = encode(s), encode(p), encode(o)
        objects = self._spo.setdefault(si, {}).setdefault(pi, set())
        if oi in objects:
            return False
        objects.add(oi)
        self._pos.setdefault(pi, {}).setdefault(oi, set()).add(si)
        self._osp.setdefault(oi, {}).setdefault(si, set()).add(pi)
        self._size += 1
        self._version += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns how many were new."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> bool:
        """Remove a triple. Returns True if it was present.

        The terms stay interned — IDs are stable for the graph's lifetime.
        """
        s, p, o = triple
        lookup = self._dict.lookup
        si, pi, oi = lookup(s), lookup(p), lookup(o)
        if si is None or pi is None or oi is None:
            return False
        by_pred = self._spo.get(si)
        if by_pred is None or pi not in by_pred or oi not in by_pred[pi]:
            return False
        by_pred[pi].discard(oi)
        if not by_pred[pi]:
            del by_pred[pi]
            if not by_pred:
                del self._spo[si]
        self._pos[pi][oi].discard(si)
        if not self._pos[pi][oi]:
            del self._pos[pi][oi]
            if not self._pos[pi]:
                del self._pos[pi]
        self._osp[oi][si].discard(pi)
        if not self._osp[oi][si]:
            del self._osp[oi][si]
            if not self._osp[oi]:
                del self._osp[oi]
        self._size -= 1
        self._version += 1
        return True

    def clear(self) -> None:
        """Drop all triples (the dictionary, possibly shared, is kept)."""
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0
        self._version += 1

    # ------------------------------------------------------------------ #
    # Pattern matching (term-object boundary)
    # ------------------------------------------------------------------ #

    def triples(
        self,
        subject: Subject | None = None,
        predicate: Predicate | None = None,
        object: Object | None = None,
    ) -> Iterator[Triple]:
        """Yield all triples matching the pattern; ``None`` is a wildcard."""
        si = self._encode_pattern(subject)
        pi = self._encode_pattern(predicate)
        oi = self._encode_pattern(object)
        if -1 in (si, pi, oi):  # a constant the graph has never seen
            return
        decode = self._dict.decode
        for s_id, p_id, o_id in self.triples_ids(si, pi, oi):
            # reuse the caller's term objects for bound positions
            yield Triple(
                subject if subject is not None else decode(s_id),
                predicate if predicate is not None else decode(p_id),
                object if object is not None else decode(o_id),
            )

    def count(
        self,
        subject: Subject | None = None,
        predicate: Predicate | None = None,
        object: Object | None = None,
    ) -> int:
        """Count matches without materializing triples."""
        si = self._encode_pattern(subject)
        pi = self._encode_pattern(predicate)
        oi = self._encode_pattern(object)
        if -1 in (si, pi, oi):
            return 0
        return self.count_ids(si, pi, oi)

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #

    def subjects(self, predicate: Predicate | None = None, object: Object | None = None) -> Iterator[Subject]:
        pi = self._encode_pattern(predicate)
        oi = self._encode_pattern(object)
        if -1 in (pi, oi):
            return
        decode = self._dict.decode
        if pi is not None and oi is not None:
            for si in self._pos.get(pi, {}).get(oi, ()):
                yield decode(si)
            return
        seen: set[int] = set()
        for si, _, _ in self.triples_ids(None, pi, oi):
            if si not in seen:
                seen.add(si)
                yield decode(si)

    def predicates(self, subject: Subject | None = None, object: Object | None = None) -> Iterator[Predicate]:
        si = self._encode_pattern(subject)
        oi = self._encode_pattern(object)
        if -1 in (si, oi):
            return
        decode = self._dict.decode
        if si is None and oi is None:
            for pi in self._pos.keys():
                yield decode(pi)
            return
        seen: set[int] = set()
        for _, pi, _ in self.triples_ids(si, None, oi):
            if pi not in seen:
                seen.add(pi)
                yield decode(pi)

    def objects(self, subject: Subject | None = None, predicate: Predicate | None = None) -> Iterator[Object]:
        si = self._encode_pattern(subject)
        pi = self._encode_pattern(predicate)
        if -1 in (si, pi):
            return
        decode = self._dict.decode
        if si is not None and pi is not None:
            for oi in self._spo.get(si, {}).get(pi, ()):
                yield decode(oi)
            return
        seen: set[int] = set()
        for _, _, oi in self.triples_ids(si, pi, None):
            if oi not in seen:
                seen.add(oi)
                yield decode(oi)

    def value(self, subject: Subject, predicate: Predicate) -> Object | None:
        """One arbitrary object for (subject, predicate), or None."""
        si = self._encode_pattern(subject)
        pi = self._encode_pattern(predicate)
        if -1 in (si, pi):
            return None
        for oi in self._spo.get(si, {}).get(pi, ()):
            return self._dict.decode(oi)
        return None

    def predicate_objects(self, subject: Subject) -> Iterator[tuple[Predicate, Object]]:
        """All (predicate, object) pairs for a subject — the entity's attributes."""
        si = self._encode_pattern(subject)
        if si == -1:
            return
        decode = self._dict.decode
        for pi, objects in self._spo.get(si, {}).items():
            predicate = decode(pi)
            for oi in objects:
                yield predicate, decode(oi)

    def entities(self) -> Iterator[Subject]:
        """All distinct subjects in the graph."""
        decode = self._dict.decode
        for si in self._spo.keys():
            yield decode(si)

    # ------------------------------------------------------------------ #
    # Set-like protocol
    # ------------------------------------------------------------------ #

    def __contains__(self, triple: Triple) -> bool:
        s, p, o = triple
        lookup = self._dict.lookup
        si, pi, oi = lookup(s), lookup(p), lookup(o)
        if si is None or pi is None or oi is None:
            return False
        return oi in self._spo.get(si, {}).get(pi, ())

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __bool__(self) -> bool:
        return self._size > 0

    def copy(self, name: str | None = None) -> "Graph":
        """A shallow structural copy sharing the term dictionary.

        Sharing keeps IDs comparable between the copy and the original
        (both append-only, so neither can invalidate the other).
        """
        out = Graph(
            name=name if name is not None else self.name, dictionary=self._dict
        )
        out._spo = {s: {p: set(o) for p, o in by_pred.items()} for s, by_pred in self._spo.items()}
        out._pos = {p: {o: set(s) for o, s in by_obj.items()} for p, by_obj in self._pos.items()}
        out._osp = {o: {s: set(p) for s, p in by_subj.items()} for o, by_subj in self._osp.items()}
        out._size = self._size
        return out

    def __or__(self, other: "Graph") -> "Graph":
        """Union of two graphs as a new graph."""
        if not isinstance(other, Graph):
            raise RDFError("can only union Graph with Graph")
        merged = self.copy()
        merged.add_all(other.triples())
        return merged

    def __repr__(self):
        label = f" {self.name!r}" if self.name else ""
        return f"<Graph{label} with {self._size} triples>"

    # ------------------------------------------------------------------ #
    # Persistence — term IDs survive the round trip
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """JSON-serializable payload: the dictionary plus ID triples."""
        return {
            "format": GRAPH_FORMAT,
            "name": self.name,
            "dictionary": self._dict.to_dict(),
            "triples": sorted(self.triples_ids()),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Graph":
        """Rebuild a graph; every term keeps its serialized ID."""
        if payload.get("format") != GRAPH_FORMAT:
            raise RDFError(f"unsupported graph format: {payload.get('format')!r}")
        dictionary = TermDictionary.from_dict(payload["dictionary"])
        graph = cls(name=payload.get("name", ""), dictionary=dictionary)
        known = len(dictionary)
        for si, pi, oi in payload["triples"]:
            if not (0 <= si < known and 0 <= pi < known and 0 <= oi < known):
                raise RDFError(f"triple references unknown term id: {(si, pi, oi)}")
            objects = graph._spo.setdefault(si, {}).setdefault(pi, set())
            if oi in objects:
                continue
            objects.add(oi)
            graph._pos.setdefault(pi, {}).setdefault(oi, set()).add(si)
            graph._osp.setdefault(oi, {}).setdefault(si, set()).add(pi)
            graph._size += 1
        return graph
