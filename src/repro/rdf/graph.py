"""An in-memory, indexed RDF triple store.

:class:`Graph` maintains three nested-dict indexes (SPO, POS, OSP) so any
triple pattern — with any combination of bound and wildcard positions — is
answered by direct index lookups rather than scans. This is the substrate
under the SPARQL evaluator, the federation endpoints, PARIS, and the feature
space builder.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.errors import RDFError
from repro.rdf.terms import BNode, Literal, Term, URIRef
from repro.rdf.triples import Object, Predicate, Subject, Triple


class Graph:
    """A set of RDF triples with full pattern-match indexing.

    The three indexes cover all eight bound/unbound pattern shapes:

    ========  ==========================
    pattern   served by
    ========  ==========================
    s p o     SPO (membership probe)
    s p ?     SPO
    s ? o     SPO then filter on o
    s ? ?     SPO
    ? p o     POS
    ? p ?     POS
    ? ? o     OSP
    ? ? ?     iterate SPO
    ========  ==========================
    """

    def __init__(self, name: str = "", triples: Iterable[Triple] | None = None):
        self.name = name
        self._spo: dict[Subject, dict[Predicate, set[Object]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._pos: dict[Predicate, dict[Object, set[Subject]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._osp: dict[Object, dict[Subject, set[Predicate]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._size = 0
        if triples is not None:
            self.add_all(triples)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add(self, triple: Triple) -> bool:
        """Add a triple. Returns True if the triple was new."""
        s, p, o = Triple.create(*triple)
        if o in self._spo[s][p]:
            return False
        self._spo[s][p].add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self._size += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add many triples; returns how many were new."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> bool:
        """Remove a triple. Returns True if it was present."""
        s, p, o = triple
        if s not in self._spo or p not in self._spo[s] or o not in self._spo[s][p]:
            return False
        self._spo[s][p].discard(o)
        if not self._spo[s][p]:
            del self._spo[s][p]
            if not self._spo[s]:
                del self._spo[s]
        self._pos[p][o].discard(s)
        if not self._pos[p][o]:
            del self._pos[p][o]
            if not self._pos[p]:
                del self._pos[p]
        self._osp[o][s].discard(p)
        if not self._osp[o][s]:
            del self._osp[o][s]
            if not self._osp[o]:
                del self._osp[o]
        self._size -= 1
        return True

    def clear(self) -> None:
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0

    # ------------------------------------------------------------------ #
    # Pattern matching
    # ------------------------------------------------------------------ #

    def triples(
        self,
        subject: Subject | None = None,
        predicate: Predicate | None = None,
        object: Object | None = None,
    ) -> Iterator[Triple]:
        """Yield all triples matching the pattern; ``None`` is a wildcard."""
        s, p, o = subject, predicate, object
        if s is not None:
            by_pred = self._spo.get(s)
            if by_pred is None:
                return
            if p is not None:
                objects = by_pred.get(p)
                if objects is None:
                    return
                if o is not None:
                    if o in objects:
                        yield Triple(s, p, o)
                    return
                for obj in objects:
                    yield Triple(s, p, obj)
                return
            for pred, objects in by_pred.items():
                if o is not None:
                    if o in objects:
                        yield Triple(s, pred, o)
                else:
                    for obj in objects:
                        yield Triple(s, pred, obj)
            return
        if p is not None:
            by_obj = self._pos.get(p)
            if by_obj is None:
                return
            if o is not None:
                for subj in by_obj.get(o, ()):
                    yield Triple(subj, p, o)
                return
            for obj, subjects in by_obj.items():
                for subj in subjects:
                    yield Triple(subj, p, obj)
            return
        if o is not None:
            by_subj = self._osp.get(o)
            if by_subj is None:
                return
            for subj, preds in by_subj.items():
                for pred in preds:
                    yield Triple(subj, pred, o)
            return
        for subj, by_pred in self._spo.items():
            for pred, objects in by_pred.items():
                for obj in objects:
                    yield Triple(subj, pred, obj)

    def count(
        self,
        subject: Subject | None = None,
        predicate: Predicate | None = None,
        object: Object | None = None,
    ) -> int:
        """Count matches without materializing triples where possible."""
        if subject is None and predicate is None and object is None:
            return self._size
        if subject is not None and predicate is not None and object is None:
            return len(self._spo.get(subject, {}).get(predicate, ()))
        if predicate is not None and subject is None and object is None:
            by_obj = self._pos.get(predicate, {})
            return sum(len(subjects) for subjects in by_obj.values())
        if predicate is not None and object is not None and subject is None:
            return len(self._pos.get(predicate, {}).get(object, ()))
        return sum(1 for _ in self.triples(subject, predicate, object))

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #

    def subjects(self, predicate: Predicate | None = None, object: Object | None = None) -> Iterator[Subject]:
        if predicate is not None and object is not None:
            yield from self._pos.get(predicate, {}).get(object, ())
            return
        seen: set[Subject] = set()
        for triple in self.triples(None, predicate, object):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def predicates(self, subject: Subject | None = None, object: Object | None = None) -> Iterator[Predicate]:
        if subject is None and object is None:
            yield from self._pos.keys()
            return
        seen: set[Predicate] = set()
        for triple in self.triples(subject, None, object):
            if triple.predicate not in seen:
                seen.add(triple.predicate)
                yield triple.predicate

    def objects(self, subject: Subject | None = None, predicate: Predicate | None = None) -> Iterator[Object]:
        if subject is not None and predicate is not None:
            yield from self._spo.get(subject, {}).get(predicate, ())
            return
        seen: set[Object] = set()
        for triple in self.triples(subject, predicate, None):
            if triple.object not in seen:
                seen.add(triple.object)
                yield triple.object

    def value(self, subject: Subject, predicate: Predicate) -> Object | None:
        """One arbitrary object for (subject, predicate), or None."""
        for obj in self._spo.get(subject, {}).get(predicate, ()):
            return obj
        return None

    def predicate_objects(self, subject: Subject) -> Iterator[tuple[Predicate, Object]]:
        """All (predicate, object) pairs for a subject — the entity's attributes."""
        for pred, objects in self._spo.get(subject, {}).items():
            for obj in objects:
                yield pred, obj

    def entities(self) -> Iterator[Subject]:
        """All distinct subjects in the graph."""
        yield from self._spo.keys()

    # ------------------------------------------------------------------ #
    # Set-like protocol
    # ------------------------------------------------------------------ #

    def __contains__(self, triple: Triple) -> bool:
        s, p, o = triple
        return o in self._spo.get(s, {}).get(p, ())

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def __bool__(self) -> bool:
        return self._size > 0

    def copy(self, name: str | None = None) -> "Graph":
        return Graph(name=name if name is not None else self.name, triples=self.triples())

    def __or__(self, other: "Graph") -> "Graph":
        """Union of two graphs as a new graph."""
        if not isinstance(other, Graph):
            raise RDFError("can only union Graph with Graph")
        merged = self.copy()
        merged.add_all(other.triples())
        return merged

    def __repr__(self):
        label = f" {self.name!r}" if self.name else ""
        return f"<Graph{label} with {self._size} triples>"
