"""Descriptive statistics for RDF graphs.

Used by the CLI's ``describe`` command, by documentation tables, and for
eyeballing synthetic datasets against the real ones they stand in for.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.rdf.graph import Graph
from repro.rdf.terms import BNode, Literal, URIRef


@dataclass
class GraphStatistics:
    """A snapshot of a graph's shape."""

    name: str
    triple_count: int
    entity_count: int
    predicate_count: int
    literal_object_count: int
    uri_object_count: int
    bnode_count: int
    predicate_histogram: list[tuple[str, int]] = field(default_factory=list)

    @property
    def average_out_degree(self) -> float:
        if self.entity_count == 0:
            return 0.0
        return self.triple_count / self.entity_count

    def render(self) -> str:
        lines = [
            f"graph {self.name!r}:",
            f"  triples:    {self.triple_count}",
            f"  entities:   {self.entity_count} (avg out-degree {self.average_out_degree:.1f})",
            f"  predicates: {self.predicate_count}",
            f"  objects:    {self.literal_object_count} literals, "
            f"{self.uri_object_count} URIs, {self.bnode_count} blank nodes",
            "  top predicates:",
        ]
        for label, count in self.predicate_histogram[:8]:
            lines.append(f"    {count:6d}  {label}")
        return "\n".join(lines)


def graph_statistics(graph: Graph, top_predicates: int = 20) -> GraphStatistics:
    """Compute :class:`GraphStatistics` in one pass over the graph."""
    predicate_counts: Counter[str] = Counter()
    literal_objects = 0
    uri_objects = 0
    bnodes = 0
    for triple in graph.triples():
        predicate_counts[triple.predicate.value] += 1
        if isinstance(triple.object, Literal):
            literal_objects += 1
        elif isinstance(triple.object, URIRef):
            uri_objects += 1
        else:
            bnodes += 1
        if isinstance(triple.subject, BNode):
            bnodes += 1
    return GraphStatistics(
        name=graph.name or "unnamed",
        triple_count=len(graph),
        entity_count=sum(1 for _ in graph.entities()),
        predicate_count=len(predicate_counts),
        literal_object_count=literal_objects,
        uri_object_count=uri_objects,
        bnode_count=bnodes,
        predicate_histogram=predicate_counts.most_common(top_predicates),
    )
