"""RDF datasets: a default graph plus named graphs.

An RDF *dataset* groups several graphs under one roof — exactly the shape of
a federation snapshot: each member dataset is a named graph, and the
candidate ``owl:sameAs`` links can live in the default graph. Together with
:mod:`repro.rdf.nquads` this lets one file round-trip an entire linking
setup, and :meth:`Dataset.as_endpoints` turns the named graphs straight
into federation endpoints.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

from repro.errors import RDFError
from repro.rdf.dictionary import TermDictionary
from repro.rdf.graph import Graph
from repro.rdf.terms import URIRef
from repro.rdf.triples import Object, Predicate, Subject, Triple


class Quad(NamedTuple):
    """A triple plus the graph it belongs to (None = default graph)."""

    subject: Subject
    predicate: Predicate
    object: Object
    graph_name: URIRef | None = None

    @property
    def triple(self) -> Triple:
        return Triple(self.subject, self.predicate, self.object)


class Dataset:
    """A collection of graphs addressable by name."""

    def __init__(self, name: str = ""):
        self.name = name
        # one shared term dictionary across all member graphs, so IDs are
        # comparable dataset-wide (cross-graph joins, as_endpoints)
        self._dict = TermDictionary()
        self.default = Graph(name="default", dictionary=self._dict)
        self._named: dict[URIRef, Graph] = {}

    @property
    def dictionary(self) -> TermDictionary:
        """The dictionary shared by every graph in this dataset."""
        return self._dict

    # -- graph management ------------------------------------------------ #

    def graph(self, name: URIRef | None = None) -> Graph:
        """The graph with ``name`` (created on first access); None = default."""
        if name is None:
            return self.default
        if not isinstance(name, URIRef):
            raise RDFError(f"graph names must be URIRefs, got {type(name).__name__}")
        graph = self._named.get(name)
        if graph is None:
            graph = Graph(name=name.value, dictionary=self._dict)
            self._named[name] = graph
        return graph

    def graph_names(self) -> list[URIRef]:
        return sorted(self._named, key=lambda n: n.value)

    def has_graph(self, name: URIRef) -> bool:
        return name in self._named

    def remove_graph(self, name: URIRef) -> bool:
        """Drop a named graph entirely; returns True when it existed."""
        return self._named.pop(name, None) is not None

    # -- quad interface --------------------------------------------------- #

    def add(self, quad: Quad) -> bool:
        return self.graph(quad.graph_name).add(quad.triple)

    def add_all(self, quads: Iterable[Quad]) -> int:
        return sum(1 for quad in quads if self.add(quad))

    def remove(self, quad: Quad) -> bool:
        if quad.graph_name is not None and quad.graph_name not in self._named:
            return False
        return self.graph(quad.graph_name).remove(quad.triple)

    def quads(
        self,
        subject: Subject | None = None,
        predicate: Predicate | None = None,
        object: Object | None = None,
        graph_name: URIRef | None = None,
    ) -> Iterator[Quad]:
        """All quads matching the pattern; ``graph_name=None`` spans every
        graph (including the default)."""
        if graph_name is not None:
            graph = self._named.get(graph_name)
            if graph is None:
                return
            for triple in graph.triples(subject, predicate, object):
                yield Quad(*triple, graph_name)
            return
        for triple in self.default.triples(subject, predicate, object):
            yield Quad(*triple, None)
        for name in self.graph_names():
            for triple in self._named[name].triples(subject, predicate, object):
                yield Quad(*triple, name)

    def union(self) -> Graph:
        """One merged graph over the default and all named graphs."""
        merged = self.default.copy(name=f"{self.name or 'dataset'}-union")
        for graph in self._named.values():
            merged.add_all(graph.triples())
        return merged

    # -- federation tie-in --------------------------------------------------- #

    def as_endpoints(self):
        """One federation :class:`~repro.federation.endpoint.Endpoint` per
        named graph — a dataset file becomes a federation in one call."""
        from repro.federation.endpoint import Endpoint

        return [Endpoint(self._named[name], name.value) for name in self.graph_names()]

    def __len__(self) -> int:
        return len(self.default) + sum(len(graph) for graph in self._named.values())

    def __repr__(self):
        return (
            f"<Dataset {self.name!r}: default {len(self.default)} triples, "
            f"{len(self._named)} named graphs, {len(self)} total>"
        )
