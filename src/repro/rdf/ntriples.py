"""N-Triples parsing and serialization.

Implements the line-oriented N-Triples format: one triple per line, full
URIs, quoted literals with ``\\``-escapes, optional datatype or language
tag, ``_:`` blank nodes, ``#`` comments.
"""

from __future__ import annotations

import io
import re
from typing import IO, Iterable, Iterator

from repro.errors import ParseError
from repro.rdf.graph import Graph
from repro.rdf.terms import BNode, Literal, URIRef
from repro.rdf.triples import Triple

_UNESCAPES = {
    "\\\\": "\\",
    '\\"': '"',
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
}

_UNESCAPE_RE = re.compile(r'\\[\\"nrt]|\\u[0-9a-fA-F]{4}|\\U[0-9a-fA-F]{8}')


def _unescape(text: str) -> str:
    def replace(match: re.Match) -> str:
        token = match.group(0)
        if token in _UNESCAPES:
            return _UNESCAPES[token]
        return chr(int(token[2:], 16))

    return _UNESCAPE_RE.sub(replace, text)


class _LineScanner:
    """Cursor over one N-Triples line."""

    def __init__(self, text: str, line_no: int):
        self.text = text
        self.pos = 0
        self.line_no = line_no

    def error(self, message: str) -> ParseError:
        return ParseError(message, line=self.line_no, column=self.pos + 1)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}, found {self.peek()!r}")
        self.pos += 1

    def read_uri(self) -> URIRef:
        self.expect("<")
        end = self.text.find(">", self.pos)
        if end == -1:
            raise self.error("unterminated URI")
        value = self.text[self.pos:end]
        self.pos = end + 1
        try:
            return URIRef(_unescape(value))
        except Exception as exc:
            raise self.error(str(exc)) from exc

    def read_bnode(self) -> BNode:
        self.expect("_")
        self.expect(":")
        start = self.pos
        while self.pos < len(self.text) and (self.text[self.pos].isalnum() or self.text[self.pos] == "_"):
            self.pos += 1
        if self.pos == start:
            raise self.error("empty blank node label")
        return BNode(self.text[start:self.pos])

    def read_literal(self) -> Literal:
        self.expect('"')
        chunks: list[str] = []
        while True:
            if self.at_end():
                raise self.error("unterminated literal")
            char = self.text[self.pos]
            if char == "\\":
                if self.pos + 1 >= len(self.text):
                    raise self.error("dangling escape")
                chunks.append(self.text[self.pos:self.pos + 2])
                self.pos += 2
                continue
            if char == '"':
                self.pos += 1
                break
            chunks.append(char)
            self.pos += 1
        lexical = _unescape("".join(chunks))
        if self.peek() == "@":
            self.pos += 1
            start = self.pos
            while self.pos < len(self.text) and (self.text[self.pos].isalnum() or self.text[self.pos] == "-"):
                self.pos += 1
            if self.pos == start:
                raise self.error("empty language tag")
            return Literal(lexical, language=self.text[start:self.pos])
        if self.text[self.pos:self.pos + 2] == "^^":
            self.pos += 2
            datatype = self.read_uri()
            return Literal(lexical, datatype=datatype.value)
        return Literal(lexical)

    def read_subject(self):
        if self.peek() == "<":
            return self.read_uri()
        if self.peek() == "_":
            return self.read_bnode()
        raise self.error(f"expected subject, found {self.peek()!r}")

    def read_object(self):
        char = self.peek()
        if char == "<":
            return self.read_uri()
        if char == "_":
            return self.read_bnode()
        if char == '"':
            return self.read_literal()
        raise self.error(f"expected object, found {char!r}")


def parse_line(line: str, line_no: int = 1) -> Triple | None:
    """Parse one N-Triples line; returns None for blank/comment lines."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    scanner = _LineScanner(stripped, line_no)
    subject = scanner.read_subject()
    scanner.skip_ws()
    predicate = scanner.read_uri()
    scanner.skip_ws()
    obj = scanner.read_object()
    scanner.skip_ws()
    scanner.expect(".")
    scanner.skip_ws()
    if not scanner.at_end():
        raise scanner.error("trailing characters after '.'")
    return Triple.create(subject, predicate, obj)


def parse(source: str | IO[str]) -> Iterator[Triple]:
    """Parse N-Triples text or a text stream, yielding triples."""
    stream = io.StringIO(source) if isinstance(source, str) else source
    for line_no, line in enumerate(stream, start=1):
        triple = parse_line(line, line_no)
        if triple is not None:
            yield triple


def load(source: str | IO[str], name: str = "") -> Graph:
    """Parse N-Triples into a fresh :class:`Graph`."""
    return Graph(name=name, triples=parse(source))


def load_file(path: str, name: str = "") -> Graph:
    with open(path, encoding="utf-8") as handle:
        return load(handle, name=name or path)


def serialize(triples: Iterable[Triple], sort: bool = True) -> str:
    """Render triples as N-Triples text (sorted for deterministic output)."""
    lines = [triple.n3() for triple in triples]
    if sort:
        lines.sort()
    return "\n".join(lines) + ("\n" if lines else "")


def dump_file(graph: Graph, path: str) -> int:
    """Write a graph to ``path``; returns the number of triples written."""
    text = serialize(graph.triples())
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return len(graph)
