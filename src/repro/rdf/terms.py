"""RDF terms: URI references, literals, and blank nodes.

Terms are immutable, hashable values. A :class:`Literal` carries an optional
datatype URI and language tag, and exposes :meth:`Literal.to_python` which
converts the lexical form to a native Python value according to the XSD
datatype (used by the similarity layer and by SPARQL FILTER evaluation).

Immutability plus value-based hashing is what makes terms *internable*:
:class:`~repro.rdf.dictionary.TermDictionary` maps each distinct term to a
dense integer ID, and :class:`~repro.rdf.graph.Graph` stores and joins
those IDs instead of term objects. Equal terms always intern to the same
ID, so ID equality and term equality coincide everywhere downstream.
"""

from __future__ import annotations

import re
from datetime import date, datetime
from functools import total_ordering
from typing import Union

from repro.errors import TermError

# Common XSD datatype URIs, spelled out once.
XSD = "http://www.w3.org/2001/XMLSchema#"
XSD_STRING = XSD + "string"
XSD_INTEGER = XSD + "integer"
XSD_INT = XSD + "int"
XSD_LONG = XSD + "long"
XSD_DECIMAL = XSD + "decimal"
XSD_DOUBLE = XSD + "double"
XSD_FLOAT = XSD + "float"
XSD_BOOLEAN = XSD + "boolean"
XSD_DATE = XSD + "date"
XSD_DATETIME = XSD + "dateTime"
XSD_GYEAR = XSD + "gYear"

_NUMERIC_DATATYPES = frozenset(
    {XSD_INTEGER, XSD_INT, XSD_LONG, XSD_DECIMAL, XSD_DOUBLE, XSD_FLOAT}
)

_URI_FORBIDDEN = re.compile(r'[<>"{}|^`\\\x00-\x20]')

_INTEGER_RE = re.compile(r"^[+-]?\d+$")
_DECIMAL_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)$")
_DOUBLE_RE = re.compile(r"^[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?$")
_DATE_RE = re.compile(r"^(\d{4})-(\d{2})-(\d{2})$")
_DATETIME_RE = re.compile(r"^(\d{4})-(\d{2})-(\d{2})T(\d{2}):(\d{2}):(\d{2})")
_GYEAR_RE = re.compile(r"^\d{4}$")
_LANG_TAG_RE = re.compile(r"^[a-zA-Z]+(-[a-zA-Z0-9]+)*$")


class Term:
    """Abstract base for all RDF terms."""

    __slots__ = ()

    def n3(self) -> str:
        """Render the term in N-Triples syntax."""
        raise NotImplementedError


@total_ordering
class URIRef(Term):
    """An RDF URI reference (an IRI identifying a resource or predicate)."""

    __slots__ = ("value", "_hash")

    def __init__(self, value: str):
        if not value:
            raise TermError("URIRef must not be empty")
        if _URI_FORBIDDEN.search(value):
            raise TermError(f"URIRef contains forbidden characters: {value!r}")
        object.__setattr__(self, "value", value)
        # terms are dict keys in every graph index and feature matrix;
        # computing the hash once at construction keeps those lookups cheap
        object.__setattr__(self, "_hash", hash(("URIRef", value)))

    def __setattr__(self, name, val):  # immutability guard
        raise TermError("URIRef is immutable")

    def __reduce__(self):  # the setattr guard breaks default slot pickling
        return (URIRef, (self.value,))

    def n3(self) -> str:
        return f"<{self.value}>"

    @property
    def local_name(self) -> str:
        """The fragment or last path segment, e.g. ``name`` in ``…/ontology/name``."""
        for sep in ("#", "/"):
            if sep in self.value:
                tail = self.value.rsplit(sep, 1)[1]
                if tail:
                    return tail
        return self.value

    def __eq__(self, other):
        return isinstance(other, URIRef) and self.value == other.value

    def __lt__(self, other):
        if isinstance(other, URIRef):
            return self.value < other.value
        return NotImplemented

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"URIRef({self.value!r})"

    def __str__(self):
        return self.value


@total_ordering
class BNode(Term):
    """A blank node with a local identifier."""

    __slots__ = ("id", "_hash")
    _counter = 0

    def __init__(self, id: str | None = None):
        if id is None:
            BNode._counter += 1
            id = f"b{BNode._counter}"
        if not id or not re.match(r"^[A-Za-z0-9_]+$", id):
            raise TermError(f"invalid blank node id: {id!r}")
        object.__setattr__(self, "id", id)
        object.__setattr__(self, "_hash", hash(("BNode", id)))

    def __setattr__(self, name, val):
        raise TermError("BNode is immutable")

    def __reduce__(self):
        return (BNode, (self.id,))

    def n3(self) -> str:
        return f"_:{self.id}"

    def __eq__(self, other):
        return isinstance(other, BNode) and self.id == other.id

    def __lt__(self, other):
        if isinstance(other, BNode):
            return self.id < other.id
        return NotImplemented

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return f"BNode({self.id!r})"

    def __str__(self):
        return f"_:{self.id}"


_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


def _escape_literal(text: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in text)


@total_ordering
class Literal(Term):
    """An RDF literal: a lexical form plus optional datatype or language tag.

    A literal may carry a language tag *or* a datatype, never both (per RDF
    1.1 a language-tagged string has datatype ``rdf:langString``; we model
    that by keeping ``datatype=None`` when ``language`` is set).
    """

    __slots__ = ("lexical", "datatype", "language", "_hash")

    def __init__(
        self,
        value: Union[str, int, float, bool, date, datetime],
        datatype: str | None = None,
        language: str | None = None,
    ):
        if language is not None and datatype is not None:
            raise TermError("a literal cannot have both a language tag and a datatype")
        if language is not None and not _LANG_TAG_RE.match(language):
            raise TermError(f"invalid language tag: {language!r}")

        if isinstance(value, bool):  # bool before int: bool is an int subclass
            lexical = "true" if value else "false"
            datatype = datatype or XSD_BOOLEAN
        elif isinstance(value, int):
            lexical = str(value)
            datatype = datatype or XSD_INTEGER
        elif isinstance(value, float):
            lexical = repr(value)
            datatype = datatype or XSD_DOUBLE
        elif isinstance(value, datetime):
            lexical = value.isoformat()
            datatype = datatype or XSD_DATETIME
        elif isinstance(value, date):
            lexical = value.isoformat()
            datatype = datatype or XSD_DATE
        elif isinstance(value, str):
            lexical = value
        else:
            raise TermError(f"unsupported literal value type: {type(value).__name__}")

        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language.lower() if language else None)
        object.__setattr__(
            self, "_hash", hash(("Literal", self.lexical, self.datatype, self.language))
        )

    def __setattr__(self, name, val):
        raise TermError("Literal is immutable")

    def __reduce__(self):
        return (Literal, (self.lexical, self.datatype, self.language))

    def n3(self) -> str:
        body = f'"{_escape_literal(self.lexical)}"'
        if self.language:
            return f"{body}@{self.language}"
        if self.datatype and self.datatype != XSD_STRING:
            return f"{body}^^<{self.datatype}>"
        return body

    @property
    def is_numeric(self) -> bool:
        """True when the datatype is an XSD numeric type."""
        return self.datatype in _NUMERIC_DATATYPES

    def to_python(self):
        """Convert to the closest native Python value.

        Falls back to the raw lexical form when the lexical form does not
        actually conform to the declared datatype.
        """
        dt = self.datatype
        text = self.lexical
        try:
            if dt in (XSD_INTEGER, XSD_INT, XSD_LONG):
                return int(text)
            if dt in (XSD_DECIMAL, XSD_DOUBLE, XSD_FLOAT):
                return float(text)
            if dt == XSD_BOOLEAN:
                if text in ("true", "1"):
                    return True
                if text in ("false", "0"):
                    return False
                raise ValueError(text)
            if dt == XSD_DATE:
                return date.fromisoformat(text)
            if dt == XSD_DATETIME:
                return datetime.fromisoformat(text)
            if dt == XSD_GYEAR:
                return int(text)
        except (ValueError, TypeError):
            return text
        return text

    def __eq__(self, other):
        return (
            isinstance(other, Literal)
            and self.lexical == other.lexical
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __lt__(self, other):
        if isinstance(other, Literal):
            return (self.lexical, self.datatype or "", self.language or "") < (
                other.lexical,
                other.datatype or "",
                other.language or "",
            )
        return NotImplemented

    def __hash__(self):
        return self._hash

    def __repr__(self):
        extra = ""
        if self.datatype:
            extra = f", datatype={self.datatype!r}"
        elif self.language:
            extra = f", language={self.language!r}"
        return f"Literal({self.lexical!r}{extra})"

    def __str__(self):
        return self.lexical


def infer_literal(text: str) -> Literal:
    """Build a :class:`Literal` from plain text, inferring an XSD datatype.

    Used by the synthetic dataset generator and Turtle shorthand parsing:
    ``"1984"`` becomes an ``xsd:integer`` literal, ``"1984-12-30"`` an
    ``xsd:date``, ``"true"`` an ``xsd:boolean``, everything else a plain
    string literal.
    """
    stripped = text.strip()
    if _INTEGER_RE.match(stripped):
        return Literal(stripped, datatype=XSD_INTEGER)
    if _DOUBLE_RE.match(stripped) and any(c in stripped for c in ".eE"):
        return Literal(stripped, datatype=XSD_DOUBLE)
    if _DATE_RE.match(stripped):
        return Literal(stripped, datatype=XSD_DATE)
    if _DATETIME_RE.match(stripped):
        return Literal(stripped, datatype=XSD_DATETIME)
    if stripped in ("true", "false"):
        return Literal(stripped, datatype=XSD_BOOLEAN)
    return Literal(text)
