"""Shared diagnostic machinery: the :class:`Diagnostic` record and the
repo-wide code registry.

Two static analyzers emit ``ALEX-*`` diagnostics: :mod:`repro.sparql.analysis`
(queries) and :mod:`repro.rdf.validate` (graphs, datasets, and link sets).
Both register their code tables here so the codes form one namespace:

* codes are **append-only and stable** — a released code never changes
  meaning or severity;
* codes are **unique across analyzers** — registration raises on a clash;
* every code carries a pointer into ``docs/diagnostics.md`` so a tool can
  link a finding straight to its documentation.

``tools/lint_repro.py`` rule R006 enforces the other direction statically:
any ``ALEX-*`` string literal in library code must name a registered code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, NamedTuple

from repro.errors import ReproError

#: Severity levels, most severe first.
SEVERITIES = ("error", "warning", "info")

SEVERITY_RANK: dict[str, int] = {severity: rank for rank, severity in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding.

    ``line``/``column`` locate the finding in source text when the producing
    analyzer has positions (the SPARQL analyzer); data-side analyzers locate
    findings by subject instead (see
    :class:`repro.rdf.validate.DataDiagnostic`).
    """

    code: str
    severity: str
    message: str
    line: int | None = None
    column: int | None = None
    hint: str | None = None

    def format(self) -> str:
        location = ""
        if self.line is not None:
            location = f"{self.line}:{self.column if self.column is not None else 0}: "
        text = f"{location}{self.code} {self.severity}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "line": self.line,
            "column": self.column,
            "hint": self.hint,
        }

    @property
    def is_error(self) -> bool:
        return self.severity == "error"


class CodeEntry(NamedTuple):
    """Registry record for one diagnostic code."""

    severity: str
    summary: str
    analyzer: str
    anchor: str  # pointer into the docs, e.g. "diagnostics.md#alex-e001"


_REGISTRY: dict[str, CodeEntry] = {}


def register_codes(codes: Mapping[str, tuple[str, str]], analyzer: str) -> None:
    """Register an analyzer's code table (``code -> (severity, summary)``).

    Idempotent for the same analyzer (modules may be re-imported); raises
    :class:`~repro.errors.ReproError` when a code is already claimed by a
    different analyzer or re-registered with a different severity/summary.
    """
    for code, (severity, summary) in codes.items():
        if severity not in SEVERITY_RANK:
            raise ReproError(f"{analyzer}: unknown severity {severity!r} for {code}")
        entry = CodeEntry(severity, summary, analyzer, f"diagnostics.md#{code.lower()}")
        existing = _REGISTRY.get(code)
        if existing is not None and existing != entry:
            raise ReproError(
                f"diagnostic code {code} already registered by {existing.analyzer} "
                f"(attempted re-registration by {analyzer})"
            )
        _REGISTRY[code] = entry


def meets_threshold(severity: str, threshold: str) -> bool:
    """True when ``severity`` is at or above (at least as severe as)
    ``threshold``. Raises ``KeyError`` on unknown severities."""
    return SEVERITY_RANK[severity] <= SEVERITY_RANK[threshold]


def severity_exit_code(severities: Iterable[str], fail_on: str) -> int:
    """The shared ``--fail-on`` exit-code policy of the lint CLIs
    (``lint-query``/``lint-data``/``lint-code``): 1 when any finding sits
    at or above the ``fail_on`` threshold, else 0."""
    return 1 if any(meets_threshold(severity, fail_on) for severity in severities) else 0


def all_codes() -> dict[str, CodeEntry]:
    """A copy of the full registry (all analyzers)."""
    return dict(_REGISTRY)


def code_info(code: str) -> CodeEntry:
    """Registry entry for ``code``; raises on unknown codes."""
    try:
        return _REGISTRY[code]
    except KeyError:
        raise ReproError(f"unknown diagnostic code: {code!r}") from None


def is_registered(code: str) -> bool:
    return code in _REGISTRY


def severity_of(code: str) -> str:
    """The registered severity of ``code``."""
    return code_info(code).severity


__all__ = [
    "CodeEntry",
    "Diagnostic",
    "SEVERITIES",
    "SEVERITY_RANK",
    "all_codes",
    "code_info",
    "is_registered",
    "meets_threshold",
    "register_codes",
    "severity_exit_code",
    "severity_of",
]
