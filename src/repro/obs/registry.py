"""The instrument registry: creation, snapshots, merging, rendering.

One :class:`Registry` owns a namespace of instruments. Callers get-or-create
instruments by ``(name, labels)`` identity; asking for an existing name with
a different instrument kind is an error (one name, one meaning).

Snapshots are plain JSON-serializable dicts under a versioned schema
(:data:`SNAPSHOT_VERSION`), so they survive process boundaries: worker
processes snapshot their registries and the parent merges them
(:meth:`Registry.merge`) into one whole-run view. Merge semantics:

* counters and span aggregates **sum**;
* histograms sum bucket-by-bucket (boundaries must match);
* gauges are **last-write-wins** (a gauge is a level, not a flow).
"""

from __future__ import annotations

import json
import threading

from repro.errors import ObsError
from repro.obs.instruments import (
    DEFAULT_BOUNDARIES,
    DEFAULT_LATENCY_BOUNDARIES,
    SNAPSHOT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    Timer,
    labels_to_pairs,
)
from repro.obs.spans import Span, SpanAggregate
from repro.obs.trace import Tracer

#: Version stamped into every snapshot; bump on schema changes.
SNAPSHOT_VERSION = 1


class Registry:
    """A namespace of typed instruments plus span aggregates.

    A registry may additionally carry a :class:`~repro.obs.trace.Tracer`
    (``self.tracer``, installed via :func:`repro.obs.trace.install`); its
    buffered events travel in snapshots under the optional ``events`` key
    and fold across :meth:`merge` like every other section.
    """

    def __init__(self, name: str = "default"):
        self.name = name
        self._lock = threading.Lock()
        self._instruments: dict[tuple, Counter | Gauge | Histogram] = {}
        self._spans: dict[str, SpanAggregate] = {}
        self._local = threading.local()
        self.tracer: Tracer | None = None

    # ------------------------------------------------------------------ #
    # Instrument creation (get-or-create)
    # ------------------------------------------------------------------ #

    def _get_or_create(self, cls, name: str, labels: dict, **kwargs):
        key = (name, labels_to_pairs(labels))
        instrument = self._instruments.get(key)
        if instrument is not None:
            if not isinstance(instrument, cls):
                raise ObsError(
                    f"instrument {name!r} already registered as "
                    f"{instrument.kind}, not {cls.kind}"
                )
            return instrument
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1], **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise ObsError(
                    f"instrument {name!r} already registered as "
                    f"{instrument.kind}, not {cls.kind}"
                )
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, boundaries: tuple[float, ...] | None = None, **labels
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels,
            boundaries=tuple(boundaries) if boundaries is not None else DEFAULT_BOUNDARIES,
        )

    def timer(self, name: str, **labels) -> Timer:
        """A fresh timing context over a latency histogram (seconds)."""
        return self._get_or_create(
            Histogram, name, labels, boundaries=DEFAULT_LATENCY_BOUNDARIES
        ).time()

    # ------------------------------------------------------------------ #
    # Spans
    # ------------------------------------------------------------------ #

    def span(self, name: str) -> Span:
        return Span(self, name)

    def _span_stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record_span(self, path: str, seconds: float, count: int = 1) -> None:
        aggregate = self._spans.get(path)
        if aggregate is None:
            with self._lock:
                aggregate = self._spans.setdefault(path, SpanAggregate(path))
        aggregate.add(seconds, count)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """The registry's state as a JSON-serializable dict (see module doc)."""
        with self._lock:
            # Copy under the lock: a concurrent get-or-create must not grow
            # the dicts mid-iteration, and the tracer slot is read once so a
            # racing uninstall() cannot null it between check and use.
            instruments = sorted(self._instruments.items())
            aggregates = [self._spans[path] for path in sorted(self._spans)]
            tracer = self.tracer
        counters, gauges, histograms = [], [], []
        for (_, _), instrument in instruments:
            {"counter": counters, "gauge": gauges, "histogram": histograms}[
                instrument.kind
            ].append(instrument.snapshot())
        snapshot = {
            "format_version": SNAPSHOT_VERSION,
            "registry": self.name,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "spans": [aggregate.snapshot() for aggregate in aggregates],
        }
        if tracer is not None and (len(tracer) or tracer.dropped):
            snapshot["events"] = tracer.payload()
        return snapshot

    def merge(self, snapshot: dict, extra_labels: dict | None = None) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry.

        ``extra_labels`` are added to every incoming instrument — pass e.g.
        ``{"partition": name}`` to keep per-worker breakdowns instead of
        aggregating.
        """
        version = snapshot.get("format_version")
        if version != SNAPSHOT_VERSION:
            raise ObsError(f"unsupported obs snapshot version: {version!r}")
        extra = extra_labels or {}
        for entry in snapshot.get("counters", ()):
            self.counter(entry["name"], **{**entry["labels"], **extra}).inc(entry["value"])
        for entry in snapshot.get("gauges", ()):
            self.gauge(entry["name"], **{**entry["labels"], **extra}).set(entry["value"])
        for entry in snapshot.get("histograms", ()):
            histogram = self.histogram(
                entry["name"], boundaries=tuple(entry["boundaries"]),
                **{**entry["labels"], **extra},
            )
            if list(histogram.boundaries) != list(entry["boundaries"]):
                raise ObsError(
                    f"histogram {entry['name']!r} bucket boundaries do not match"
                )
            for index, count in enumerate(entry["counts"]):
                histogram.counts[index] += count
            histogram.count += entry["count"]
            histogram.sum += entry["sum"]
            if entry["min"] is not None:
                histogram.min = (
                    entry["min"] if histogram.min is None else min(histogram.min, entry["min"])
                )
            if entry["max"] is not None:
                histogram.max = (
                    entry["max"] if histogram.max is None else max(histogram.max, entry["max"])
                )
        for entry in snapshot.get("spans", ()):
            self._record_span(entry["path"], entry["total_seconds"], entry["count"])
        events = snapshot.get("events")
        if events is not None:
            tracer = self.tracer
            if tracer is None:
                # A holder tracer: keeps the merged events exportable without
                # turning on local recording in a registry that never traced.
                tracer = self.tracer = Tracer(enabled=False)
            tracer.absorb(events)

    def render(self, top: int | None = None) -> str:
        """Human-readable text dump (the body of ``repro stats``).

        Span aggregates are sorted by total time **descending** so the hot
        paths lead; ``top`` limits every section to its N largest entries
        (counters/gauges by value, histograms by count, spans by total
        time), noting how many entries were elided.
        """
        if top is not None and top < 1:
            raise ObsError(f"render top must be >= 1, got {top}")
        snapshot = self.snapshot()
        lines = [f"== obs registry {self.name!r} =="]

        def label_suffix(labels: dict) -> str:
            if not labels:
                return ""
            inner = ",".join(f"{key}={value}" for key, value in sorted(labels.items()))
            return "{" + inner + "}"

        def clip(entries: list, key) -> list:
            if top is None or len(entries) <= top:
                return entries
            return sorted(entries, key=key)[:top]

        counters = clip(snapshot["counters"], key=lambda e: (-e["value"], e["name"]))
        gauges = clip(snapshot["gauges"], key=lambda e: (-e["value"], e["name"]))
        histograms = clip(snapshot["histograms"], key=lambda e: (-e["count"], e["name"]))
        spans = sorted(
            snapshot["spans"], key=lambda e: (-e["total_seconds"], e["path"])
        )
        if top is not None:
            spans = spans[:top]

        def elided(section: str, shown: list) -> str | None:
            hidden = len(snapshot[section]) - len(shown)
            return f"  ... ({hidden} more)" if hidden > 0 else None

        if counters:
            lines.append("counters:")
            for entry in counters:
                lines.append(
                    f"  {entry['name'] + label_suffix(entry['labels']):<52} "
                    f"{entry['value']:>12g}"
                )
            more = elided("counters", counters)
            if more:
                lines.append(more)
        if gauges:
            lines.append("gauges:")
            for entry in gauges:
                lines.append(
                    f"  {entry['name'] + label_suffix(entry['labels']):<52} "
                    f"{entry['value']:>12g}"
                )
            more = elided("gauges", gauges)
            if more:
                lines.append(more)
        if histograms:
            lines.append("histograms:")
            for entry in histograms:
                mean = entry["sum"] / entry["count"] if entry["count"] else 0.0
                low = "-" if entry["min"] is None else f"{entry['min']:.6g}"
                high = "-" if entry["max"] is None else f"{entry['max']:.6g}"
                quantiles = " ".join(
                    f"{key}={entry[key]:.6g}"
                    for key, _ in SNAPSHOT_QUANTILES
                    if entry.get(key) is not None
                )
                lines.append(
                    f"  {entry['name'] + label_suffix(entry['labels']):<52} "
                    f"n={entry['count']} sum={entry['sum']:.6g} mean={mean:.6g} "
                    f"min={low} max={high}"
                    + (f" {quantiles}" if quantiles else "")
                )
            more = elided("histograms", histograms)
            if more:
                lines.append(more)
        if spans:
            lines.append("spans (by total time):")
            for entry in spans:
                lines.append(
                    f"  {entry['path']:<52} "
                    f"n={entry['count']} total={entry['total_seconds']:.3f}s"
                )
            more = elided("spans", spans)
            if more:
                lines.append(more)
        if "events" in snapshot:
            events = snapshot["events"]
            lines.append(
                f"trace events: {len(events['records'])} buffered"
                + (f", {events['dropped']} dropped" if events["dropped"] else "")
            )
        if len(lines) == 1:
            lines.append("(no instruments recorded)")
        return "\n".join(lines)

    def dump_json(self, path: str) -> None:
        """Write :meth:`snapshot` to ``path`` as indented JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=1, sort_keys=True)

    def reset(self) -> None:
        """Drop every instrument, span aggregate, and tracer (tests, fresh runs)."""
        with self._lock:
            self._instruments.clear()
            self._spans.clear()
        # The tracer slot is deliberately not lock-guarded state: it is
        # published by trace.install()/uninstall() as an atomic reference
        # assignment and read once into a local by every consumer (see
        # snapshot/merge), so clearing it outside the lock is safe.
        self.tracer = None

    def __repr__(self):
        with self._lock:
            instruments, span_paths = len(self._instruments), len(self._spans)
        return (
            f"<Registry {self.name!r}: {instruments} instruments, "
            f"{span_paths} span paths>"
        )


def load_snapshot(path: str) -> dict:
    """Read a snapshot written by :meth:`Registry.dump_json`, validated."""
    with open(path, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if not isinstance(snapshot, dict) or snapshot.get("format_version") != SNAPSHOT_VERSION:
        raise ObsError(f"not an obs snapshot (format_version mismatch): {path!r}")
    return snapshot


def counter_total(snapshot: dict, name: str) -> float:
    """Sum of one counter across all its label sets in a snapshot."""
    return sum(
        entry["value"] for entry in snapshot.get("counters", ()) if entry["name"] == name
    )
