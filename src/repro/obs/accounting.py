"""Per-query resource accounting: the :class:`QueryStats` ledger.

When enabled (:func:`enable`; off by default), every
:meth:`~repro.sparql.prepared.PreparedQuery.execute` and every
:meth:`~repro.federation.executor.FederatedEngine.execute` builds one
:class:`QueryStats` recording where the query's work went — rows scanned
and joined per strategy, plan-cache hit, dictionary decodes, bytes shipped
over the worker pool, wall seconds per phase — and attaches it to the
result (``result.stats``). The slowlog (:mod:`repro.obs.slowlog`) stores
the same breakdown with each slow entry.

Contract: accounting is a pure listener. The executors take the exact
same code paths with accounting on or off (an observing codec subclass
counts decodes; the existing :class:`~repro.sparql.eval.EvalObserver`
hook meters operators), so a seeded run produces byte-identical results
either way — the tracing parity rule extended to accounting.
"""

from __future__ import annotations

import threading
from typing import Any

#: Process-global enable flag; read once per query (no hot-loop checks).
_enabled = False

_tls = threading.local()


def enable(on: bool = True) -> None:
    """Turn per-query accounting on (or off with ``on=False``)."""
    global _enabled
    _enabled = bool(on)


def disable() -> None:
    """Turn per-query accounting off."""
    enable(False)


def enabled() -> bool:
    """Is per-query accounting on?"""
    return _enabled


def note_plan_cache(hit: bool) -> None:
    """Record (thread-locally) whether the last ``prepare()`` was a cache
    hit, for the QueryStats of the execute that follows it."""
    _tls.plan_cache_hit = hit


def consume_plan_cache_note() -> bool | None:
    """Pop the thread-local plan-cache note (None when no prepare ran)."""
    hit = getattr(_tls, "plan_cache_hit", None)
    _tls.plan_cache_hit = None
    return hit


class QueryStats:
    """Resource accounting for one query execution.

    Attributes
    ----------
    kind:
        ``select`` / ``ask`` / ``construct`` / ``federated``.
    wall_seconds:
        End-to-end wall time of the execute call.
    phases:
        Phase name → wall seconds (``match``, ``filter``, ``project``,
        ``distinct``, ``order``, ``slice``, ``aggregate``; federation adds
        ``source_select`` and ``join``).
    strategies:
        Join strategy → ``{"patterns", "rows_in", "rows_out", "seconds"}``
        (``hash-join`` / ``index-nested-loop`` / ``path-scan``; federation
        uses ``bound-join`` / ``bound-join-group`` / ``bound-join-fanout``).
    rows_out:
        Result rows (SELECT/federated), constructed triples (CONSTRUCT),
        or 0/1 (ASK).
    plan_cache_hit:
        Whether the plan came from the prepared-query cache (None when the
        execute did not go through :func:`~repro.sparql.prepared.prepare`).
    decodes:
        ID→term dictionary decodes performed while materializing results.
    bytes_shipped:
        Worker-pool wire bytes attributable to this query (federated
        fan-out; 0 for in-process execution).
    endpoint_requests:
        Endpoint requests issued (federated only).
    """

    __slots__ = (
        "kind",
        "wall_seconds",
        "phases",
        "strategies",
        "rows_out",
        "plan_cache_hit",
        "decodes",
        "bytes_shipped",
        "endpoint_requests",
    )

    def __init__(self, kind: str):
        self.kind = kind
        self.wall_seconds = 0.0
        self.phases: dict[str, float] = {}
        self.strategies: dict[str, dict[str, Any]] = {}
        self.rows_out = 0
        self.plan_cache_hit: bool | None = None
        self.decodes = 0
        self.bytes_shipped = 0.0
        self.endpoint_requests = 0

    def note_phase(self, op: str, seconds: float) -> None:
        self.phases[op] = self.phases.get(op, 0.0) + seconds

    def note_strategy(
        self, strategy: str, rows_in: int, rows_out: int, seconds: float
    ) -> None:
        record = self.strategies.get(strategy)
        if record is None:
            record = self.strategies[strategy] = {
                "patterns": 0, "rows_in": 0, "rows_out": 0, "seconds": 0.0,
            }
        record["patterns"] += 1
        record["rows_in"] += rows_in
        record["rows_out"] += rows_out
        record["seconds"] += seconds

    def to_dict(self) -> dict:
        """JSON-serializable form (slowlog detail, report tooling)."""
        return {
            "kind": self.kind,
            "wall_seconds": self.wall_seconds,
            "phases": dict(self.phases),
            "strategies": {
                name: dict(record) for name, record in self.strategies.items()
            },
            "rows_out": self.rows_out,
            "plan_cache_hit": self.plan_cache_hit,
            "decodes": self.decodes,
            "bytes_shipped": self.bytes_shipped,
            "endpoint_requests": self.endpoint_requests,
        }

    def __repr__(self):
        return (
            f"<QueryStats {self.kind} wall={self.wall_seconds:.6f}s "
            f"rows={self.rows_out} decodes={self.decodes} "
            f"strategies={sorted(self.strategies)}>"
        )


__all__ = [
    "QueryStats",
    "consume_plan_cache_note",
    "disable",
    "enable",
    "enabled",
    "note_plan_cache",
]
