"""Registry snapshot exposition: Prometheus text format (v0.0.4).

:func:`render_prometheus` turns one versioned registry snapshot (see
:meth:`repro.obs.registry.Registry.snapshot`) into the Prometheus text
exposition format:

* dotted instrument names mangle to ``repro_``-prefixed underscore names
  (``sparql.plan_cache.hits`` → ``repro_sparql_plan_cache_hits_total``);
* counters carry the ``_total`` suffix; gauges expose as-is; histograms
  expose cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count``;
  span aggregates expose as a pair of counters labelled by span path;
* label keys are emitted in sorted order and label values escaped per the
  format (``\\``, ``"``, newline), so the rendering is byte-stable for a
  given snapshot.

:func:`validate_exposition` is a minimal line-format parser for the same
subset — it exists so tests can fuzz ``render_prometheus`` output against
an independent reader (HELP/TYPE discipline, name/label/value syntax,
cumulative bucket monotonicity, ``+Inf`` == ``_count``).
"""

from __future__ import annotations

import math
import re

from repro.errors import ObsError
from repro.obs.registry import SNAPSHOT_VERSION

#: Valid exposed metric names (Prometheus data model).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Valid label keys.
_LABEL_KEY_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_MANGLE_RE = re.compile(r"[^a-zA-Z0-9_]")


def mangle_name(name: str, suffix: str = "") -> str:
    """A dotted instrument name as a ``repro_``-prefixed exposed name."""
    mangled = "repro_" + _MANGLE_RE.sub("_", name) + suffix
    if not _NAME_RE.match(mangled):
        raise ObsError(f"cannot expose metric name {name!r} as {mangled!r}")
    return mangled


def escape_label_value(value: str) -> str:
    """Escape a label value per the text format: ``\\``, ``"``, newline."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """One sample value: integral floats print as integers, ``inf`` as
    ``+Inf`` (the ``le`` convention), everything else via ``repr``."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict, extra: tuple[tuple[str, str], ...] = ()) -> str:
    """``{k="v",...}`` with sorted keys and escaped values; "" when empty."""
    pairs = sorted((str(key), str(value)) for key, value in labels.items())
    pairs.extend(extra)
    if not pairs:
        return ""
    for key, _ in pairs:
        if not _LABEL_KEY_RE.match(key):
            raise ObsError(f"cannot expose label key {key!r}")
    inner = ",".join(f'{key}="{escape_label_value(value)}"' for key, value in pairs)
    return "{" + inner + "}"


class _Family:
    """One exposed metric family: HELP + TYPE + its sample lines."""

    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.samples: list[str] = []


def _family(
    families: dict[str, _Family], name: str, kind: str, help_text: str
) -> _Family:
    existing = families.get(name)
    if existing is None:
        existing = families[name] = _Family(name, kind, help_text)
    elif existing.kind != kind:
        raise ObsError(
            f"exposed name collision: {name!r} is both {existing.kind} and {kind}"
        )
    return existing


def render_prometheus(snapshot: dict) -> str:
    """A registry snapshot as Prometheus text exposition (v0.0.4)."""
    version = snapshot.get("format_version")
    if version != SNAPSHOT_VERSION:
        raise ObsError(f"unsupported obs snapshot version: {version!r}")
    families: dict[str, _Family] = {}

    for entry in snapshot.get("counters", ()):
        family = _family(
            families,
            mangle_name(entry["name"], "_total"),
            "counter",
            f"counter {entry['name']}",
        )
        family.samples.append(
            f"{family.name}{_format_labels(entry['labels'])} "
            f"{format_value(entry['value'])}"
        )

    for entry in snapshot.get("gauges", ()):
        family = _family(
            families, mangle_name(entry["name"]), "gauge", f"gauge {entry['name']}"
        )
        family.samples.append(
            f"{family.name}{_format_labels(entry['labels'])} "
            f"{format_value(entry['value'])}"
        )

    for entry in snapshot.get("histograms", ()):
        family = _family(
            families,
            mangle_name(entry["name"]),
            "histogram",
            f"histogram {entry['name']}",
        )
        labels = entry["labels"]
        cumulative = 0
        for boundary, count in zip(entry["boundaries"], entry["counts"]):
            cumulative += count
            le = _format_labels(labels, (("le", format_value(float(boundary))),))
            family.samples.append(
                f"{family.name}_bucket{le} {format_value(cumulative)}"
            )
        inf = _format_labels(labels, (("le", "+Inf"),))
        family.samples.append(
            f"{family.name}_bucket{inf} {format_value(entry['count'])}"
        )
        suffix_labels = _format_labels(labels)
        family.samples.append(
            f"{family.name}_sum{suffix_labels} {format_value(entry['sum'])}"
        )
        family.samples.append(
            f"{family.name}_count{suffix_labels} {format_value(entry['count'])}"
        )

    span_entries = snapshot.get("spans", ())
    if span_entries:
        count_family = _family(
            families, "repro_span_total", "counter", "counter span completions by path"
        )
        seconds_family = _family(
            families,
            "repro_span_seconds_total",
            "counter",
            "counter span wall seconds by path",
        )
        for entry in span_entries:
            labels = _format_labels({"path": entry["path"]})
            count_family.samples.append(
                f"repro_span_total{labels} {format_value(entry['count'])}"
            )
            seconds_family.samples.append(
                f"repro_span_seconds_total{labels} {format_value(entry['total_seconds'])}"
            )

    events = snapshot.get("events")
    if events is not None:
        buffered = _family(
            families, "repro_trace_buffered", "gauge", "gauge buffered trace records"
        )
        buffered.samples.append(
            f"repro_trace_buffered {format_value(len(events.get('records', ())))}"
        )
        dropped = _family(
            families,
            "repro_trace_dropped_total",
            "counter",
            "counter trace ring records dropped",
        )
        dropped.samples.append(
            f"repro_trace_dropped_total {format_value(events.get('dropped', 0))}"
        )

    lines: list[str] = []
    for name in sorted(families):
        family = families[name]
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        # Samples keep their emission order: snapshots list instruments
        # sorted by (name, labels), and histogram buckets ascend by le —
        # already deterministic, and conventional for scrapers.
        lines.extend(family.samples)
    return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------- #
# Minimal exposition validator (the fuzz test's independent reader)
# --------------------------------------------------------------------- #

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)"
    r"(?: (?P<timestamp>-?[0-9]+))?$"
)

_VALUE_RE = re.compile(r"^(?:[+-]?Inf|NaN|-?(?:[0-9]*\.)?[0-9]+(?:[eE][+-]?[0-9]+)?)$")


def _parse_labels(body: str) -> dict[str, str]:
    """Parse a ``k="v",...`` label body honouring value escapes."""
    labels: dict[str, str] = {}
    position = 0
    length = len(body)
    while position < length:
        match = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', body[position:])
        if match is None:
            raise ObsError(f"bad label syntax at {body[position:]!r}")
        key = match.group(1)
        position += match.end()
        value_chars: list[str] = []
        while True:
            if position >= length:
                raise ObsError(f"unterminated label value for {key!r}")
            char = body[position]
            if char == "\\":
                if position + 1 >= length:
                    raise ObsError(f"dangling escape in label value for {key!r}")
                escaped = body[position + 1]
                if escaped == "n":
                    value_chars.append("\n")
                elif escaped in ('"', "\\"):
                    value_chars.append(escaped)
                else:
                    raise ObsError(f"unknown escape \\{escaped} in label {key!r}")
                position += 2
            elif char == '"':
                position += 1
                break
            elif char == "\n":
                raise ObsError(f"raw newline in label value for {key!r}")
            else:
                value_chars.append(char)
                position += 1
        if key in labels:
            raise ObsError(f"duplicate label key {key!r}")
        labels[key] = "".join(value_chars)
        if position < length:
            if body[position] != ",":
                raise ObsError(f"expected ',' between labels at {body[position:]!r}")
            position += 1
    return labels


def _parse_value(text: str) -> float:
    if not _VALUE_RE.match(text):
        raise ObsError(f"bad sample value {text!r}")
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def _base_family(name: str, families: dict[str, str]) -> str | None:
    """The declared family a sample name belongs to, honouring histogram
    ``_bucket``/``_sum``/``_count`` suffixes."""
    if name in families:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if families.get(base) == "histogram":
                return base
    return None


def validate_exposition(text: str) -> int:
    """Parse Prometheus text exposition; returns the number of samples.

    Raises :class:`~repro.errors.ObsError` on any line that is not a valid
    comment, TYPE/HELP declaration, or sample; on samples referencing an
    undeclared family; on non-cumulative histogram buckets; and on
    ``le="+Inf"`` buckets disagreeing with ``_count``.
    """
    families: dict[str, str] = {}
    samples = 0
    buckets: dict[tuple, list[tuple[float, float]]] = {}
    counts: dict[tuple, float] = {}

    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4:
                raise ObsError(f"line {line_number}: malformed {parts[1]} line")
            name = parts[2]
            if not _NAME_RE.match(name):
                raise ObsError(f"line {line_number}: bad metric name {name!r}")
            if parts[1] == "TYPE":
                kind = parts[3]
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ObsError(f"line {line_number}: unknown type {kind!r}")
                if name in families:
                    raise ObsError(f"line {line_number}: duplicate TYPE for {name!r}")
                families[name] = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ObsError(f"line {line_number}: unparseable sample {line!r}")
        name = match.group("name")
        label_body = match.group("labels")
        labels = _parse_labels(label_body) if label_body else {}
        value = _parse_value(match.group("value"))
        family = _base_family(name, families)
        if family is None:
            raise ObsError(f"line {line_number}: sample {name!r} has no TYPE")
        kind = families[family]
        if kind == "counter" and (value < 0 or math.isnan(value)):
            raise ObsError(f"line {line_number}: counter {name!r} value {value}")
        if kind == "histogram":
            identity = (family, tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"
            )))
            if name.endswith("_bucket"):
                le = labels.get("le")
                if le is None:
                    raise ObsError(f"line {line_number}: bucket without le label")
                buckets.setdefault(identity, []).append((_parse_value(le), value))
            elif name.endswith("_count"):
                counts[identity] = value
        samples += 1

    for identity, series in buckets.items():
        series.sort(key=lambda pair: pair[0])
        previous = 0.0
        saw_inf = False
        for le, value in series:
            if value < previous:
                raise ObsError(
                    f"histogram {identity[0]!r}: bucket counts not cumulative"
                )
            previous = value
            if math.isinf(le) and le > 0:
                saw_inf = True
                expected = counts.get(identity)
                if expected is not None and value != expected:
                    raise ObsError(
                        f"histogram {identity[0]!r}: le=\"+Inf\" bucket {value} "
                        f"!= _count {expected}"
                    )
        if not saw_inf:
            raise ObsError(f"histogram {identity[0]!r}: missing le=\"+Inf\" bucket")
    return samples


__all__ = [
    "escape_label_value",
    "format_value",
    "mangle_name",
    "render_prometheus",
    "validate_exposition",
]
