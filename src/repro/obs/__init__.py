"""``repro.obs`` — dependency-free observability for the whole library.

Instrumented code answers "where did the time and the feedback go?" with
four instrument kinds (:class:`Counter`, :class:`Gauge`, :class:`Histogram`,
:class:`Timer`) plus hierarchical :func:`span` timing, all collected in a
:class:`Registry`.

A process-global default registry backs the module-level helpers, so hot
paths instrument themselves in one line with no plumbing::

    from repro import obs

    obs.inc("alex.feedback.processed", verdict="positive")
    with obs.span("explore"):
        ...
    with obs.timer("sparql.query.seconds"):
        ...

Tests (and anything wanting isolation) swap the default atomically::

    with obs.use_registry() as registry:
        run_workload()
        snap = registry.snapshot()      # only this workload's metrics

Snapshots are versioned JSON dicts; :meth:`Registry.merge` folds worker
snapshots into one whole-run view (counters/histograms/spans sum, gauges
last-write-wins). ``obs.dump_json(path)`` / ``load_snapshot(path)`` round-
trip them through files. Naming convention: dotted lowercase
``subsystem.noun.verb`` names (``alex.links.discovered``,
``federation.requests``) with label dimensions as keyword arguments.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.instruments import (
    DEFAULT_BOUNDARIES,
    DEFAULT_LATENCY_BOUNDARIES,
    SNAPSHOT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    Timer,
    quantile_from_buckets,
)
from repro.obs.registry import SNAPSHOT_VERSION, Registry, counter_total, load_snapshot
from repro.obs.spans import Span, SpanAggregate
from repro.obs import accounting, slowlog, trace
from repro.obs.accounting import QueryStats
from repro.obs.export import render_prometheus, validate_exposition
from repro.obs.report import REPORT_SCHEMA, Reporter, load_report
from repro.obs.slowlog import SLOWLOG_SCHEMA, SlowLog
from repro.obs.trace import TRACE_SCHEMA, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BOUNDARIES",
    "DEFAULT_LATENCY_BOUNDARIES",
    "Gauge",
    "Histogram",
    "QueryStats",
    "REPORT_SCHEMA",
    "Registry",
    "Reporter",
    "SLOWLOG_SCHEMA",
    "SNAPSHOT_QUANTILES",
    "SNAPSHOT_VERSION",
    "SlowLog",
    "Span",
    "SpanAggregate",
    "TRACE_SCHEMA",
    "Timer",
    "Tracer",
    "accounting",
    "counter",
    "counter_total",
    "dump_json",
    "gauge",
    "get_registry",
    "histogram",
    "inc",
    "load_report",
    "load_snapshot",
    "merge",
    "observe",
    "quantile_from_buckets",
    "render",
    "render_prometheus",
    "reset",
    "set_gauge",
    "set_registry",
    "slowlog",
    "snapshot",
    "span",
    "timer",
    "trace",
    "use_registry",
    "validate_exposition",
]

_default_registry = Registry("default")


def get_registry() -> Registry:
    """The current process-global registry."""
    return _default_registry


def set_registry(registry: Registry) -> Registry:
    """Replace the global registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


@contextmanager
def use_registry(registry: Registry | None = None):
    """Temporarily swap the global registry (fresh one by default).

    The opt-out for tests: everything instrumented inside the block lands in
    the swapped-in registry, leaving the global one untouched.
    """
    previous = set_registry(registry if registry is not None else Registry("scoped"))
    try:
        yield _default_registry
    finally:
        set_registry(previous)


# --------------------------------------------------------------------- #
# Hot-path helpers (resolve the registry at call time, so use_registry
# redirects already-instrumented code with no re-plumbing)
# --------------------------------------------------------------------- #


def counter(name: str, **labels) -> Counter:
    return _default_registry.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    return _default_registry.gauge(name, **labels)


def histogram(name: str, boundaries: tuple[float, ...] | None = None, **labels) -> Histogram:
    return _default_registry.histogram(name, boundaries, **labels)


def inc(name: str, amount: float = 1, **labels) -> None:
    """Increment the counter ``name`` (created on first use)."""
    _default_registry.counter(name, **labels).inc(amount)


def set_gauge(name: str, value: float, **labels) -> None:
    _default_registry.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels) -> None:
    """Record one observation into the histogram ``name``."""
    _default_registry.histogram(name, **labels).observe(value)


def timer(name: str, **labels) -> Timer:
    """A ``with``-able timer over the latency histogram ``name``."""
    return _default_registry.timer(name, **labels)


def span(name: str) -> Span:
    """A ``with``-able hierarchical span named ``name``."""
    return _default_registry.span(name)


def snapshot() -> dict:
    return _default_registry.snapshot()


def merge(snap: dict, extra_labels: dict | None = None) -> None:
    _default_registry.merge(snap, extra_labels)


def render(top: int | None = None) -> str:
    return _default_registry.render(top=top)


def dump_json(path: str) -> None:
    _default_registry.dump_json(path)


def reset() -> None:
    _default_registry.reset()
