"""``repro.obs.trace`` — structured event tracing (the ``repro-trace/1`` schema).

Where the rest of :mod:`repro.obs` *aggregates* (a million episodes cost two
dict slots), this module *records*: individual, timestamped, attributed
events correlated by trace and span IDs. It exists to answer questions the
aggregates cannot — "why did the engine explore feature F and discover link
L?", "where did this federated query spend its time?" — from a run's
artifacts alone.

Model
-----

* A **trace** is one logical operation (an episode, a query execution). It
  is identified by a 64-bit hex ``trace`` ID and holds a tree of spans.
* A **span** is a timed region inside a trace, with a ``span`` ID and a
  ``parent`` span ID (``None`` for the root). Entering a span when no trace
  is active *starts a new trace* — the head-based sampling decision is made
  exactly there and inherited by everything inside.
* An **event** is a point-in-time record attached to the innermost active
  span (or recorded trace-less when none is active — engines driven outside
  a session still leave an audit trail).

Records are plain dicts::

    {"trace": "9f…", "span": "01…", "parent": null, "name": "alex.episode.run",
     "kind": "span", "t": 0.01324, "dur": 0.00213, "attrs": {...}}

``t`` is a monotonic offset in seconds from the tracer's epoch
(:func:`time.perf_counter` based — immune to wall-clock adjustment), ``dur``
is present on spans only. Event and span names follow the same dotted
``subsystem.noun.verb`` convention as metric names (lint rule R007).

Determinism, sampling, overhead
-------------------------------

IDs come from the tracer's private :class:`random.Random` — seeded tracers
produce identical ID sequences run over run, and the tracer **never touches
any engine RNG**, so enabling tracing cannot change a seeded run's results.
``sample`` < 1.0 keeps that fraction of *traces* (decided once at the root
span; unsampled traces record nothing). With no tracer installed — the
default — every helper is a constant-time no-op returning a shared inert
object; instrumented hot paths fetch :func:`active` once and skip attribute
construction entirely.

The buffer is a bounded ring: once ``capacity`` records exist, the oldest
are evicted and counted in ``dropped`` (never silently).

Composition with :class:`~repro.obs.registry.Registry`
------------------------------------------------------

A tracer is *installed on a registry* (``trace.install()`` targets the
current one). Registry snapshots then carry an ``events`` section, and
``Registry.merge`` folds incoming events in — so multiprocessing workers
(:mod:`repro.core.parallel_mp`) ship their audit trails home with their
metrics.
"""

from __future__ import annotations

import json
import random
import threading
import time
from typing import Any, Iterable

from repro.errors import ObsError

#: Versioned schema tag stamped on payloads and JSONL headers.
TRACE_SCHEMA = "repro-trace/1"

#: Default ring-buffer capacity (records), chosen so a full experiment run
#: fits while a runaway loop cannot exhaust memory.
DEFAULT_CAPACITY = 65536

_ATOMS = (str, int, float, bool, type(None))


def _clean(value: Any) -> Any:
    """Coerce an attribute value to something JSON-serializable."""
    if isinstance(value, _ATOMS):
        return value
    if isinstance(value, dict):
        return {str(key): _clean(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [_clean(item) for item in value]
        if isinstance(value, (set, frozenset)):
            items.sort(key=str)
        return items
    return str(value)


class SpanHandle:
    """Context manager for one trace span; created by :meth:`Tracer.span`.

    Exposes ``trace_id`` / ``span_id`` (``None`` when the span is unsampled
    or tracing is off) so callers can correlate external records — e.g.
    :class:`~repro.errors.FederationError` carries the active trace ID.
    """

    __slots__ = (
        "_tracer", "name", "attrs", "trace_id", "span_id", "parent_id",
        "sampled", "elapsed", "_t0",
    )

    def __init__(self, tracer: "Tracer | None", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self.sampled = False
        self.elapsed: float | None = None
        self._t0 = 0.0

    def __enter__(self) -> "SpanHandle":
        tracer = self._tracer
        if tracer is not None:
            tracer._enter_span(self)
            self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        if tracer is not None:
            self.elapsed = time.perf_counter() - self._t0
            tracer._exit_span(self, error=exc_type.__name__ if exc_type else None)

    def event(self, name: str, **attrs) -> None:
        """Record a point event under this span (no-op when unsampled)."""
        if self._tracer is not None and self.sampled:
            self._tracer._record_event(name, attrs, self.trace_id, self.span_id)


#: Shared inert handle returned by the module helpers when tracing is off.
_NOOP_SPAN = SpanHandle(None, "", {})


class Tracer:
    """A bounded, thread-safe recorder of trace events.

    ``enabled=False`` builds a pure *holder*: it records nothing new but
    still absorbs and exports — the shape :meth:`Registry.merge` uses to
    carry worker events in a registry that never traced locally.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        sample: float = 1.0,
        seed: int | None = None,
        enabled: bool = True,
    ):
        if capacity < 1:
            raise ObsError(f"tracer capacity must be >= 1, got {capacity}")
        if not (0.0 <= sample <= 1.0):
            raise ObsError(f"tracer sample rate must be in [0, 1], got {sample}")
        self.capacity = capacity
        self.sample = sample
        self.seed = seed
        self.enabled = enabled
        self.dropped = 0
        self._records: list[dict] = []
        self._start = 0  # ring-buffer head index into _records
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def _new_id(self) -> str:
        with self._lock:
            return f"{self._rng.getrandbits(64):016x}"

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _stack(self) -> list[SpanHandle]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _append(self, record: dict) -> None:
        with self._lock:
            if len(self._records) - self._start >= self.capacity:
                self._start += 1
                self.dropped += 1
                if self._start > self.capacity:
                    # amortized compaction keeps memory bounded at ~2x capacity
                    self._records = self._records[self._start:]
                    self._start = 0
            self._records.append(record)

    def _enter_span(self, handle: SpanHandle) -> None:
        stack = self._stack()
        if stack:
            top = stack[-1]
            handle.trace_id = top.trace_id
            handle.parent_id = top.span_id
            handle.sampled = top.sampled
        else:
            handle.parent_id = None
            if self.sample >= 1.0:
                handle.sampled = True
            else:
                with self._lock:
                    handle.sampled = self._rng.random() < self.sample
            handle.trace_id = self._new_id() if handle.sampled else None
        handle.span_id = self._new_id() if handle.sampled else None
        stack.append(handle)

    def _exit_span(self, handle: SpanHandle, error: str | None = None) -> None:
        stack = self._stack()
        while stack:  # tolerate exotic unwinding, same as obs spans
            if stack.pop() is handle:
                break
        if not handle.sampled:
            return
        attrs = dict(handle.attrs)
        if error is not None:
            attrs["error"] = error
        self._append({
            "trace": handle.trace_id,
            "span": handle.span_id,
            "parent": handle.parent_id,
            "name": handle.name,
            "kind": "span",
            "t": round(self._now() - (handle.elapsed or 0.0), 9),
            "dur": round(handle.elapsed or 0.0, 9),
            "attrs": _clean(attrs),
        })

    def _record_event(
        self, name: str, attrs: dict, trace_id: str | None, span_id: str | None
    ) -> None:
        self._append({
            "trace": trace_id,
            "span": self._new_id(),
            "parent": span_id,
            "name": name,
            "kind": "event",
            "t": round(self._now(), 9),
            "dur": None,
            "attrs": _clean(attrs),
        })

    # ------------------------------------------------------------------ #
    # Public recording API
    # ------------------------------------------------------------------ #

    def span(self, name: str, **attrs) -> SpanHandle:
        """A ``with``-able span; starts a new trace when none is active."""
        if not self.enabled:
            return _NOOP_SPAN
        return SpanHandle(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a point event under the innermost active span.

        Outside any span the event is recorded trace-less (``trace: null``)
        so direct engine use still leaves an audit trail; inside an
        *unsampled* trace it is dropped with the rest of the trace.
        """
        if not self.enabled:
            return
        stack = self._stack()
        if stack:
            top = stack[-1]
            if top.sampled:
                self._record_event(name, attrs, top.trace_id, top.span_id)
            return
        self._record_event(name, attrs, None, None)

    def current_trace_id(self) -> str | None:
        """The active (sampled) trace's ID on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1].trace_id
        return None

    # ------------------------------------------------------------------ #
    # Buffer access / export
    # ------------------------------------------------------------------ #

    def records(self) -> list[dict]:
        """A copy of the buffered records, oldest first."""
        with self._lock:
            return self._records[self._start:]

    def __len__(self) -> int:
        with self._lock:
            return len(self._records) - self._start

    def clear(self) -> None:
        with self._lock:
            self._records = []
            self._start = 0
            self.dropped = 0

    def payload(self) -> dict:
        """The versioned dict embedded in registry snapshots (``events``)."""
        with self._lock:
            # One locked section so the dropped count stays coherent with
            # the record list it was computed against (the lock is not
            # reentrant — self.records() must not be called from here).
            return {
                "schema": TRACE_SCHEMA,
                "dropped": self.dropped,
                "records": self._records[self._start:],
            }

    def absorb(self, payload: dict) -> None:
        """Fold an exported payload (e.g. a worker's) into this buffer."""
        if payload.get("schema") != TRACE_SCHEMA:
            raise ObsError(f"unsupported trace schema: {payload.get('schema')!r}")
        with self._lock:
            self.dropped += int(payload.get("dropped", 0))
        for record in payload.get("records", ()):
            self._append(record)

    def write_jsonl(self, path: str) -> None:
        """Export as JSONL: one header line, then one record per line."""
        payload = self.payload()
        write_jsonl(path, payload["records"], dropped=payload["dropped"])

    def __repr__(self):
        state = "enabled" if self.enabled else "holder"
        with self._lock:
            count = len(self._records) - self._start
            dropped = self.dropped
        return f"<Tracer {state}: {count} records, {dropped} dropped>"


# --------------------------------------------------------------------- #
# JSONL round-trip
# --------------------------------------------------------------------- #


def write_jsonl(path: str, records: Iterable[dict], dropped: int = 0) -> None:
    """Write trace ``records`` to ``path`` under the ``repro-trace/1`` schema."""
    records = list(records)
    with open(path, "w", encoding="utf-8") as handle:
        header = {"schema": TRACE_SCHEMA, "dropped": dropped, "count": len(records)}
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_jsonl(path: str) -> dict:
    """Read a file written by :func:`write_jsonl`; returns a payload dict.

    Validates the schema tag and the header's record count, so a truncated
    export fails loudly instead of silently replaying a partial trail.
    """
    with open(path, encoding="utf-8") as handle:
        lines = [line for line in (raw.strip() for raw in handle) if line]
    if not lines:
        raise ObsError(f"empty trace file: {path!r}")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("schema") != TRACE_SCHEMA:
        raise ObsError(f"not a {TRACE_SCHEMA} trace file: {path!r}")
    records = [json.loads(line) for line in lines[1:]]
    expected = header.get("count")
    if expected is not None and expected != len(records):
        raise ObsError(
            f"trace file {path!r} is truncated: header says {expected} "
            f"records, found {len(records)}"
        )
    return {
        "schema": TRACE_SCHEMA,
        "dropped": int(header.get("dropped", 0)),
        "records": records,
    }


# --------------------------------------------------------------------- #
# Module-level API over the *current registry's* tracer
# --------------------------------------------------------------------- #

_obs = None


def _registry():
    # Lazy import: repro.obs imports this module at package init.
    global _obs
    if _obs is None:
        from repro import obs as _module

        _obs = _module
    return _obs.get_registry()


def install(
    capacity: int = DEFAULT_CAPACITY,
    sample: float = 1.0,
    seed: int | None = None,
) -> Tracer:
    """Install a fresh tracer on the current registry and return it."""
    tracer = Tracer(capacity=capacity, sample=sample, seed=seed)
    _registry().tracer = tracer
    return tracer


def uninstall() -> Tracer | None:
    """Remove the current registry's tracer (returning it, with its events)."""
    registry = _registry()
    tracer, registry.tracer = registry.tracer, None
    return tracer


def active() -> Tracer | None:
    """The current registry's tracer when it is recording, else ``None``.

    The one-line guard for hot paths::

        tracer = trace.active()
        if tracer is not None:
            tracer.event("alex.link.discover", link=str(link))
    """
    tracer = _registry().tracer
    if tracer is not None and tracer.enabled:
        return tracer
    return None


def span(name: str, **attrs) -> SpanHandle:
    """A span on the active tracer; a shared no-op when tracing is off."""
    tracer = active()
    if tracer is None:
        return _NOOP_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """A point event on the active tracer; no-op when tracing is off."""
    tracer = active()
    if tracer is not None:
        tracer.event(name, **attrs)


def current_trace_id() -> str | None:
    """The active trace ID on this thread, or ``None``."""
    tracer = active()
    if tracer is None:
        return None
    return tracer.current_trace_id()


# --------------------------------------------------------------------- #
# Rendering (the body of ``repro trace show|summary``)
# --------------------------------------------------------------------- #


def _by_trace(records: list[dict]) -> dict[str | None, list[dict]]:
    grouped: dict[str | None, list[dict]] = {}
    for record in records:
        grouped.setdefault(record.get("trace"), []).append(record)
    return grouped


def render_summary(records: list[dict], top: int = 10, dropped: int = 0) -> str:
    """Event counts by name and the slowest spans, as text."""
    lines = []
    traces = _by_trace(records)
    traceless = len(traces.pop(None, []))
    lines.append(
        f"{len(records)} record(s) in {len(traces)} trace(s)"
        + (f" + {traceless} trace-less" if traceless else "")
        + (f", {dropped} dropped" if dropped else "")
    )
    counts: dict[tuple[str, str], int] = {}
    for record in records:
        key = (record.get("kind", "event"), record.get("name", "?"))
        counts[key] = counts.get(key, 0) + 1
    if counts:
        lines.append("events by type:")
        for (kind, name), count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
            lines.append(f"  {kind:<6} {name:<44} {count:>8}")
    spans = [r for r in records if r.get("kind") == "span" and r.get("dur") is not None]
    spans.sort(key=lambda r: -r["dur"])
    if spans:
        lines.append(f"slowest spans (top {min(top, len(spans))}):")
        for record in spans[:top]:
            lines.append(
                f"  {record['name']:<44} {record['dur'] * 1000:>10.3f} ms  "
                f"trace={str(record.get('trace'))[:8]}"
            )
    return "\n".join(lines)


def render_waterfall(
    records: list[dict], trace_id: str | None = None, width: int = 28
) -> str:
    """Per-trace text waterfall: span tree with offset/duration bars, point
    events inline — the replay view of ``repro trace show``."""
    lines: list[str] = []
    grouped = _by_trace(records)
    traceless = grouped.pop(None, [])
    wanted = list(grouped.items())
    if trace_id is not None:
        wanted = [
            (tid, recs) for tid, recs in wanted
            if tid is not None and tid.startswith(trace_id)
        ]
        if not wanted:
            return f"no trace matching {trace_id!r}"
    for tid, trace_records in wanted:
        spans = [r for r in trace_records if r["kind"] == "span"]
        events = [r for r in trace_records if r["kind"] == "event"]
        t0 = min((r["t"] for r in trace_records), default=0.0)
        horizon = max(
            (r["t"] + (r["dur"] or 0.0) for r in trace_records), default=t0
        ) - t0 or 1e-9
        lines.append(
            f"trace {tid}  ({len(spans)} span(s), {len(events)} event(s), "
            f"{horizon * 1000:.3f} ms)"
        )
        children: dict[str | None, list[dict]] = {}
        for record in trace_records:
            children.setdefault(record.get("parent"), []).append(record)
        for bucket in children.values():
            bucket.sort(key=lambda r: (r["t"], r["span"] or ""))

        def emit(record: dict, depth: int) -> None:
            offset = record["t"] - t0
            duration = record["dur"]
            start_col = min(width - 1, int(width * offset / horizon))
            if duration is not None:
                span_cols = max(1, int(width * duration / horizon))
                bar = " " * start_col + "#" * min(span_cols, width - start_col)
                timing = f"{duration * 1000:>9.3f} ms"
            else:
                bar = " " * start_col + "|"
                timing = f"@{offset * 1000:>8.3f} ms"
            bar = bar.ljust(width)
            label = "  " * depth + record["name"]
            attrs = record.get("attrs") or {}
            suffix = ""
            if attrs:
                inner = ", ".join(
                    f"{key}={attrs[key]}" for key in sorted(attrs)
                )
                suffix = f"  {{{inner}}}"
                if len(suffix) > 120:
                    suffix = suffix[:117] + "...}"
            lines.append(f"  {label:<44} {timing} [{bar}]{suffix}")
            for child in children.get(record["span"], ()):
                emit(child, depth + 1)

        for root in children.get(None, ()):
            emit(root, 0)
        lines.append("")
    if traceless:
        lines.append(f"{len(traceless)} trace-less event(s):")
        for record in traceless:
            attrs = record.get("attrs") or {}
            inner = ", ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
            lines.append(f"  @{record['t'] * 1000:>8.3f} ms  {record['name']}  {{{inner}}}")
    return "\n".join(lines).rstrip()
