"""Lightweight hierarchical spans.

A span is a named, timed region of execution. Nesting builds a path:
entering ``span("episode")`` and, inside it, ``span("explore")`` records
wall time under ``"episode"`` and ``"episode/explore"``. Spans are
*aggregated*, not traced: each distinct path keeps one running
``(count, total_seconds)`` pair, so a million episodes cost two dict slots,
not a million trace records.

The active span stack is thread-local; concurrently running threads each
see their own nesting.
"""

from __future__ import annotations

import time


class SpanAggregate:
    """Running totals for one span path."""

    __slots__ = ("path", "count", "total_seconds")

    def __init__(self, path: str):
        self.path = path
        self.count = 0
        self.total_seconds = 0.0

    def add(self, seconds: float, count: int = 1) -> None:
        self.count += count
        self.total_seconds += seconds

    def snapshot(self) -> dict:
        return {"path": self.path, "count": self.count, "total_seconds": self.total_seconds}

    def __repr__(self):
        return f"<SpanAggregate {self.path!r} n={self.count} {self.total_seconds:.6g}s>"


class Span:
    """Context manager for one timed region; created by ``Registry.span``.

    Reentrant per instance is not supported — create a new one per block
    (the registry's ``span(name)`` does exactly that).
    """

    __slots__ = ("_registry", "name", "path", "elapsed", "_started")

    def __init__(self, registry, name: str):
        if not name or "/" in name:
            from repro.errors import ObsError

            raise ObsError(f"span names must be non-empty and '/'-free, got {name!r}")
        self._registry = registry
        self.name = name
        self.path: str | None = None
        self.elapsed: float | None = None
        self._started: float | None = None

    def __enter__(self) -> "Span":
        stack = self._registry._span_stack()
        self.path = stack[-1].path + "/" + self.name if stack else self.name
        stack.append(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._started
        stack = self._registry._span_stack()
        # Tolerate exotic unwinding: pop to (and including) this span.
        while stack:
            if stack.pop() is self:
                break
        self._registry._record_span(self.path, self.elapsed)
