"""Typed instruments: counters, gauges, histograms, and timers.

Instruments are dumb value holders — cheap enough for hot paths (an update
is an attribute add, no locking, no allocation). All bookkeeping that costs
anything (sorting, formatting, schema) happens at snapshot/render time in
:mod:`repro.obs.registry`.

Label sets are frozen at creation: an instrument is identified by its name
plus its sorted ``(key, value)`` label pairs, and the registry hands back
the same object for the same identity.
"""

from __future__ import annotations

import bisect
import time

#: Labels as stored on an instrument: sorted, hashable.
LabelPairs = tuple[tuple[str, str], ...]

#: Default histogram boundaries for untimed value distributions (sizes,
#: fan-outs): roughly log-spaced upper bucket bounds.
DEFAULT_BOUNDARIES: tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)

#: Default boundaries for latency histograms, in seconds (100µs .. 10s).
DEFAULT_LATENCY_BOUNDARIES: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def labels_to_pairs(labels: dict[str, object]) -> LabelPairs:
    """Normalize a labels dict into the sorted pair tuple identity."""
    if not labels:
        return ()
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


#: The quantiles derived into every histogram snapshot (p50/p95/p99).
SNAPSHOT_QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


def quantile_from_buckets(
    boundaries: tuple[float, ...] | list[float],
    counts: list[int],
    q: float,
    minimum: float | None = None,
    maximum: float | None = None,
) -> float | None:
    """Estimate the ``q``-quantile of a bucketed distribution.

    Linear interpolation within the winning bucket (the Prometheus
    ``histogram_quantile`` estimator), computed purely from the merged
    bucket counts so the value is identical however partition snapshots
    were merged (associativity). ``minimum``/``maximum`` clamp the
    estimate to the observed range when known — the overflow bucket has
    no upper bound, so the tracked max is its best edge.
    """
    total = sum(counts)
    if total == 0 or not (0.0 <= q <= 1.0):
        return None
    target = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        cumulative += count
        if cumulative < target:
            continue
        lower = boundaries[index - 1] if index > 0 else (
            minimum if minimum is not None else 0.0
        )
        if index < len(boundaries):
            upper = boundaries[index]
        else:  # overflow bucket: open-ended upper bound
            upper = maximum if maximum is not None else boundaries[-1]
        if upper < lower:
            upper = lower
        inside = target - (cumulative - count)
        value = lower + (upper - lower) * (inside / count)
        if minimum is not None and value < minimum:
            value = minimum
        if maximum is not None and value > maximum:
            value = maximum
        return value
    return maximum  # unreachable for q <= 1, kept for completeness


class Counter:
    """A monotonically increasing count (events, items, requests)."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}

    def __repr__(self):
        return f"<Counter {self.name} {dict(self.labels)} = {self.value}>"


class Gauge:
    """A value that goes up and down (sizes, levels). Last write wins."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}

    def __repr__(self):
        return f"<Gauge {self.name} {dict(self.labels)} = {self.value}>"


class Histogram:
    """A distribution over fixed bucket boundaries.

    ``boundaries`` are *upper* bounds: bucket ``i`` counts observations
    ``<= boundaries[i]``; one overflow bucket catches the rest, so
    ``len(counts) == len(boundaries) + 1``. Boundaries are fixed at
    creation so snapshots from different processes merge bucket-by-bucket.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "boundaries", "counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        labels: LabelPairs = (),
        boundaries: tuple[float, ...] = DEFAULT_BOUNDARIES,
    ):
        self.name = name
        self.labels = labels
        self.boundaries = tuple(boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float | None:
        return self.sum / self.count if self.count else None

    def time(self) -> "Timer":
        """A context manager observing elapsed wall seconds into ``self``."""
        return Timer(self)

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile estimated from this histogram's buckets."""
        return quantile_from_buckets(
            self.boundaries, self.counts, q, minimum=self.min, maximum=self.max
        )

    def snapshot(self) -> dict:
        # p50/p95/p99 are *derived* fields: Registry.merge ignores them and
        # sums raw bucket counts, so merging partition snapshots in any
        # order re-derives identical quantiles (associativity).
        snapshot = {
            "name": self.name,
            "labels": dict(self.labels),
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }
        for key, q in SNAPSHOT_QUANTILES:
            snapshot[key] = self.quantile(q)
        return snapshot

    def __repr__(self):
        return f"<Histogram {self.name} {dict(self.labels)} n={self.count} sum={self.sum:.6g}>"


class Timer:
    """Context manager timing a block into a histogram (seconds).

    The elapsed wall time of the last completed block is kept on
    ``.elapsed`` for callers that also want the raw number.
    """

    __slots__ = ("histogram", "elapsed", "_started")

    def __init__(self, histogram: Histogram):
        self.histogram = histogram
        self.elapsed: float | None = None
        self._started: float | None = None

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._started
        self.histogram.observe(self.elapsed)
