"""Continuous telemetry: a background reporter writing JSONL time series.

A :class:`Reporter` samples a registry on a fixed interval from a daemon
thread, computes per-instrument **deltas and rates** between consecutive
snapshots, and appends one JSON line per sample to a bounded sink file
under the ``repro-report/1`` schema::

    {"schema": "repro-report/1", "interval": 0.5, "registry": "default"}
    {"seq": 1, "elapsed": 0.5, "counters": [...], "gauges": [...], ...}
    {"seq": 2, ...}

The sink is *bounded*: once more than ``max_samples`` samples exist the
file is compacted to the header plus the most recent ``max_samples``
lines, so a long-lived engine can never fill a disk with telemetry.

Ownership: the :class:`~repro.core.engine.AlexEngine` starts a reporter
lazily when ``AlexConfig(report_interval=..., report_path=...)`` asks for
one and stops it from :meth:`~repro.core.engine.AlexEngine.close`; an
``atexit`` hook stops any reporter still running at interpreter exit.
Everything is off by default — no reporter exists, no thread runs, and no
instrument is created unless a reporter was explicitly configured.
"""

from __future__ import annotations

import atexit
import json
import threading
import time
import weakref
from typing import Any, Callable

from repro.errors import ObsError
from repro.obs.instruments import SNAPSHOT_QUANTILES
from repro.obs.registry import Registry

#: Versioned schema tag stamped into every report header line.
REPORT_SCHEMA = "repro-report/1"

#: Default bound on samples kept in the sink file.
DEFAULT_MAX_SAMPLES = 2048


def _identity(entry: dict) -> tuple:
    return (entry["name"], tuple(sorted(entry["labels"].items())))


def build_sample(
    snapshot: dict,
    previous: dict | None,
    elapsed: float | None,
    seq: int,
    wall: float,
) -> dict:
    """One report sample: current values plus deltas/rates vs ``previous``.

    Counters and span aggregates get ``delta`` (increase since the last
    sample; the full value when there is none) and, when ``elapsed`` is a
    positive duration, ``rate`` per second. Gauges are levels and carry the
    value only. Histograms report ``count``/``sum`` deltas plus the
    p50/p95/p99 derived from the *cumulative* buckets.
    """
    previous = previous or {}

    def index(section: str) -> dict[tuple, dict]:
        return {_identity(entry): entry for entry in previous.get(section, ())}

    def flow(value: float, before: dict | None, key: str = "value") -> dict:
        delta = value - (before[key] if before is not None else 0.0)
        out: dict[str, Any] = {"value": value, "delta": delta}
        if elapsed is not None and elapsed > 0:
            out["rate"] = delta / elapsed
        return out

    prior_counters = index("counters")
    counters = [
        {
            "name": entry["name"],
            "labels": entry["labels"],
            **flow(entry["value"], prior_counters.get(_identity(entry))),
        }
        for entry in snapshot.get("counters", ())
    ]
    gauges = [
        {"name": entry["name"], "labels": entry["labels"], "value": entry["value"]}
        for entry in snapshot.get("gauges", ())
    ]
    prior_histograms = index("histograms")
    histograms = []
    for entry in snapshot.get("histograms", ()):
        before = prior_histograms.get(_identity(entry))
        record: dict[str, Any] = {
            "name": entry["name"],
            "labels": entry["labels"],
            "count": entry["count"],
            "sum": entry["sum"],
            "delta_count": entry["count"] - (before["count"] if before else 0),
            "delta_sum": entry["sum"] - (before["sum"] if before else 0.0),
        }
        for key, _ in SNAPSHOT_QUANTILES:
            record[key] = entry.get(key)
        histograms.append(record)
    prior_spans = {
        entry["path"]: entry for entry in previous.get("spans", ())
    }
    spans = []
    for entry in snapshot.get("spans", ()):
        before = prior_spans.get(entry["path"])
        spans.append(
            {
                "path": entry["path"],
                "count": entry["count"],
                "total_seconds": entry["total_seconds"],
                "delta_count": entry["count"] - (before["count"] if before else 0),
                "delta_seconds": entry["total_seconds"]
                - (before["total_seconds"] if before else 0.0),
            }
        )
    return {
        "seq": seq,
        "wall": wall,
        "elapsed": elapsed,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
        "spans": spans,
    }


def render_sample(sample: dict, top: int | None = None) -> str:
    """A report sample as human-readable text (``repro stats --watch``)."""
    lines = [
        f"== report sample seq={sample.get('seq')} "
        f"elapsed={sample.get('elapsed')} =="
    ]

    def suffix(labels: dict) -> str:
        if not labels:
            return ""
        inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return "{" + inner + "}"

    counters = sorted(
        sample.get("counters", ()), key=lambda e: (-e.get("delta", 0), e["name"])
    )
    if top is not None:
        counters = counters[:top]
    if counters:
        lines.append("counters (value, delta/sample, rate/s):")
        for entry in counters:
            rate = entry.get("rate")
            lines.append(
                f"  {entry['name'] + suffix(entry['labels']):<52} "
                f"{entry['value']:>12g} {entry.get('delta', 0):>+10g}"
                + (f" {rate:>10.3g}/s" if rate is not None else "")
            )
    gauges = sorted(sample.get("gauges", ()), key=lambda e: e["name"])
    if top is not None:
        gauges = gauges[:top]
    if gauges:
        lines.append("gauges:")
        for entry in gauges:
            lines.append(
                f"  {entry['name'] + suffix(entry['labels']):<52} "
                f"{entry['value']:>12g}"
            )
    histograms = sorted(
        sample.get("histograms", ()), key=lambda e: (-e.get("delta_count", 0), e["name"])
    )
    if top is not None:
        histograms = histograms[:top]
    if histograms:
        lines.append("histograms (n, Δn, p50/p95/p99):")
        for entry in histograms:
            quantiles = "/".join(
                "-" if entry.get(key) is None else f"{entry[key]:.4g}"
                for key, _ in SNAPSHOT_QUANTILES
            )
            lines.append(
                f"  {entry['name'] + suffix(entry['labels']):<52} "
                f"n={entry['count']} Δ{entry.get('delta_count', 0)} {quantiles}"
            )
    if len(lines) == 1:
        lines.append("(empty sample)")
    return "\n".join(lines)


_live_reporters: "weakref.WeakSet[Reporter]" = weakref.WeakSet()


def _stop_live_reporters() -> None:
    """atexit hook: flush every reporter still running at interpreter exit."""
    for reporter in list(_live_reporters):
        reporter.stop()


atexit.register(_stop_live_reporters)


class Reporter:
    """Samples a registry on an interval into a bounded JSONL sink.

    ``registry`` pins the reporter to one :class:`Registry`; the default
    (``None``) resolves the process-global registry at *each* sample, so
    ``obs.use_registry`` redirects a running reporter just like it
    redirects instrumented code. ``clock`` is injectable for tests.
    """

    def __init__(
        self,
        interval: float,
        path: str,
        registry: Registry | None = None,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        clock: Callable[[], float] = time.monotonic,
    ):
        if interval <= 0:
            raise ObsError(f"report interval must be > 0, got {interval}")
        if not path:
            raise ObsError("report path must be a non-empty file path")
        if max_samples < 1:
            raise ObsError(f"max_samples must be >= 1, got {max_samples}")
        self.interval = interval
        self.path = path
        self.max_samples = max_samples
        self._registry = registry
        self._clock = clock
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._previous: tuple[float, dict] | None = None
        self._seq = 0
        self._lines: list[str] = []
        self._header: str | None = None
        self.last_error: str | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def running(self) -> bool:
        with self._lock:
            thread = self._thread
        return thread is not None and thread.is_alive()

    @property
    def samples_written(self) -> int:
        with self._lock:
            return self._seq

    def start(self) -> "Reporter":
        """Write the header, take the baseline snapshot, start the thread.

        Idempotent: a running reporter is returned unchanged.
        """
        header = json.dumps(
            {
                "schema": REPORT_SCHEMA,
                "interval": self.interval,
                "max_samples": self.max_samples,
                "registry": self._registry_name(),
            },
            sort_keys=True,
        )
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._header = header
            self._lines = []
            self._seq = 0
            thread = threading.Thread(
                target=self._loop, name="repro-obs-reporter", daemon=True
            )
            self._thread = thread
        # File IO and the baseline snapshot happen outside the lock: the
        # sink write blocks, and snapshot() takes the registry lock.
        self._stop_event.clear()
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(header + "\n")
        baseline = (self._clock(), self._resolve_registry().snapshot())
        with self._lock:
            self._previous = baseline
        _live_reporters.add(self)
        thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the thread and flush one final sample. Idempotent — safe to
        call on a never-started or already-stopped reporter."""
        with self._lock:
            thread = self._thread
            self._thread = None
        self._stop_event.set()
        if thread is not None and thread.is_alive():
            thread.join(timeout=timeout)
        if thread is not None:
            # One final sample so even sub-interval runs leave evidence.
            self.sample_now(final=True)
        _live_reporters.discard(self)

    def _registry_name(self) -> str:
        return self._registry.name if self._registry is not None else "default"

    def _resolve_registry(self) -> Registry:
        if self._registry is not None:
            return self._registry
        from repro import obs  # late: repro.obs imports this module

        return obs.get_registry()

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def _loop(self) -> None:
        while not self._stop_event.wait(self.interval):
            try:
                self.sample_now()
            except Exception as error:  # keep the thread alive; surface in health()
                self.last_error = repr(error)

    def sample_now(self, final: bool = False) -> dict:
        """Take one sample immediately and append it to the sink."""
        snapshot = self._resolve_registry().snapshot()
        now = self._clock()
        wall = time.time()
        with self._lock:
            if self._previous is not None:
                previous_time, previous_snapshot = self._previous
                elapsed: float | None = now - previous_time
            else:
                previous_snapshot, elapsed = None, None
            self._seq += 1
            sample = build_sample(snapshot, previous_snapshot, elapsed, self._seq, wall)
            if final:
                sample["final"] = True
            self._previous = (now, snapshot)
            line = json.dumps(sample, sort_keys=True)
            self._lines.append(line)
            if len(self._lines) <= self.max_samples:
                mode, text = "a", line + "\n"
            else:
                self._lines = self._lines[-self.max_samples:]
                mode = "w"
                text = "\n".join([self._header or "", *self._lines]) + "\n"
        # Sink IO outside the lock: a slow disk must not stall sampling
        # callers. The only concurrent writers are the reporter thread and
        # stop()'s final sample, and stop() joins the thread first.
        with open(self.path, mode, encoding="utf-8") as handle:
            handle.write(text)
        return sample

    def __repr__(self):
        state = "running" if self.running else "stopped"
        return (
            f"<Reporter {self.path!r} interval={self.interval} "
            f"{state} samples={self.samples_written}>"
        )


def load_report(path: str) -> dict:
    """Read a report sink: ``{"header": ..., "samples": [...]}``, validated."""
    with open(path, encoding="utf-8") as handle:
        lines = [line for line in handle.read().splitlines() if line.strip()]
    if not lines:
        raise ObsError(f"empty report file: {path!r}")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("schema") != REPORT_SCHEMA:
        raise ObsError(f"not a {REPORT_SCHEMA} report: {path!r}")
    samples = []
    for index, line in enumerate(lines[1:], start=2):
        sample = json.loads(line)
        if not isinstance(sample, dict) or "seq" not in sample:
            raise ObsError(f"{path!r} line {index}: not a report sample")
        samples.append(sample)
    return {"header": header, "samples": samples}


__all__ = [
    "DEFAULT_MAX_SAMPLES",
    "REPORT_SCHEMA",
    "Reporter",
    "build_sample",
    "load_report",
    "render_sample",
]
