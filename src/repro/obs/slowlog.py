"""A bounded slow-operation log for queries and feedback episodes.

Off by default: no log exists until :func:`configure` installs one, so the
hot paths pay exactly one ``slowlog.active()`` check (the same guarded
pattern as :func:`repro.obs.trace.active`, accepted by the ALEX-C031
analyzer rule). When active, operations whose wall time reaches the
configured ``threshold`` are recorded — with their
:class:`~repro.obs.accounting.QueryStats` breakdown when per-query
accounting is also enabled — into a bounded ring (oldest entries fall
out), renderable by ``repro slowlog`` and flushed to JSON by
:meth:`~repro.core.engine.AlexEngine.close`.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any

from repro.errors import ObsError

#: Versioned schema tag for flushed slowlog payloads.
SLOWLOG_SCHEMA = "repro-slowlog/1"

#: Default ring capacity.
DEFAULT_CAPACITY = 256


class SlowLog:
    """Threshold + bounded ring of slow-operation entries (thread-safe)."""

    def __init__(
        self,
        threshold: float = 0.0,
        capacity: int = DEFAULT_CAPACITY,
        path: str | None = None,
    ):
        if threshold < 0:
            raise ObsError(f"slowlog threshold must be >= 0, got {threshold}")
        if capacity < 1:
            raise ObsError(f"slowlog capacity must be >= 1, got {capacity}")
        self.threshold = threshold
        self.capacity = capacity
        #: Default flush destination (``flush()``); None keeps it in memory.
        self.path = path
        self._lock = threading.Lock()
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._recorded = 0

    def record(
        self,
        kind: str,
        name: str,
        seconds: float,
        detail: dict[str, Any] | None = None,
    ) -> bool:
        """Record one operation if it reached the threshold.

        ``kind`` is the operation class (``query``, ``federated``,
        ``episode``); ``name`` identifies the instance (query text, episode
        tag); ``detail`` is any JSON-serializable breakdown (typically
        ``QueryStats.to_dict()``). Returns whether an entry was kept.
        """
        if seconds < self.threshold:
            return False
        with self._lock:
            self._recorded += 1
            entry = {"seq": self._recorded, "kind": kind, "name": name,
                     "seconds": seconds}
            if detail is not None:
                entry["detail"] = detail
            self._entries.append(entry)
        return True

    def entries(self) -> list[dict]:
        """The retained entries, oldest first (copies)."""
        with self._lock:
            return [dict(entry) for entry in self._entries]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def recorded(self) -> int:
        """Total entries ever recorded (including ones the ring evicted)."""
        with self._lock:
            return self._recorded

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def to_payload(self) -> dict:
        with self._lock:
            return {
                "schema": SLOWLOG_SCHEMA,
                "threshold": self.threshold,
                "capacity": self.capacity,
                "recorded": self._recorded,
                "entries": [dict(entry) for entry in self._entries],
            }

    def flush(self, path: str | None = None) -> str | None:
        """Write the payload as JSON to ``path`` (or the configured default).

        A no-op returning None when neither is set — flushing an in-memory
        slowlog must be safe to call unconditionally (engine close does).
        """
        target = path if path is not None else self.path
        if target is None:
            return None
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(self.to_payload(), handle, indent=1, sort_keys=True)
        return target

    def render(self, top: int | None = None) -> str:
        """Slowest-first text table of the retained entries."""
        entries = sorted(
            self.entries(), key=lambda entry: (-entry["seconds"], entry["seq"])
        )
        if top is not None:
            entries = entries[:top]
        lines = [
            f"== slowlog (threshold {self.threshold:g}s, "
            f"{self.recorded} recorded, {len(self)} retained) =="
        ]
        if not entries:
            lines.append("(no slow operations recorded)")
        for entry in entries:
            name = entry["name"].replace("\n", " ")
            if len(name) > 72:
                name = name[:69] + "..."
            line = f"  {entry['seconds']*1000:9.3f}ms  {entry['kind']:<10} {name}"
            detail = entry.get("detail")
            if detail:
                hints = []
                for key in ("rows_out", "decodes", "plan_cache_hit",
                            "endpoint_requests", "bytes_shipped"):
                    value = detail.get(key)
                    if value not in (None, 0, 0.0):
                        hints.append(f"{key}={value}")
                if hints:
                    line += "  [" + " ".join(hints) + "]"
            lines.append(line)
        return "\n".join(lines)

    def __repr__(self):
        return (
            f"<SlowLog threshold={self.threshold:g}s retained={len(self)}"
            f"/{self.capacity}>"
        )


#: The installed slowlog; None means disabled (the hot-path fast check).
_active: SlowLog | None = None


def configure(
    threshold: float = 0.0,
    capacity: int = DEFAULT_CAPACITY,
    path: str | None = None,
) -> SlowLog:
    """Install (and return) a fresh slowlog; replaces any previous one.

    ``threshold=0.0`` records every timed operation — useful for audits;
    raise it to keep only genuinely slow ones.
    """
    global _active
    _active = SlowLog(threshold=threshold, capacity=capacity, path=path)
    return _active


def disable() -> SlowLog | None:
    """Uninstall the slowlog; returns it (entries intact) or None."""
    global _active
    previous = _active
    _active = None
    return previous


def active() -> SlowLog | None:
    """The installed slowlog, or None — the one-check hot-path guard."""
    return _active


__all__ = [
    "DEFAULT_CAPACITY",
    "SLOWLOG_SCHEMA",
    "SlowLog",
    "active",
    "configure",
    "disable",
]
