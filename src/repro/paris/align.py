"""Iterative probabilistic instance alignment (simplified PARIS).

The fixpoint alternates two estimates, exactly in the spirit of the
original algorithm (relation alignment ↔ instance equivalence), restricted
to literal evidence:

1. **Instance equivalence.** For a candidate pair (x, y), every pair of
   attribute values with similarity ≥ τ contributes independent evidence
   weighted by the relations' inverse functionality and the current
   relation-alignment probability::

       P(x ≡ y) = 1 − ∏ (1 − align(r1, r2) · max(ifun(r1), ifun(r2)) · sim)

2. **Relation alignment.** ``align(r1, r2)`` is re-estimated as the
   equivalence-weighted fraction of r1-statements whose value is matched by
   an r2-statement on the equivalent entity.

Candidate pairs come from token blocking, so the loop is near-linear in
practice. The result is a scored :class:`~repro.links.LinkSet`; the paper
keeps links with score > 0.95 as ALEX's starting candidates.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import LinkingError
from repro.features.blocking import blocked_pairs
from repro.links import Link, LinkSet
from repro.paris.model import RelationStatistics
from repro.rdf.entity import Entity, entities_of
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef
from repro.similarity.generic import object_similarity

#: Value-match threshold for evidence (high: PARIS uses shared *values*).
DEFAULT_EVIDENCE_TAU = 0.8

#: Initial relation alignment before any equivalence evidence exists.
_INITIAL_ALIGNMENT = 0.5


class ParisAligner:
    """Runs the simplified PARIS fixpoint between two graphs."""

    def __init__(
        self,
        left: Graph,
        right: Graph,
        evidence_tau: float = DEFAULT_EVIDENCE_TAU,
        iterations: int = 3,
    ):
        if iterations < 1:
            raise LinkingError(f"iterations must be >= 1, got {iterations}")
        self.left = left
        self.right = right
        self.evidence_tau = evidence_tau
        self.iterations = iterations
        self._left_stats = RelationStatistics(left)
        self._right_stats = RelationStatistics(right)
        self._alignment: dict[tuple[URIRef, URIRef], float] = {}

    # ------------------------------------------------------------------ #

    def run(self, mutual_best: bool = True) -> LinkSet:
        """Execute the fixpoint and return scored links.

        With ``mutual_best=True`` (PARIS's maximal assignment) each entity
        keeps only its reciprocal best match; with ``mutual_best=False``
        every scored candidate pair is returned — thresholding such a raw
        set at a permissive score reproduces the low-precision/high-recall
        starting condition of the paper's Figure 2(b).
        """
        left_entities = list(entities_of(self.left))
        right_entities = list(entities_of(self.right))
        candidates = list(blocked_pairs(left_entities, right_entities))
        if not candidates:
            return LinkSet(name="paris")

        evidence = self._collect_evidence(candidates)
        equivalence: dict[Link, float] = {}
        for _ in range(self.iterations):
            equivalence = self._estimate_equivalence(evidence)
            self._update_alignment(evidence, equivalence)
        if mutual_best:
            return self._assign(equivalence)
        out = LinkSet(name="paris")
        for link, probability in equivalence.items():
            out.add(link, probability)
        return out

    # ------------------------------------------------------------------ #

    def _collect_evidence(
        self, candidates: list[tuple[Entity, Entity]]
    ) -> dict[Link, list[tuple[URIRef, URIRef, float]]]:
        """Per candidate pair, the list of (r1, r2, sim) value matches ≥ τ."""
        evidence: dict[Link, list[tuple[URIRef, URIRef, float]]] = {}
        for left_entity, right_entity in candidates:
            matches: list[tuple[URIRef, URIRef, float]] = []
            for r1, objects1 in left_entity.attributes.items():
                for r2, objects2 in right_entity.attributes.items():
                    best = 0.0
                    for o1 in objects1:
                        for o2 in objects2:
                            score = object_similarity(o1, o2)
                            if score > best:
                                best = score
                    if best >= self.evidence_tau:
                        matches.append((r1, r2, best))
            if matches:
                evidence[Link(left_entity.uri, right_entity.uri)] = matches
        return evidence

    def _alignment_of(self, r1: URIRef, r2: URIRef) -> float:
        return self._alignment.get((r1, r2), _INITIAL_ALIGNMENT)

    def _estimate_equivalence(
        self, evidence: dict[Link, list[tuple[URIRef, URIRef, float]]]
    ) -> dict[Link, float]:
        equivalence: dict[Link, float] = {}
        for link, matches in evidence.items():
            survival = 1.0
            for r1, r2, sim in matches:
                identifying = max(
                    self._left_stats.inverse_functionality(r1),
                    self._right_stats.inverse_functionality(r2),
                )
                weight = self._alignment_of(r1, r2) * identifying * sim
                survival *= 1.0 - min(0.999999, weight)
            equivalence[link] = 1.0 - survival
        return equivalence

    def _update_alignment(
        self,
        evidence: dict[Link, list[tuple[URIRef, URIRef, float]]],
        equivalence: dict[Link, float],
    ) -> None:
        support: dict[tuple[URIRef, URIRef], float] = defaultdict(float)
        normalizer: dict[tuple[URIRef, URIRef], float] = defaultdict(float)
        for link, matches in evidence.items():
            probability = equivalence.get(link, 0.0)
            for r1, r2, sim in matches:
                # P-weighted agreement over all value matches of (r1, r2):
                # relation pairs that co-occur mostly on equivalent entities
                # converge to alignment ~1; promiscuous pairs (shared cities,
                # categories) are dragged down by their non-equivalent
                # co-occurrences.
                support[(r1, r2)] += probability * sim
                normalizer[(r1, r2)] += sim
        self._alignment = {
            key: min(1.0, support[key] / normalizer[key])
            for key in support
            if normalizer[key] > 0
        }

    def _assign(self, equivalence: dict[Link, float]) -> LinkSet:
        """Mutual-best assignment: keep (x, y) when y is x's best match and
        x is y's best match (PARIS's maximal assignment, simplified)."""
        best_for_left: dict[URIRef, tuple[float, Link]] = {}
        best_for_right: dict[URIRef, tuple[float, Link]] = {}
        for link, probability in equivalence.items():
            key = (probability, link)
            current_left = best_for_left.get(link.left)
            if current_left is None or key > current_left:
                best_for_left[link.left] = key
            current_right = best_for_right.get(link.right)
            if current_right is None or key > current_right:
                best_for_right[link.right] = key
        out = LinkSet(name="paris")
        for left, (probability, link) in best_for_left.items():
            if best_for_right.get(link.right, (0.0, None))[1] == link:
                out.add(link, probability)
        return out

    def relation_alignment(self) -> dict[tuple[URIRef, URIRef], float]:
        """The final relation-alignment estimates (diagnostics/tests)."""
        return dict(self._alignment)


def paris_links(
    left: Graph,
    right: Graph,
    score_threshold: float = 0.95,
    evidence_tau: float = DEFAULT_EVIDENCE_TAU,
    iterations: int = 3,
    mutual_best: bool = True,
) -> LinkSet:
    """Run PARIS and keep links scoring above ``score_threshold``.

    ``score_threshold=0.95`` with ``mutual_best=True`` is the paper's
    default for generating ALEX's initial candidate links; lowering the
    threshold (and disabling the assignment) trades precision for recall —
    Figure 2(b)'s starting condition.
    """
    aligner = ParisAligner(left, right, evidence_tau=evidence_tau, iterations=iterations)
    scored = aligner.run(mutual_best=mutual_best)
    return scored.filter_by_score(score_threshold)
