"""Statistics underlying PARIS: relation functionality and value evidence.

PARIS (Suchanek, Abiteboul, Senellart; PVLDB 5(3), 2011) scores entity
equivalence from shared attribute values, weighted by how *identifying* the
attribute is. The key quantities are the functionality and inverse
functionality of each relation:

* ``functionality(r) = #distinct subjects of r / #triples of r`` — close to 1
  when each subject has a single value (e.g. birth date).
* ``inverse_functionality(r) = #distinct objects of r / #triples of r`` —
  close to 1 when a value identifies its subject (e.g. a name shared by one
  entity); low for non-identifying attributes (e.g. ``rdf:type``).

Sharing a value of a highly inverse-functional relation is strong evidence
that two entities are the same individual.
"""

from __future__ import annotations

from collections import defaultdict

from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, URIRef
from repro.similarity.strings import normalize, tokens


class RelationStatistics:
    """Per-relation (inverse) functionality for one graph."""

    def __init__(self, graph: Graph):
        triples_per_relation: dict[URIRef, int] = defaultdict(int)
        subjects_per_relation: dict[URIRef, set] = defaultdict(set)
        objects_per_relation: dict[URIRef, set] = defaultdict(set)
        for triple in graph.triples():
            triples_per_relation[triple.predicate] += 1
            subjects_per_relation[triple.predicate].add(triple.subject)
            objects_per_relation[triple.predicate].add(triple.object)
        self._functionality: dict[URIRef, float] = {}
        self._inverse_functionality: dict[URIRef, float] = {}
        for relation, count in triples_per_relation.items():
            self._functionality[relation] = len(subjects_per_relation[relation]) / count
            self._inverse_functionality[relation] = len(objects_per_relation[relation]) / count

    def functionality(self, relation: URIRef) -> float:
        return self._functionality.get(relation, 0.0)

    def inverse_functionality(self, relation: URIRef) -> float:
        return self._inverse_functionality.get(relation, 0.0)

    def relations(self) -> list[URIRef]:
        return sorted(self._functionality, key=lambda r: r.value)


def literal_key(literal: Literal) -> str:
    """Normalization used for exact-value evidence: case/space-folded text."""
    return normalize(literal.lexical)


class ValueIndex:
    """Index from normalized literal values to the (subject, relation) pairs
    carrying them — the shared-value evidence generator."""

    def __init__(self, graph: Graph):
        self._by_value: dict[str, list[tuple]] = defaultdict(list)
        for triple in graph.triples():
            if isinstance(triple.object, Literal):
                key = literal_key(triple.object)
                if key:
                    self._by_value[key].append((triple.subject, triple.predicate, triple.object))

    def carriers(self, literal: Literal) -> list[tuple]:
        """All (subject, relation, object) carrying a value equal (after
        normalization) to ``literal``."""
        return self._by_value.get(literal_key(literal), [])

    def values(self) -> list[str]:
        return sorted(self._by_value)

    def __len__(self) -> int:
        return len(self._by_value)
