"""Simplified PARIS: probabilistic instance alignment for initial links."""

from repro.paris.align import DEFAULT_EVIDENCE_TAU, ParisAligner, paris_links
from repro.paris.model import RelationStatistics, ValueIndex, literal_key

__all__ = [
    "DEFAULT_EVIDENCE_TAU",
    "ParisAligner",
    "RelationStatistics",
    "ValueIndex",
    "literal_key",
    "paris_links",
]
