"""Link-quality metrics: precision, recall, F-measure (Section 7.1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.links import Link, LinkSet


@dataclass(frozen=True)
class Quality:
    """Precision/recall/F of a candidate set against a ground truth."""

    precision: float
    recall: float
    true_positives: int
    candidate_count: int
    ground_truth_count: int

    @property
    def f_measure(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)

    def as_row(self) -> tuple[float, float, float]:
        """The (precision, recall, f_measure) triple for tabulation."""
        return (self.precision, self.recall, self.f_measure)

    def __str__(self):
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F={self.f_measure:.3f} "
            f"(|C|={self.candidate_count}, |G|={self.ground_truth_count})"
        )


def evaluate_links(candidates: LinkSet | Iterable[Link], ground_truth: LinkSet | Iterable[Link]) -> Quality:
    """P = |C∩G|/|C|, R = |C∩G|/|G| over two link collections.

    Empty candidate sets score precision 0 by convention (nothing asserted,
    nothing correct); empty ground truth scores recall 0 (nothing to find
    signals a misconfigured experiment rather than success).
    """
    candidate_set = set(candidates)
    truth_set = set(ground_truth)
    true_positives = len(candidate_set & truth_set)
    precision = true_positives / len(candidate_set) if candidate_set else 0.0
    recall = true_positives / len(truth_set) if truth_set else 0.0
    return Quality(
        precision=precision,
        recall=recall,
        true_positives=true_positives,
        candidate_count=len(candidate_set),
        ground_truth_count=len(truth_set),
    )


def new_correct_links(
    initial: LinkSet | Iterable[Link],
    final: LinkSet | Iterable[Link],
    ground_truth: LinkSet | Iterable[Link],
) -> set[Link]:
    """Correct links in ``final`` that were absent from ``initial`` — the
    paper's "new links discovered by ALEX" counts."""
    initial_set = set(initial)
    truth_set = set(ground_truth)
    return {link for link in final if link in truth_set and link not in initial_set}
