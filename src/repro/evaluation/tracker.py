"""Per-episode quality tracking — the data behind every figure.

A :class:`QualityTracker` hooks into a
:class:`~repro.feedback.session.FeedbackSession` episode callback and records
the quality of the candidate links after each policy-evaluation /
policy-improvement iteration, exactly as the paper measures ("we perform
this comparison after each episode of feedback"). Episode 0 is the initial
(pre-feedback) state, matching the x-axes of Figures 2-4 and 7-11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.episode import EpisodeStats
from repro.evaluation.metrics import Quality, evaluate_links
from repro.links import Link, LinkSet


@dataclass
class EpisodeRecord:
    """One row of a quality curve."""

    episode: int
    quality: Quality
    negative_fraction: float = 0.0
    links_discovered: int = 0
    links_removed: int = 0
    rollbacks: int = 0

    @property
    def precision(self) -> float:
        """Precision of this episode's candidate links."""
        return self.quality.precision

    @property
    def recall(self) -> float:
        """Recall of this episode's candidate links."""
        return self.quality.recall

    @property
    def f_measure(self) -> float:
        """F-measure of this episode's candidate links."""
        return self.quality.f_measure


class QualityTracker:
    """Records one :class:`EpisodeRecord` per episode boundary."""

    def __init__(self, ground_truth: LinkSet | Iterable[Link]):
        self.ground_truth = (
            ground_truth if isinstance(ground_truth, LinkSet) else LinkSet(ground_truth)
        )
        self.records: list[EpisodeRecord] = []

    def record_initial(self, candidates: LinkSet | Iterable[Link]) -> EpisodeRecord:
        """Record the episode-0 (pre-feedback) quality."""
        record = EpisodeRecord(episode=0, quality=evaluate_links(candidates, self.ground_truth))
        self.records.append(record)
        return record

    def on_episode_end(self, stats: EpisodeStats, candidates: LinkSet) -> EpisodeRecord:
        """Session callback: evaluate quality after an episode."""
        record = EpisodeRecord(
            episode=stats.index,
            quality=evaluate_links(candidates, self.ground_truth),
            negative_fraction=stats.negative_fraction,
            links_discovered=stats.links_discovered,
            links_removed=stats.links_removed,
            rollbacks=stats.rollbacks,
        )
        self.records.append(record)
        return record

    # -- series accessors (figure y-axes) ------------------------------- #

    def episodes(self) -> list[int]:
        """The x-axis: episode indices including episode 0."""
        return [record.episode for record in self.records]

    def precision_series(self) -> list[float]:
        """Per-episode precision values."""
        return [record.precision for record in self.records]

    def recall_series(self) -> list[float]:
        """Per-episode recall values."""
        return [record.recall for record in self.records]

    def f_measure_series(self) -> list[float]:
        """Per-episode F-measure values."""
        return [record.f_measure for record in self.records]

    def negative_feedback_series(self) -> list[float]:
        """Percent of negative feedback per episode (skips episode 0)."""
        return [100.0 * record.negative_fraction for record in self.records if record.episode > 0]

    @property
    def final(self) -> EpisodeRecord:
        """The most recent episode record."""
        if not self.records:
            raise ValueError("tracker has no records yet")
        return self.records[-1]

    def __len__(self) -> int:
        return len(self.records)
