"""Plain-text charts: sparklines and line plots for quality curves.

The benchmark harness prints per-episode tables; these helpers add an
at-a-glance visual rendering so the figure shape (the reproduction target)
is visible directly in terminal output, without plotting dependencies.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], low: float = 0.0, high: float = 1.0) -> str:
    """A one-line unicode sparkline of ``values`` scaled to [low, high]."""
    if not values:
        return ""
    span = high - low
    if span <= 0:
        raise ValueError("high must exceed low")
    chars = []
    top = len(_SPARK_LEVELS) - 1
    for value in values:
        scaled = (min(max(value, low), high) - low) / span
        chars.append(_SPARK_LEVELS[round(scaled * top)])
    return "".join(chars)


def ascii_plot(
    series: Mapping[str, Sequence[float]],
    height: int = 10,
    low: float = 0.0,
    high: float = 1.0,
) -> str:
    """A multi-series character plot with a y-axis.

    Each series gets a marker (its label's first letter); collisions render
    as ``*``. Intended for the 0..1 quality curves of the figures.
    """
    if height < 2:
        raise ValueError("height must be >= 2")
    width = max((len(values) for values in series.values()), default=0)
    if width == 0:
        return "(no data)"
    span = high - low
    rows = [[" "] * width for _ in range(height)]
    for label, values in series.items():
        marker = (label or "?")[0]
        for x, value in enumerate(values):
            scaled = (min(max(value, low), high) - low) / span
            y = height - 1 - round(scaled * (height - 1))
            rows[y][x] = "*" if rows[y][x] not in (" ", marker) else marker
    lines = []
    for index, row in enumerate(rows):
        level = high - span * index / (height - 1)
        lines.append(f"{level:5.2f} |" + "".join(row))
    lines.append(" " * 6 + "+" + "-" * width)
    legend = "  ".join(f"{(label or '?')[0]}={label}" for label in series)
    lines.append(" " * 7 + legend)
    return "\n".join(lines)


def quality_sparklines(
    precision: Sequence[float], recall: Sequence[float], f_measure: Sequence[float]
) -> str:
    """Three labelled sparklines — the compact form of a quality figure."""
    return "\n".join(
        (
            f"P {sparkline(precision)}",
            f"R {sparkline(recall)}",
            f"F {sparkline(f_measure)}",
        )
    )
