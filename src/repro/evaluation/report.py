"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures plot;
these helpers keep the formatting consistent across all benches.
"""

from __future__ import annotations

from typing import Sequence

from repro.evaluation.tracker import QualityTracker


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """A fixed-width text table with a separator under the header."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def quality_curve_table(tracker: QualityTracker, title: str = "") -> str:
    """The per-episode P/R/F table behind Figures 2-4, 7-9."""
    rows = [
        (record.episode, record.precision, record.recall, record.f_measure)
        for record in tracker.records
    ]
    return format_table(("episode", "precision", "recall", "f-measure"), rows, title)


def series_table(
    x_label: str,
    x_values: Sequence,
    series: dict[str, Sequence[float]],
    title: str = "",
) -> str:
    """Multiple named series against a shared x-axis (Figures 6, 10, 11)."""
    headers = [x_label, *series.keys()]
    rows = []
    for index, x_value in enumerate(x_values):
        row = [x_value]
        for values in series.values():
            row.append(values[index] if index < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, title)
