"""Exporting experiment results to CSV and JSON.

A reproduction is only useful if its numbers can leave the terminal:
these helpers serialize a :class:`~repro.evaluation.tracker.QualityTracker`
(or several, as a labelled family) for external plotting or archival.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Mapping

from repro.evaluation.tracker import QualityTracker

_FIELDS = (
    "episode",
    "precision",
    "recall",
    "f_measure",
    "negative_fraction",
    "links_discovered",
    "links_removed",
    "rollbacks",
    "candidate_count",
    "true_positives",
)


def tracker_rows(tracker: QualityTracker) -> list[dict]:
    """One dict per episode record, with the standard field set."""
    rows = []
    for record in tracker.records:
        rows.append(
            {
                "episode": record.episode,
                "precision": record.precision,
                "recall": record.recall,
                "f_measure": record.f_measure,
                "negative_fraction": record.negative_fraction,
                "links_discovered": record.links_discovered,
                "links_removed": record.links_removed,
                "rollbacks": record.rollbacks,
                "candidate_count": record.quality.candidate_count,
                "true_positives": record.quality.true_positives,
            }
        )
    return rows


def tracker_to_csv(tracker: QualityTracker, label: str | None = None) -> str:
    """Render a tracker as CSV text (with an optional leading label column)."""
    buffer = io.StringIO()
    fields = (("label",) if label is not None else ()) + _FIELDS
    writer = csv.DictWriter(buffer, fieldnames=fields, lineterminator="\n")
    writer.writeheader()
    for row in tracker_rows(tracker):
        if label is not None:
            row = {"label": label, **row}
        writer.writerow(row)
    return buffer.getvalue()


def trackers_to_csv(trackers: Mapping[str, QualityTracker]) -> str:
    """Several labelled trackers as one long-format CSV."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=("label",) + _FIELDS, lineterminator="\n")
    writer.writeheader()
    for label, tracker in trackers.items():
        for row in tracker_rows(tracker):
            writer.writerow({"label": label, **row})
    return buffer.getvalue()


def tracker_to_json(tracker: QualityTracker, label: str | None = None) -> str:
    """Render a tracker as a JSON document."""
    payload: dict = {"episodes": tracker_rows(tracker)}
    if label is not None:
        payload["label"] = label
    payload["ground_truth_count"] = len(tracker.ground_truth)
    return json.dumps(payload, indent=1, sort_keys=True)


def write_csv(tracker: QualityTracker, path: str, label: str | None = None) -> None:
    """Write :func:`tracker_to_csv` output to ``path``."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(tracker_to_csv(tracker, label))
