"""Link-quality metrics, per-episode tracking, text reporting, and export."""

from repro.evaluation.charts import ascii_plot, quality_sparklines, sparkline
from repro.evaluation.export import (
    tracker_rows,
    tracker_to_csv,
    tracker_to_json,
    trackers_to_csv,
    write_csv,
)
from repro.evaluation.metrics import Quality, evaluate_links, new_correct_links
from repro.evaluation.report import format_table, quality_curve_table, series_table
from repro.evaluation.tracker import EpisodeRecord, QualityTracker

__all__ = [
    "EpisodeRecord",
    "Quality",
    "QualityTracker",
    "ascii_plot",
    "evaluate_links",
    "format_table",
    "new_correct_links",
    "quality_curve_table",
    "quality_sparklines",
    "series_table",
    "sparkline",
    "tracker_rows",
    "tracker_to_csv",
    "tracker_to_json",
    "trackers_to_csv",
    "write_csv",
]
