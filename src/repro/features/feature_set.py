"""Feature sets: the state representation of Section 4.1.

A *feature* is a pair of predicates ``(p1, p2)`` — one from each dataset —
and its *value* is the similarity score of the corresponding attribute
values. The *state feature set* of a link keeps, for every predicate of the
entity with more attributes, its best-matching predicate on the other side
(the "maximum value for each row … or each column" rule), after discarding
scores below the threshold θ.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.errors import FeatureSpaceError
from repro.rdf.entity import Entity
from repro.rdf.terms import URIRef
from repro.similarity.generic import best_object_similarity
from repro.similarity.prepared import (
    PreparedEntity,
    _best_cache,
    _best_uncached,
    _stats,
    best_prepared_similarity,
)

#: A feature key: (predicate from dataset 1, predicate from dataset 2).
FeatureKey = tuple[URIRef, URIRef]

#: Default feature-score threshold θ (paper Section 6.1).
DEFAULT_THETA = 0.3


class FeatureSet(Mapping[FeatureKey, float]):
    """An immutable mapping from feature keys to similarity scores in (0, 1]."""

    __slots__ = ("_features", "_hash")

    def __init__(self, features: Mapping[FeatureKey, float]):
        for key, score in features.items():
            if not (0.0 <= score <= 1.0):
                raise FeatureSpaceError(f"feature score out of range for {key}: {score}")
        self._features = dict(features)
        self._hash: int | None = None

    def __reduce__(self):  # slots + lazy hash need explicit pickling
        return (FeatureSet, (self._features,))

    def __getitem__(self, key: FeatureKey) -> float:
        return self._features[key]

    def __iter__(self) -> Iterator[FeatureKey]:
        return iter(self._features)

    def __len__(self) -> int:
        return len(self._features)

    def keys_sorted(self) -> list[FeatureKey]:
        """Feature keys in deterministic order (for reproducible policies)."""
        return sorted(self._features, key=lambda k: (k[0].value, k[1].value))

    def best_feature(self) -> FeatureKey | None:
        """The highest-scoring feature, ties broken deterministically."""
        if not self._features:
            return None
        return max(
            self._features,
            key=lambda k: (self._features[k], k[0].value, k[1].value),
        )

    def __hash__(self):
        if self._hash is None:
            self._hash = hash(frozenset(self._features.items()))
        return self._hash

    def __eq__(self, other):
        if not isinstance(other, FeatureSet):
            return NotImplemented
        return self._features == other._features

    def __repr__(self):
        parts = ", ".join(
            f"({k[0].local_name},{k[1].local_name})={v:.2f}"
            for k, v in sorted(self._features.items(), key=lambda kv: -kv[1])
        )
        return f"FeatureSet({parts})"


def similarity_matrix(entity1: Entity, entity2: Entity, theta: float = DEFAULT_THETA) -> dict[FeatureKey, float]:
    """All predicate-pair scores ≥ θ between two entities.

    An element is ``((p1, p2), score)`` with ``score = sim(o1, o2)`` taken as
    the best pairing of the attributes' (possibly multiple) objects.
    """
    matrix: dict[FeatureKey, float] = {}
    for p1, objects1 in entity1.attributes.items():
        for p2, objects2 in entity2.attributes.items():
            score = best_object_similarity(objects1, objects2)
            if score >= theta:
                matrix[(p1, p2)] = score
    return matrix


def _reduce_matrix(
    matrix: dict[FeatureKey, float], arity1: int, arity2: int
) -> dict[FeatureKey, float]:
    """The paper's row/column max reduction, shared by both build paths."""
    if arity1 > arity2:
        best_for_row: dict[URIRef, tuple[float, URIRef]] = {}
        for (p1, p2), score in matrix.items():
            current = best_for_row.get(p1)
            if current is None or score > current[0] or (
                score == current[0] and (p2.value < current[1].value)
            ):
                best_for_row[p1] = (score, p2)
        return {(p1, p2): score for p1, (score, p2) in best_for_row.items()}
    best_for_col: dict[URIRef, tuple[float, URIRef]] = {}
    for (p1, p2), score in matrix.items():
        current = best_for_col.get(p2)
        if current is None or score > current[0] or (
            score == current[0] and (p1.value < current[1].value)
        ):
            best_for_col[p2] = (score, p1)
    return {(p1, p2): score for p2, (score, p1) in best_for_col.items()}


def build_feature_set(
    entity1: Entity, entity2: Entity, theta: float = DEFAULT_THETA
) -> FeatureSet | None:
    """State feature set of the pair (entity1, entity2), or None when empty.

    Follows the paper's rule: with *n* predicates on the first entity and
    *m* on the second, keep the maximum per row (each ``p1``) when n > m,
    else the maximum per column (each ``p2``). Pairs with no feature
    passing θ are dropped from the space entirely (Section 6.1).
    """
    matrix = similarity_matrix(entity1, entity2, theta)
    if not matrix:
        return None
    return FeatureSet(_reduce_matrix(matrix, entity1.arity, entity2.arity))


def similarity_matrix_prepared(
    prepared1: PreparedEntity, prepared2: PreparedEntity, theta: float = DEFAULT_THETA
) -> dict[FeatureKey, float]:
    """Fast-path :func:`similarity_matrix` over prepared entities.

    Every entry ≥ θ carries exactly the score the naive path computes; the
    θ-aware bounds inside :func:`best_prepared_similarity` only elide work
    whose result could not reach θ (and would be dropped here anyway).
    """
    # The memo probe of best_prepared_similarity is inlined here: with ~20
    # attribute pairs per entity pair and a ~75% memo hit rate the call
    # overhead alone would dominate the cache's savings.
    matrix: dict[FeatureKey, float] = {}
    cache_get = _best_cache.get
    items2 = prepared2.attr_items
    hits = 0
    for p1, objects1 in prepared1.attr_items:
        for p2, objects2 in items2:
            key = (objects1, objects2, theta)
            score = cache_get(key)
            if score is None:
                score = _best_uncached(objects1, objects2, theta, key)
            else:
                hits += 1
            if score >= theta:
                matrix[(p1, p2)] = score
    _stats["attr_hits"] += hits
    return matrix


def build_feature_set_prepared(
    prepared1: PreparedEntity, prepared2: PreparedEntity, theta: float = DEFAULT_THETA
) -> FeatureSet | None:
    """Fast-path :func:`build_feature_set`; admitted features bit-identical."""
    matrix = similarity_matrix_prepared(prepared1, prepared2, theta)
    if not matrix:
        return None
    return FeatureSet(_reduce_matrix(matrix, prepared1.arity, prepared2.arity))
